//! Property tests: the maximal-frequent-set miner against a brute-force
//! enumeration of all attribute subsets.

use proptest::prelude::*;
use spade_bitmap::Bitmap;
use spade_core::mfs::{maximal_frequent_sets, Item};

#[allow(clippy::needless_range_loop)]
fn brute_force_maximal(
    tidsets: &[Vec<u32>],
    min_count: u64,
    max_size: usize,
) -> Vec<Vec<usize>> {
    let n = tidsets.len();
    let frequent: Vec<(u32, u64)> = (0u32..(1 << n))
        .filter(|&mask| mask != 0 && mask.count_ones() as usize <= max_size)
        .filter_map(|mask| {
            let mut inter: Option<Vec<u32>> = None;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    inter = Some(match inter {
                        None => tidsets[i].clone(),
                        Some(prev) => {
                            prev.iter().copied().filter(|v| tidsets[i].contains(v)).collect()
                        }
                    });
                }
            }
            let support = inter.map(|v| v.len() as u64).unwrap_or(0);
            (support >= min_count).then_some((mask, support))
        })
        .collect();
    let masks: Vec<u32> = frequent.iter().map(|(m, _)| *m).collect();
    let mut maximal: Vec<Vec<usize>> = masks
        .iter()
        .filter(|&&m| {
            !masks.iter().any(|&other| {
                other != m && other & m == m && (other.count_ones() as usize) <= max_size
            })
        })
        .map(|&m| (0..n).filter(|i| m & (1 << i) != 0).collect())
        .collect();
    maximal.sort();
    maximal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn miner_matches_bruteforce(
        tidsets in prop::collection::vec(
            prop::collection::btree_set(0u32..30, 0..20)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..7,
        ),
        min_count in 1u64..6,
        max_size in 1usize..5,
    ) {
        let items: Vec<Item> = tidsets
            .iter()
            .enumerate()
            .map(|(attr, tids)| Item { attr, tidset: Bitmap::from_sorted(tids) })
            .collect();
        let got = maximal_frequent_sets(&items, min_count, max_size, |_, _| true);
        let expected = brute_force_maximal(&tidsets, min_count, max_size);
        prop_assert_eq!(got, expected);
    }
}
