//! Parallel evaluation must be a pure performance knob: any
//! `SpadeConfig::threads` value yields bit-identical `CubeResult`s and an
//! identical top-k list, because the fan-out merges outcomes in input order
//! and every per-lattice computation is single-owner.

use spade_core::analysis::analyze_cfs;
use spade_core::cfs::{select, CfsStrategy};
use spade_core::enumeration::enumerate;
use spade_core::evaluate::evaluate_cfs;
use spade_core::offline;
use spade_core::{Spade, SpadeConfig};
use spade_cube::CubeResult;
use spade_datagen::{realistic, RealisticConfig};

/// Exact (bit-level) equality of two cube results: same nodes, same groups,
/// same per-MDA values down to the f64 bit pattern.
fn assert_results_identical(a: &CubeResult, b: &CubeResult, context: &str) {
    assert_eq!(a.mda_labels, b.mda_labels, "{context}: MDA labels");
    let mut masks: Vec<u32> = a.nodes.keys().copied().collect();
    masks.sort_unstable();
    let mut other: Vec<u32> = b.nodes.keys().copied().collect();
    other.sort_unstable();
    assert_eq!(masks, other, "{context}: node sets");
    for mask in masks {
        let na = &a.nodes[&mask];
        let nb = &b.nodes[&mask];
        assert_eq!(na.groups.len(), nb.groups.len(), "{context}: node {mask:b} group count");
        for (key, va) in &na.groups {
            let vb = nb
                .groups
                .get(key)
                .unwrap_or_else(|| panic!("{context}: node {mask:b} missing group {key:?}"));
            assert_eq!(va.len(), vb.len());
            for (i, (x, y)) in va.iter().zip(vb).enumerate() {
                let same = match (x, y) {
                    (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                    (None, None) => true,
                    _ => false,
                };
                assert!(same, "{context}: node {mask:b} group {key:?} mda {i}: {x:?} vs {y:?}");
            }
        }
    }
}

fn run_evaluation(threads: usize) -> Vec<CubeResult> {
    let g = realistic::ceos(&RealisticConfig { scale: 250, seed: 9 });
    let config = SpadeConfig { min_support: 0.3, threads, ..Default::default() };
    let stats = offline::analyze(&g);
    let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
    let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
    let ceo = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
    let analysis = analyze_cfs(&g, ceo, &derived, &config);
    let lattices = enumerate(&analysis, &config);
    assert!(lattices.len() > 1, "need multiple lattices to exercise the fan-out");
    let eval = evaluate_cfs(&analysis, &lattices, &config);
    eval.results
}

#[test]
fn evaluation_is_bit_identical_across_thread_counts() {
    let serial = run_evaluation(1);
    for threads in [2usize, 8] {
        let parallel = run_evaluation(threads);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_results_identical(a, b, &format!("threads={threads} lattice={i}"));
        }
    }
}

fn run_pipeline(threads: usize, early_stop: bool) -> Vec<(String, u64, usize)> {
    let mut g = realistic::ceos(&RealisticConfig { scale: 300, seed: 2 });
    let mut config = SpadeConfig { k: 8, min_support: 0.3, threads, ..Default::default() };
    if early_stop {
        config = config.with_early_stop();
    }
    let report = Spade::new(config).run(&mut g);
    report.top.iter().map(|t| (t.description(), t.score.to_bits(), t.groups)).collect()
}

#[test]
fn top_k_is_identical_across_thread_counts() {
    let serial = run_pipeline(1, false);
    assert!(!serial.is_empty());
    for threads in [2usize, 8] {
        assert_eq!(serial, run_pipeline(threads, false), "threads={threads}");
    }
}

#[test]
fn top_k_with_early_stop_is_identical_across_thread_counts() {
    // Early-stop draws per-lattice seeded samples; pruning decisions must
    // not depend on scheduling.
    let serial = run_pipeline(1, true);
    assert!(!serial.is_empty());
    for threads in [2usize, 8] {
        assert_eq!(serial, run_pipeline(threads, true), "threads={threads}");
    }
}

/// The thread counts every intra-lattice test sweeps: 1/2/8 always, plus an
/// optional `SPADE_TEST_THREADS` override so CI can pin an exact worker
/// count (the release job sets 8).
fn thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1usize, 2, 8];
    if let Some(n) = std::env::var("SPADE_TEST_THREADS").ok().and_then(|v| v.parse().ok()) {
        if !sweep.contains(&n) {
            sweep.push(n);
        }
    }
    sweep
}

/// One *single-CFS, single-lattice* workload — the shape the region-sharded
/// executor targets: all parallelism must come from inside the one lattice.
fn single_lattice_run(threads: usize, early_stop: bool) -> (Vec<CubeResult>, usize) {
    let g = realistic::ceos(&RealisticConfig { scale: 300, seed: 11 });
    let mut config = SpadeConfig { min_support: 0.3, threads, ..Default::default() };
    if early_stop {
        config = SpadeConfig { k: 2, ..config }.with_early_stop();
    }
    let stats = offline::analyze(&g);
    let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
    let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
    let ceo = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
    let analysis = analyze_cfs(&g, ceo, &derived, &config);
    let lattices = enumerate(&analysis, &config);
    // Restrict to ONE lattice so the per-CFS/per-lattice fan-out degenerates
    // and only the intra-lattice (region-shard) parallelism remains.
    let one = vec![lattices.into_iter().next().expect("CEOs yield a lattice")];
    let eval = evaluate_cfs(&analysis, &one, &config);
    (eval.results, eval.pruned_by_es)
}

#[test]
fn single_lattice_evaluation_is_bit_identical_across_thread_counts() {
    let (serial, _) = single_lattice_run(1, false);
    assert_eq!(serial.len(), 1);
    for threads in thread_sweep() {
        let (parallel, _) = single_lattice_run(threads, false);
        assert_results_identical(&serial[0], &parallel[0], &format!("threads={threads}"));
    }
}

#[test]
fn single_lattice_early_stop_is_bit_identical_across_thread_counts() {
    // The early-stop pruning loop aggregates per-node shard counters; its
    // decisions (and the pruned evaluation) must not depend on scheduling.
    let (serial, serial_pruned) = single_lattice_run(1, true);
    assert!(serial_pruned > 0, "workload must actually trigger early-stop pruning");
    for threads in thread_sweep() {
        let (parallel, pruned) = single_lattice_run(threads, true);
        assert_eq!(serial_pruned, pruned, "threads={threads}: pruned count");
        assert_results_identical(&serial[0], &parallel[0], &format!("threads={threads} es"));
    }
}
