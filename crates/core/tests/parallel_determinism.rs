//! Parallel evaluation must be a pure performance knob: any
//! `SpadeConfig::threads` value yields bit-identical `CubeResult`s and an
//! identical top-k list, because the fan-out merges outcomes in input order
//! and every per-lattice computation is single-owner.

use spade_core::analysis::analyze_cfs;
use spade_core::cfs::{select, CfsStrategy};
use spade_core::enumeration::enumerate;
use spade_core::evaluate::evaluate_cfs;
use spade_core::offline;
use spade_core::{Spade, SpadeConfig};
use spade_cube::CubeResult;
use spade_datagen::{realistic, RealisticConfig};

/// Exact (bit-level) equality of two cube results: same nodes, same groups,
/// same per-MDA values down to the f64 bit pattern.
fn assert_results_identical(a: &CubeResult, b: &CubeResult, context: &str) {
    assert_eq!(a.mda_labels, b.mda_labels, "{context}: MDA labels");
    let mut masks: Vec<u32> = a.nodes.keys().copied().collect();
    masks.sort_unstable();
    let mut other: Vec<u32> = b.nodes.keys().copied().collect();
    other.sort_unstable();
    assert_eq!(masks, other, "{context}: node sets");
    for mask in masks {
        let na = &a.nodes[&mask];
        let nb = &b.nodes[&mask];
        assert_eq!(na.groups.len(), nb.groups.len(), "{context}: node {mask:b} group count");
        for (key, va) in &na.groups {
            let vb = nb
                .groups
                .get(key)
                .unwrap_or_else(|| panic!("{context}: node {mask:b} missing group {key:?}"));
            assert_eq!(va.len(), vb.len());
            for (i, (x, y)) in va.iter().zip(vb).enumerate() {
                let same = match (x, y) {
                    (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                    (None, None) => true,
                    _ => false,
                };
                assert!(same, "{context}: node {mask:b} group {key:?} mda {i}: {x:?} vs {y:?}");
            }
        }
    }
}

fn run_evaluation(threads: usize) -> Vec<CubeResult> {
    let g = realistic::ceos(&RealisticConfig { scale: 250, seed: 9 });
    let config = SpadeConfig { min_support: 0.3, threads, ..Default::default() };
    let stats = offline::analyze(&g);
    let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
    let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
    let ceo = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
    let analysis = analyze_cfs(&g, ceo, &derived, &config);
    let lattices = enumerate(&analysis, &config);
    assert!(lattices.len() > 1, "need multiple lattices to exercise the fan-out");
    let eval = evaluate_cfs(&analysis, &lattices, &config);
    eval.results
}

#[test]
fn evaluation_is_bit_identical_across_thread_counts() {
    let serial = run_evaluation(1);
    for threads in [2usize, 8] {
        let parallel = run_evaluation(threads);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_results_identical(a, b, &format!("threads={threads} lattice={i}"));
        }
    }
}

fn run_pipeline(threads: usize, early_stop: bool) -> Vec<(String, u64, usize)> {
    let mut g = realistic::ceos(&RealisticConfig { scale: 300, seed: 2 });
    let mut config = SpadeConfig { k: 8, min_support: 0.3, threads, ..Default::default() };
    if early_stop {
        config = config.with_early_stop();
    }
    let report = Spade::new(config).run(&mut g);
    report.top.iter().map(|t| (t.description(), t.score.to_bits(), t.groups)).collect()
}

#[test]
fn top_k_is_identical_across_thread_counts() {
    let serial = run_pipeline(1, false);
    assert!(!serial.is_empty());
    for threads in [2usize, 8] {
        assert_eq!(serial, run_pipeline(threads, false), "threads={threads}");
    }
}

#[test]
fn top_k_with_early_stop_is_identical_across_thread_counts() {
    // Early-stop draws per-lattice seeded samples; pruning decisions must
    // not depend on scheduling.
    let serial = run_pipeline(1, true);
    assert!(!serial.is_empty());
    for threads in [2usize, 8] {
        assert_eq!(serial, run_pipeline(threads, true), "threads={threads}");
    }
}
