//! Span-tree determinism for traced pipeline runs.
//!
//! `Spade::run_on_traced` must record the same span-tree **shape** (names,
//! nesting, sibling order — `Trace::shape`) no matter the thread budget:
//! parallel fan-outs record index-ordered siblings, so only timings may
//! differ between a serial and a parallel run. The top-level stages must
//! also be exactly the `StepTimings` fields the report exposes — the trace
//! and the timings are the same measurement.

use spade_core::{Budget, OfflineState, RequestConfig, Spade, SpadeConfig, Trace};
use spade_datagen::{realistic, RealisticConfig};

const ONLINE_STAGES: [&str; 6] = [
    "offline_analysis",
    "cfs_selection",
    "attribute_analysis",
    "enumeration",
    "evaluation",
    "topk",
];

fn fixture() -> (Spade, OfflineState, SpadeConfig) {
    let g = realistic::ceos(&RealisticConfig { scale: 200, seed: 2 });
    let config = SpadeConfig { k: 5, min_support: 0.3, ..Default::default() };
    let spade = Spade::new(config.clone());
    let state = OfflineState::from_graph(g, 0);
    (spade, state, config)
}

#[test]
fn trace_shape_is_identical_at_1_2_8_threads() {
    let (spade, state, _) = fixture();
    let mut shapes: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let trace = Trace::new();
        let request = RequestConfig { threads: Some(threads), ..Default::default() };
        let report = spade
            .run_on_traced(&state, &request, &Budget::unlimited(), Some(&trace))
            .expect("unlimited budget cannot cancel");
        assert!(!report.top.is_empty());

        // Top-level stage set and order == the StepTimings online fields.
        let stages: Vec<&str> = trace.stage_durations().iter().map(|(n, _)| *n).collect();
        assert_eq!(stages, ONLINE_STAGES, "threads={threads}");

        // The stage spans *are* the step timings: same measurement, so the
        // recorded durations agree to the trace's microsecond resolution.
        for (name, dur) in trace.stage_durations() {
            let timing = match name {
                "offline_analysis" => report.timings.offline_analysis,
                "cfs_selection" => report.timings.cfs_selection,
                "attribute_analysis" => report.timings.attribute_analysis,
                "enumeration" => report.timings.enumeration,
                "evaluation" => report.timings.evaluation,
                "topk" => report.timings.topk,
                other => panic!("unexpected stage {other}"),
            };
            let diff = timing.abs_diff(dur);
            assert!(diff.as_micros() <= 2, "stage {name}: span {dur:?} vs timing {timing:?}");
        }

        shapes.push((threads, trace.shape()));
    }
    for w in shapes.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "span-tree shape differs between threads={} and threads={}",
            w[0].0, w[1].0
        );
    }
    // Sanity: the tree actually descends into the evaluation fan-out.
    assert!(shapes[0].1.contains("lattice("), "shape: {}", shapes[0].1);
    assert!(shapes[0].1.contains("translate;"), "shape: {}", shapes[0].1);
}

#[test]
fn trace_shape_with_early_stop_is_thread_invariant() {
    let (_, state, config) = fixture();
    let spade = Spade::new(SpadeConfig { k: 3, ..config }.with_early_stop());
    let build = |threads: usize| {
        let trace = Trace::new();
        let request = RequestConfig { threads: Some(threads), ..Default::default() };
        spade
            .run_on_traced(&state, &request, &Budget::unlimited(), Some(&trace))
            .expect("unlimited budget cannot cancel");
        trace.shape()
    };
    let serial = build(1);
    assert!(serial.contains("earlystop;"), "shape: {serial}");
    assert_eq!(serial, build(8));
}

#[test]
fn tracing_is_observation_only() {
    let (spade, state, _) = fixture();
    let untraced = spade.run_on(&state, &RequestConfig::default());
    let trace = Trace::new();
    let traced = spade
        .run_on_traced(&state, &RequestConfig::default(), &Budget::unlimited(), Some(&trace))
        .expect("unlimited budget cannot cancel");
    assert_eq!(untraced.to_json(false), traced.to_json(false));
    assert!(trace.span_count() > 0);
}
