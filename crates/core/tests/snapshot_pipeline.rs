//! The snapshot serving path must be a pure *latency* optimization:
//! `snapshot_ntriples` + `run_snapshot` produces exactly the report that
//! `run_ntriples` produces on the same text — same profile, same top-k,
//! same scores to the bit — at every thread count, with the offline work
//! replaced by one `snapshot_load` timing split.

use spade_core::{SnapshotPipelineError, Spade, SpadeConfig};
use spade_datagen::corpus::NT_CASES;
use std::time::Duration;

fn corpus() -> String {
    NT_CASES[0].generate(90, 5)
}

fn config(threads: usize) -> SpadeConfig {
    // Capped CFS count and support keep each serve a few seconds while
    // still exercising several CFSs, derivations, and a non-trivial top-k.
    SpadeConfig {
        k: 8,
        min_support: 0.3,
        max_cfs: 6,
        min_cfs_size: 15,
        threads,
        ..Default::default()
    }
}

fn snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("spade-core-test-{}-{tag}.spade", std::process::id()))
}

fn top_signature(report: &spade_core::SpadeReport) -> Vec<(String, u64, usize)> {
    report.top.iter().map(|t| (t.description(), t.score.to_bits(), t.groups)).collect()
}

#[test]
fn run_snapshot_matches_run_ntriples_exactly() {
    let nt = corpus();
    let direct = Spade::new(config(0)).run_ntriples(&nt).expect("valid corpus");
    assert!(!direct.top.is_empty());

    let path = snapshot_path("equivalence");
    let serial = Spade::new(config(1));
    serial.snapshot_ntriples(&nt, &path).expect("snapshot written");

    for threads in [1usize, 8] {
        let spade = Spade::new(config(threads));
        let served = spade.run_snapshot(&path).expect("snapshot serves");
        assert_eq!(served.profile.triples, direct.profile.triples, "threads={threads}");
        assert_eq!(served.profile.cfs_count, direct.profile.cfs_count);
        assert_eq!(served.profile.direct_properties, direct.profile.direct_properties);
        assert_eq!(served.profile.derivations, direct.profile.derivations);
        assert_eq!(served.profile.aggregates, direct.profile.aggregates);
        assert_eq!(served.evaluated_aggregates, direct.evaluated_aggregates);
        assert_eq!(top_signature(&served), top_signature(&direct), "threads={threads}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_timings_replace_the_offline_phase() {
    let nt = corpus();
    let path = snapshot_path("timings");
    let spade = Spade::new(config(0));
    spade.snapshot_ntriples(&nt, &path).expect("snapshot written");
    let report = spade.run_snapshot(&path).expect("snapshot serves");

    // The offline phase collapsed into the load: no ingestion, no
    // saturation, no attribute analysis beyond derivation enumeration.
    assert!(report.timings.snapshot_load > Duration::ZERO);
    assert_eq!(report.timings.ingest, Duration::ZERO);
    assert_eq!(report.timings.saturation, Duration::ZERO);
    assert_eq!(
        report.timings.offline,
        report.timings.snapshot_load + report.timings.offline_analysis
    );
    assert!(report.timings.online_total() > Duration::ZERO);
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_snapshot_bytes_serves_from_memory() {
    let nt = corpus();
    let path = snapshot_path("bytes");
    let spade = Spade::new(config(0));
    spade.snapshot_ntriples(&nt, &path).expect("snapshot written");
    let bytes = std::fs::read(&path).expect("snapshot readable");
    std::fs::remove_file(&path).ok();

    let from_file_less = spade.run_snapshot_bytes(&bytes).expect("serves from memory");
    let direct = Spade::new(config(0)).run_ntriples(&nt).unwrap();
    assert_eq!(top_signature(&from_file_less), top_signature(&direct));
}

#[test]
fn snapshot_errors_are_typed() {
    let spade = Spade::new(config(1));
    // Unparseable input never writes a file.
    let path = snapshot_path("errors");
    match spade.snapshot_ntriples("not an n-triples line\n", &path) {
        Err(SnapshotPipelineError::Parse(e)) => assert_eq!(e.line, 1),
        other => panic!("expected a parse error, got {other:?}"),
    }
    assert!(!path.exists());
    // Serving from a missing file is a store error.
    assert!(matches!(
        spade.run_snapshot(&path),
        Err(SnapshotPipelineError::Store(spade_core::store::SnapshotError::Io(_)))
    ));
    // Serving from garbage bytes is a store error too.
    assert!(matches!(
        spade.run_snapshot_bytes(b"garbage"),
        Err(SnapshotPipelineError::Store(_))
    ));
}
