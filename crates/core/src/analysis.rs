//! Online Attribute Analysis (Section 3, Step 2).
//!
//! "for each CFS, we first enumerate all direct and derived properties.
//! Then, we enrich the offline-analysis results by adding CFS-dependent
//! statistics, e.g., the support of an attribute among all the facts in the
//! CFS, the number of CFs that have such an attribute more than once, and
//! the number of distinct values. Spade exploits the gathered statistics …
//! to guide the choice of dimensions, measures, and aggregate functions."
//!
//! Each attribute is materialized into the storage layer right here: a
//! [`CategoricalColumn`] for dimension use and a [`PreAggregated`] numeric
//! column for measure use, both ordered by the CFS's dense fact ids.

use crate::attr::{AttrKind, AttributeDef};
use crate::cfs::CandidateFactSet;
use crate::config::SpadeConfig;
use spade_rdf::{Graph, TermId};
use spade_storage::{
    CategoricalColumn, CategoricalColumnBuilder, FactTable, NumericColumnBuilder, PreAggregated,
};
use std::collections::HashSet;

/// One attribute of a CFS after online analysis.
#[derive(Clone, Debug)]
pub struct AnalyzedAttribute {
    /// The attribute's definition.
    pub def: AttributeDef,
    /// String-valued column (dimension use); `None` when unsupported.
    pub categorical: Option<CategoricalColumn>,
    /// Pre-aggregated numeric column (measure use); `None` when the
    /// attribute has no numeric interpretation on this CFS.
    pub numeric: Option<PreAggregated>,
    /// Facts having ≥ 1 value.
    pub support: usize,
    /// Facts having > 1 value.
    pub multi_valued_facts: usize,
    /// Distinct string values.
    pub distinct_values: usize,
    /// Eligible as a dimension (frequency + distinct-count rules + stop
    /// list).
    pub dimension_ok: bool,
    /// Eligible as a measure (frequency rule over numeric values).
    pub measure_ok: bool,
}

/// The analyzed CFS, ready for aggregate enumeration.
#[derive(Clone, Debug)]
pub struct CfsAnalysis {
    /// Origin name (`type:CEO`, …).
    pub name: String,
    /// The fact table (node ↔ dense id).
    pub facts: FactTable,
    /// All analyzed attributes with support > 0.
    pub attributes: Vec<AnalyzedAttribute>,
}

impl CfsAnalysis {
    /// `|CFS|`.
    pub fn n_facts(&self) -> usize {
        self.facts.len()
    }

    /// Indexes of dimension-eligible attributes.
    pub fn dimension_attrs(&self) -> Vec<usize> {
        (0..self.attributes.len()).filter(|&i| self.attributes[i].dimension_ok).collect()
    }

    /// Indexes of measure-eligible attributes.
    pub fn measure_attrs(&self) -> Vec<usize> {
        (0..self.attributes.len()).filter(|&i| self.attributes[i].measure_ok).collect()
    }
}

/// Enumerates the direct properties of the CFS's facts.
fn direct_properties(graph: &Graph, cfs: &CandidateFactSet) -> Vec<TermId> {
    let rdf_type = graph.rdf_type_id();
    let mut props: HashSet<TermId> = HashSet::new();
    for &node in &cfs.members {
        for &(p, _) in graph.outgoing(node) {
            if p != rdf_type {
                props.insert(p);
            }
        }
    }
    let mut out: Vec<TermId> = props.into_iter().collect();
    out.sort_unstable();
    out
}

/// Analyzes one CFS: materializes columns and applies the dimension /
/// measure eligibility rules.
pub fn analyze_cfs(
    graph: &Graph,
    cfs: &CandidateFactSet,
    derived: &[AttributeDef],
    config: &SpadeConfig,
) -> CfsAnalysis {
    let facts = FactTable::new(cfs.members.iter().copied());
    let n = facts.len();

    // Direct properties of this CFS plus all graph-wide derivations (the
    // latter filtered below by support).
    let mut defs: Vec<AttributeDef> = direct_properties(graph, cfs)
        .into_iter()
        .map(|p| AttributeDef::new(AttrKind::Direct(p), graph))
        .collect();
    defs.extend(derived.iter().cloned());

    let min_support_count = ((config.min_support * n as f64).ceil() as usize).max(1);
    let mut attributes = Vec::new();
    for def in defs {
        let mut cat = CategoricalColumnBuilder::new(def.name.clone());
        let mut num = NumericColumnBuilder::new(def.name.clone());
        let mut support = 0usize;
        let mut multi = 0usize;
        let mut numeric_support = 0usize;
        for (fact, node) in facts.iter() {
            let svals = def.string_values(graph, node, config.keyword_min_len);
            if !svals.is_empty() {
                support += 1;
                if svals.len() > 1 {
                    multi += 1;
                }
                for v in &svals {
                    cat.add(fact, v.clone());
                }
            }
            let nvals = def.numeric_values(graph, node);
            if !nvals.is_empty() {
                numeric_support += 1;
                for &v in &nvals {
                    num.add(fact, v);
                }
            }
        }
        if support == 0 {
            continue; // the attribute does not occur on this CFS
        }
        let categorical = cat.build(n);
        let distinct = categorical.distinct_values();
        let stop_listed = config.dimension_stop_list.iter().any(|s| s == &def.name);
        let dimension_ok = !stop_listed
            && support >= min_support_count
            && distinct <= config.max_distinct_values
            && (distinct as f64) <= config.max_distinct_ratio * n as f64;
        let measure_ok = numeric_support >= min_support_count;
        let numeric = (numeric_support > 0).then(|| num.build(n).preaggregate());
        attributes.push(AnalyzedAttribute {
            def,
            categorical: Some(categorical),
            numeric,
            support,
            multi_valued_facts: multi,
            distinct_values: distinct,
            dimension_ok,
            measure_ok,
        });
    }
    CfsAnalysis { name: cfs.name.clone(), facts, attributes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfs::{select, CfsStrategy};
    use crate::offline;
    use spade_datagen::ceos_figure1;

    fn analyzed_ceos() -> CfsAnalysis {
        let g = ceos_figure1();
        let config = SpadeConfig {
            min_cfs_size: 2,
            min_support: 0.5,
            max_distinct_ratio: 5.0, // tiny CFS: allow distinct ≈ |CFS|
            ..Default::default()
        };
        let stats = offline::analyze(&g);
        let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
        let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
        let ceo_cfs = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
        analyze_cfs(&g, ceo_cfs, &derived, &config)
    }

    fn attr<'a>(a: &'a CfsAnalysis, name: &str) -> &'a AnalyzedAttribute {
        a.attributes
            .iter()
            .find(|x| x.def.name == name)
            .unwrap_or_else(|| panic!("attribute {name} missing"))
    }

    #[test]
    fn supports_and_multi_valued_counts() {
        let a = analyzed_ceos();
        assert_eq!(a.n_facts(), 2);
        let nat = attr(&a, "nationality");
        assert_eq!(nat.support, 2);
        assert_eq!(nat.multi_valued_facts, 1); // Ghosn
        assert_eq!(nat.distinct_values, 5);
        let gender = attr(&a, "gender");
        assert_eq!(gender.support, 1); // Dos Santos only
    }

    #[test]
    fn numeric_attributes_become_measures() {
        let a = analyzed_ceos();
        let nw = attr(&a, "netWorth");
        assert!(nw.measure_ok);
        let pre = nw.numeric.as_ref().unwrap();
        assert_eq!(pre.global_bounds(), Some((1.2e8, 2.8e9)));
        // Text attributes never become measures.
        let name = attr(&a, "name");
        assert!(!name.measure_ok);
        assert!(name.numeric.is_none());
    }

    #[test]
    fn derived_attributes_materialize() {
        let a = analyzed_ceos();
        let area = attr(&a, "company/area");
        assert_eq!(area.support, 2);
        assert!(area.multi_valued_facts >= 1);
        let col = area.categorical.as_ref().unwrap();
        assert_eq!(col.distinct_values(), 4); // Automotive, Diamond, Manufacturer, Natural gas
        let count = attr(&a, "numOf(company)");
        assert!(count.numeric.is_some());
    }

    #[test]
    fn distinct_value_rule_blocks_id_like_dimensions() {
        let g = ceos_figure1();
        let config = SpadeConfig {
            min_cfs_size: 2,
            max_distinct_ratio: 0.5, // strict: ≤ 1 distinct value for |CFS|=2
            ..Default::default()
        };
        let stats = offline::analyze(&g);
        let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
        let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
        let ceo_cfs = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
        let a = analyze_cfs(&g, ceo_cfs, &derived, &config);
        // `name` has 2 distinct values over 2 facts → ratio 1.0 > 0.5.
        assert!(!attr(&a, "name").dimension_ok);
    }

    #[test]
    fn stop_list_blocks_dimensions() {
        let g = ceos_figure1();
        let config = SpadeConfig {
            min_cfs_size: 2,
            max_distinct_ratio: 5.0,
            dimension_stop_list: vec!["nationality".into()],
            ..Default::default()
        };
        let stats = offline::analyze(&g);
        let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
        let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
        let ceo_cfs = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
        let a = analyze_cfs(&g, ceo_cfs, &derived, &config);
        assert!(!attr(&a, "nationality").dimension_ok);
        assert!(attr(&a, "company/area").dimension_ok);
    }

    #[test]
    fn absent_attributes_are_dropped() {
        let a = analyzed_ceos();
        // `instructions` (a Foodista property) is not on CEOs.
        assert!(a.attributes.iter().all(|x| x.def.name != "instructions"));
        // Politician's `role` is not an outgoing property of CEOs either,
        // but `politicalConnection/role` (path) is present.
        assert!(a.attributes.iter().any(|x| x.def.name == "politicalConnection/role"));
    }
}
