//! Spade — automatic discovery of the k most interesting aggregates in an
//! RDF graph (the paper's end-to-end system, Figure 2).
//!
//! The pipeline has an **offline** phase — summary construction, offline
//! attribute analysis, derived-property enumeration, pre-aggregation — and
//! an **online** phase with five steps:
//!
//! 1. Candidate Fact Set Selection ([`cfs`]): type-based, property-based,
//!    and summary-based strategies;
//! 2. Online Attribute Analysis ([`analysis`]): per-CFS statistics over
//!    direct and derived attributes, materialized as dimension/measure
//!    columns;
//! 3. Aggregate Enumeration ([`enumeration`] + [`mfs`]): maximal frequent
//!    attribute sets become lattice roots; rule-based pruning removes
//!    meaningless candidates;
//! 4. Aggregate Evaluation ([`evaluate`]): MVDCube with optional early-stop
//!    pruning, results shared across overlapping lattices;
//! 5. Top-k Computation ([`pipeline`]): interestingness scoring through the
//!    Aggregate Result Manager.
//!
//! [`Spade`] ties everything together; see `examples/quickstart.rs` for the
//! three-line entry point.

pub mod analysis;
pub mod attr;
pub mod cfs;
pub mod config;
pub mod enumeration;
pub mod evaluate;
pub mod json;
pub mod mfs;
pub mod offline;
pub mod pipeline;
pub mod sparql;
pub mod text;
pub mod viz;

pub use analysis::{AnalyzedAttribute, CfsAnalysis};
pub use attr::{AttrKind, AttributeDef};
pub use cfs::{CandidateFactSet, CfsStrategy};
pub use config::{RequestConfig, SpadeConfig};
pub use enumeration::LatticeSpec;
pub use offline::{OfflineStats, PropertyStats};
pub use pipeline::{
    work_counters, DatasetProfile, OfflineState, SnapshotPipelineError, Spade, SpadeReport,
    StepTimings, TopAggregate,
};

/// Request budgets (deadline + cancellation) threaded through
/// [`Spade::run_on_budgeted`] — re-exported so servers need not depend on
/// `spade-parallel` directly.
pub use spade_parallel::{Budget, CancelReason, Cancelled};

/// Per-request tracing (span trees recorded by
/// [`Spade::run_on_traced`](pipeline::Spade::run_on_traced)) — re-exported
/// so servers need not depend on `spade-telemetry` directly.
pub use spade_telemetry::{Span, SpanCtx, Trace};

/// The snapshot store serving this pipeline's offline state (re-exported so
/// downstream users need not depend on `spade-store` directly).
pub use spade_store as store;
