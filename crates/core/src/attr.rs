//! Attributes: direct properties and the four derivation strategies.
//!
//! Section 2: "An attribute is either a (direct) property (P) of a CF in
//! the original RDF data, or a derived property (DP), which we create from
//! the data and attach to a CF to enrich the analysis."
//!
//! Section 3's Derived Property Enumeration generates: (i) property counts
//! for multi-valued properties; (ii) keywords occurring in property values;
//! (iii) the language of a text property; (iv) paths.

use crate::text;
use spade_rdf::{Graph, TermId};

/// What an attribute computes for a candidate fact.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// A property of the fact in the original graph.
    Direct(TermId),
    /// `count(p)` — how many values of `p` the fact has (e.g. "how many
    /// companies a CEO manages").
    Count(TermId),
    /// `kw(p)` — keywords occurring in `p`'s text values.
    Keywords(TermId),
    /// `lang(p)` — the detected language of `p`'s text values.
    Language(TermId),
    /// `p/q` — values of `q` on the nodes reachable through `p` (e.g.
    /// `company/area`, `politicalConnection/role`).
    Path(TermId, TermId),
}

/// A named attribute over a CFS.
#[derive(Clone, Debug)]
pub struct AttributeDef {
    /// How values are computed.
    pub kind: AttrKind,
    /// Human-readable name, e.g. `nationality` or `company/area`.
    pub name: String,
}

impl AttributeDef {
    /// Builds the definition, deriving the display name from the graph's
    /// dictionary.
    pub fn new(kind: AttrKind, graph: &Graph) -> Self {
        let name = match &kind {
            AttrKind::Direct(p) => graph.dict.display(*p),
            AttrKind::Count(p) => format!("numOf({})", graph.dict.display(*p)),
            AttrKind::Keywords(p) => format!("kwIn({})", graph.dict.display(*p)),
            AttrKind::Language(p) => format!("langOf({})", graph.dict.display(*p)),
            AttrKind::Path(p, q) => {
                format!("{}/{}", graph.dict.display(*p), graph.dict.display(*q))
            }
        };
        AttributeDef { kind, name }
    }

    /// The base property a derivation stems from, used by the pruning rule
    /// "does not contain attributes that are derived one from the other"
    /// (e.g. `nationality` and `numOf(nationality)`).
    pub fn derived_from(&self) -> Option<TermId> {
        match self.kind {
            AttrKind::Direct(_) => None,
            AttrKind::Count(p)
            | AttrKind::Keywords(p)
            | AttrKind::Language(p)
            | AttrKind::Path(p, _) => Some(p),
        }
    }

    /// The property whose values this attribute exposes directly (for
    /// direct attributes) — the other side of the derived-from rule.
    pub fn base_property(&self) -> Option<TermId> {
        match self.kind {
            AttrKind::Direct(p) => Some(p),
            _ => None,
        }
    }

    /// `true` for the four derivation kinds.
    pub fn is_derived(&self) -> bool {
        !matches!(self.kind, AttrKind::Direct(_))
    }

    /// The attribute's string values for `node` (dimension use). Numeric
    /// values are rendered through their lexical form; missing → empty.
    pub fn string_values(&self, graph: &Graph, node: TermId, kw_min_len: usize) -> Vec<String> {
        match &self.kind {
            AttrKind::Direct(p) => {
                graph.objects(node, *p).map(|o| graph.dict.display(o)).collect()
            }
            AttrKind::Count(p) => {
                let n = graph.objects(node, *p).count();
                if n == 0 {
                    vec![]
                } else {
                    vec![n.to_string()]
                }
            }
            AttrKind::Keywords(p) => {
                let mut kws: Vec<String> = graph
                    .objects(node, *p)
                    .filter_map(|o| graph.dict.term(o).as_literal().map(|l| l.lexical.clone()))
                    .flat_map(|t| text::keywords(&t, kw_min_len))
                    .collect();
                kws.sort_unstable();
                kws.dedup();
                kws
            }
            AttrKind::Language(p) => {
                let mut langs: Vec<String> = graph
                    .objects(node, *p)
                    .filter_map(|o| graph.dict.term(o).as_literal())
                    .filter_map(|l| text::detect_language(&l.lexical))
                    .map(str::to_owned)
                    .collect();
                langs.sort_unstable();
                langs.dedup();
                langs
            }
            AttrKind::Path(p, q) => {
                let mut vals: Vec<String> = graph
                    .objects(node, *p)
                    .flat_map(|mid| graph.objects(mid, *q))
                    .map(|o| graph.dict.display(o))
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            }
        }
    }

    /// The attribute's numeric values for `node` (measure use); empty when
    /// the attribute has no numeric interpretation for this fact.
    pub fn numeric_values(&self, graph: &Graph, node: TermId) -> Vec<f64> {
        match &self.kind {
            AttrKind::Direct(p) => graph
                .objects(node, *p)
                .filter_map(|o| graph.dict.term(o).numeric_value())
                .collect(),
            AttrKind::Count(p) => {
                let n = graph.objects(node, *p).count();
                if n == 0 {
                    vec![]
                } else {
                    vec![n as f64]
                }
            }
            AttrKind::Keywords(_) | AttrKind::Language(_) => vec![],
            AttrKind::Path(p, q) => graph
                .objects(node, *p)
                .flat_map(|mid| graph.objects(mid, *q))
                .filter_map(|o| graph.dict.term(o).numeric_value())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_rdf::Term;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert(iri("ceo"), iri("nationality"), Term::lit("Angola"));
        g.insert(iri("ceo"), iri("nationality"), Term::lit("Brazil"));
        g.insert(iri("ceo"), iri("age"), Term::int(47));
        g.insert(iri("ceo"), iri("company"), iri("c1"));
        g.insert(iri("ceo"), iri("company"), iri("c2"));
        g.insert(iri("c1"), iri("area"), Term::lit("Natural gas"));
        g.insert(
            iri("c1"),
            iri("desc"),
            Term::lit("Sonangol oversees the production of petroleum in Angola"),
        );
        g.insert(iri("c2"), iri("area"), Term::lit("Diamond"));
        g
    }

    fn id(g: &Graph, s: &str) -> TermId {
        g.dict.id_of(&iri(s)).unwrap()
    }

    #[test]
    fn direct_attribute_values() {
        let g = sample_graph();
        let a = AttributeDef::new(AttrKind::Direct(id(&g, "nationality")), &g);
        let ceo = id(&g, "ceo");
        assert_eq!(a.name, "nationality");
        assert_eq!(a.string_values(&g, ceo, 4), vec!["Angola", "Brazil"]);
        assert!(a.numeric_values(&g, ceo).is_empty());
        assert!(!a.is_derived());
        let age = AttributeDef::new(AttrKind::Direct(id(&g, "age")), &g);
        assert_eq!(age.numeric_values(&g, ceo), vec![47.0]);
    }

    #[test]
    fn count_derivation() {
        let g = sample_graph();
        let a = AttributeDef::new(AttrKind::Count(id(&g, "company")), &g);
        let ceo = id(&g, "ceo");
        assert_eq!(a.name, "numOf(company)");
        assert_eq!(a.numeric_values(&g, ceo), vec![2.0]);
        assert_eq!(a.string_values(&g, ceo, 4), vec!["2"]);
        assert_eq!(a.derived_from(), Some(id(&g, "company")));
        // A node without the property has no count (not zero).
        assert!(a.numeric_values(&g, id(&g, "c1")).is_empty());
    }

    #[test]
    fn path_derivation_company_area() {
        let g = sample_graph();
        let a = AttributeDef::new(AttrKind::Path(id(&g, "company"), id(&g, "area")), &g);
        let ceo = id(&g, "ceo");
        assert_eq!(a.name, "company/area");
        assert_eq!(a.string_values(&g, ceo, 4), vec!["Diamond", "Natural gas"]);
        assert!(a.is_derived());
    }

    #[test]
    fn keyword_and_language_derivations() {
        let g = sample_graph();
        let kw = AttributeDef::new(AttrKind::Keywords(id(&g, "desc")), &g);
        let c1 = id(&g, "c1");
        let kws = kw.string_values(&g, c1, 4);
        assert!(kws.contains(&"petroleum".to_owned()));
        assert!(kw.numeric_values(&g, c1).is_empty());
        let lang = AttributeDef::new(AttrKind::Language(id(&g, "desc")), &g);
        assert_eq!(lang.string_values(&g, c1, 4), vec!["English"]);
    }
}
