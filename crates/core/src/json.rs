//! Minimal hand-rolled JSON — one shared writer and a small parser.
//!
//! The build environment vendors no external crates, so there is no serde;
//! every artifact that speaks JSON goes through this module instead of the
//! per-binary string pasting the bench bins used to carry:
//!
//! * [`JsonWriter`] — an explicit-state writer (objects, arrays, escaped
//!   strings, fixed- or shortest-form numbers) used by the `BENCH_*.json`
//!   artifacts, [`SpadeReport::to_json`](crate::SpadeReport::to_json), and
//!   the `spade-serve` response bodies. Output is **deterministic**: the
//!   caller controls key order, floats format by value alone (shortest
//!   round-trip via `{}` or an explicit fixed precision), and no map
//!   iteration order leaks in — identical inputs produce identical bytes,
//!   which is what lets the serve layer cache bodies and the determinism
//!   suite compare them.
//! * [`parse`] — a recursive-descent parser for the small request documents
//!   the serve layer accepts (depth-capped, full escape handling including
//!   surrogate pairs). It keeps object keys in document order.
//!
//! Neither half aims at the full ECMA-404 weirdness catalogue; both reject
//! anything malformed loudly ([`JsonParseError`] carries a byte offset).

use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Escapes `s` into `out` as the *contents* of a JSON string (no quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted, escaped JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Frame {
    Object,
    Array,
}

/// A push-style JSON writer with automatic commas and optional pretty
/// printing (two-space indent). Panics on misuse (value without a key
/// inside an object, unbalanced `end_*`) — the call sites are all static,
/// so misuse is a bug, not an input condition.
pub struct JsonWriter {
    buf: String,
    pretty: bool,
    stack: Vec<Frame>,
    /// Items already written in each open container (parallel to `stack`).
    counts: Vec<usize>,
    /// A key was written and awaits its value.
    pending_key: bool,
}

impl JsonWriter {
    /// A compact writer (no whitespace) — wire bodies, cache keys.
    pub fn compact() -> Self {
        JsonWriter {
            buf: String::new(),
            pretty: false,
            stack: Vec::new(),
            counts: Vec::new(),
            pending_key: false,
        }
    }

    /// A pretty writer (two-space indent) — on-disk artifacts.
    pub fn pretty() -> Self {
        JsonWriter { pretty: true, ..Self::compact() }
    }

    fn before_value(&mut self) {
        match self.stack.last() {
            None => assert!(self.buf.is_empty(), "one top-level value only"),
            Some(Frame::Array) => {
                let n = self.counts.last_mut().expect("counts parallel to stack");
                if *n > 0 {
                    self.buf.push(',');
                }
                *n += 1;
                if self.pretty {
                    self.buf.push('\n');
                    for _ in 0..self.stack.len() {
                        self.buf.push_str("  ");
                    }
                }
            }
            Some(Frame::Object) => {
                assert!(self.pending_key, "object values need a key first");
                self.pending_key = false;
            }
        }
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        assert_eq!(self.stack.last(), Some(&Frame::Object), "key outside an object");
        assert!(!self.pending_key, "two keys in a row");
        let n = self.counts.last_mut().expect("counts parallel to stack");
        if *n > 0 {
            self.buf.push(',');
        }
        *n += 1;
        if self.pretty {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str(if self.pretty { "\": " } else { "\":" });
        self.pending_key = true;
        self
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('{');
        self.stack.push(Frame::Object);
        self.counts.push(0);
        self
    }

    /// Closes `}`.
    pub fn end_object(&mut self) -> &mut Self {
        assert_eq!(self.stack.pop(), Some(Frame::Object), "unbalanced end_object");
        let n = self.counts.pop().expect("counts parallel to stack");
        assert!(!self.pending_key, "key without a value");
        if self.pretty && n > 0 {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push('}');
        self
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('[');
        self.stack.push(Frame::Array);
        self.counts.push(0);
        self
    }

    /// Closes `]`.
    pub fn end_array(&mut self) -> &mut Self {
        assert_eq!(self.stack.pop(), Some(Frame::Array), "unbalanced end_array");
        let n = self.counts.pop().expect("counts parallel to stack");
        if self.pretty && n > 0 {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push(']');
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.before_value();
        self.buf.push('"');
        escape_into(s, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a `usize` value.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.uint(v as u64)
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Splices a pre-serialized JSON value verbatim (no validation): the
    /// escape hatch for embedding documents rendered elsewhere (e.g. the
    /// telemetry ledger's snapshot `to_json` outputs) without re-parsing.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.before_value();
        self.buf.push_str(json);
        self
    }

    /// Writes `null`.
    pub fn null(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push_str("null");
        self
    }

    /// Writes a float in shortest round-trip form (`{}`); non-finite values
    /// become `null` (JSON has no NaN/Inf).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        if !v.is_finite() {
            return self.null();
        }
        self.before_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a float with a fixed number of decimals — the bench artifacts'
    /// house style. Non-finite values become `null`.
    pub fn f64_fixed(&mut self, v: f64, decimals: usize) -> &mut Self {
        if !v.is_finite() {
            return self.null();
        }
        self.before_value();
        let _ = write!(self.buf, "{v:.decimals$}");
        self
    }

    /// Finishes and returns the document (must be balanced).
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unbalanced writer: {} frames open", self.stack.len());
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Parsed values
// ---------------------------------------------------------------------------

/// A parsed JSON document. Object keys keep document order (duplicates:
/// last one wins on [`Json::get`], as in every mainstream parser).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object (last duplicate wins); `None` for
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => {
                entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Containers may nest this deep before the parser refuses — bounds stack
/// use on adversarial bodies (the serve layer feeds this untrusted bytes).
const MAX_DEPTH: usize = 64;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &'static str) -> JsonParseError {
    JsonParseError { offset, message }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(
    bytes: &[u8],
    pos: &mut usize,
    b: u8,
    message: &'static str,
) -> Result<(), JsonParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, message))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonParseError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(err(*pos, "object keys must be strings"));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':' after object key")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(entries));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    // A strict syntax pre-check; `f64::parse` alone accepts "inf"/"nan"
    // spellings JSON forbids, and we already consumed only number chars.
    let ok = !text.is_empty()
        && text != "-"
        && !text.ends_with(['.', 'e', 'E', '+', '-'])
        && text.parse::<f64>().map(f64::is_finite).unwrap_or(false);
    if !ok {
        return Err(err(start, "invalid number"));
    }
    Ok(Json::Number(text.parse().expect("checked above")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    let mut run_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                out.push_str(str_run(bytes, run_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(str_run(bytes, run_start, *pos)?);
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        *pos -= 1; // rejoin the shared +1 below
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require `\uXXXX` low surrogate.
                            *pos += 1;
                            if bytes.get(*pos) == Some(&b'\\')
                                && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                *pos -= 1;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                *pos -= 1;
                                '\u{FFFD}'
                            }
                        } else {
                            char::from_u32(hi).unwrap_or('\u{FFFD}')
                        };
                        out.push(c);
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
                run_start = *pos;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => *pos += 1,
        }
    }
}

fn str_run(bytes: &[u8], start: usize, end: usize) -> Result<&str, JsonParseError> {
    std::str::from_utf8(&bytes[start..end]).map_err(|_| err(start, "invalid UTF-8 in string"))
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonParseError> {
    let slice = bytes.get(*pos..*pos + 4).ok_or_else(|| err(*pos, "truncated \\u escape"))?;
    let text = std::str::from_utf8(slice).map_err(|_| err(*pos, "invalid \\u escape"))?;
    let v = u32::from_str_radix(text, 16).map_err(|_| err(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(v)
}

/// Renders a parsed value back to compact JSON — object keys in **sorted**
/// order, so semantically equal documents render identically. This is the
/// canonicalization the serve layer's cache keys rely on.
pub fn canonical(value: &Json) -> String {
    let mut out = String::new();
    canonical_into(value, &mut out);
    out
}

fn canonical_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Json::String(s) => {
            out.push('"');
            escape_into(s, out);
            out.push('"');
        }
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canonical_into(item, out);
            }
            out.push(']');
        }
        Json::Object(entries) => {
            // Sorted + last-duplicate-wins, matching `Json::get`.
            let mut map: BTreeMap<&str, &Json> = BTreeMap::new();
            for (k, v) in entries {
                map.insert(k, v);
            }
            out.push('{');
            for (i, (k, v)) in map.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(k, out);
                out.push_str("\":");
                canonical_into(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_compact_object() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("a").uint(1);
        w.key("b").string("x\"y");
        w.key("c").begin_array().f64(1.5).bool(true).null().end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":"x\"y","c":[1.5,true,null]}"#);
    }

    #[test]
    fn writer_pretty_indents() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("k").begin_array().uint(1).uint(2).end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn writer_fixed_floats_and_nonfinite() {
        let mut w = JsonWriter::compact();
        w.begin_array().f64_fixed(1.0 / 3.0, 4).f64(f64::NAN).f64_fixed(f64::INFINITY, 2);
        w.end_array();
        assert_eq!(w.finish(), "[0.3333,null,null]");
    }

    #[test]
    fn parse_round_trips() {
        let doc =
            r#" {"k": 3, "s": "a\u00e9\n", "arr": [1, -2.5e1, true, false, null], "o": {}} "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("aé\n"));
        let arr = v.get("arr").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(v.get("o"), Some(&Json::Object(Vec::new())));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_surrogate_pairs_and_lone_surrogates() {
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::String("😀".into()));
        assert_eq!(parse(r#""\ud83dx""#).unwrap(), Json::String("\u{FFFD}x".into()));
        assert_eq!(parse(r#""\ud83d\u0041""#).unwrap(), Json::String("\u{FFFD}".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "tru",
            "1.2.3",
            "nan",
            "-",
            "\"unterminated",
            "\u{1}",
            "[1] trailing",
            "{\"a\":1,}",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn parse_accepts_duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(2));
    }

    #[test]
    fn canonical_sorts_keys() {
        let v = parse(r#"{"b":1,"a":[{"z":null,"y":2}]}"#).unwrap();
        assert_eq!(canonical(&v), r#"{"a":[{"y":2,"z":null}],"b":1}"#);
        // Canonical forms of semantically equal documents agree.
        let v2 = parse(r#"{ "a" : [ { "y" : 2, "z" : null } ], "b" : 1 }"#).unwrap();
        assert_eq!(canonical(&v), canonical(&v2));
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\u{2}"), r#""a\"b\\c\u0002""#);
    }
}
