//! Spade's tunable parameters — the thresholds Section 3's rule-based
//! pruning refers to, plus evaluation knobs.

use spade_cube::EarlyStopConfig;
use spade_stats::Interestingness;
use spade_storage::AggFn;

/// End-to-end configuration of a Spade run.
#[derive(Clone, Debug)]
pub struct SpadeConfig {
    /// How many aggregates to return (`k`).
    pub k: usize,
    /// The interestingness function `h` the user chose.
    pub interestingness: Interestingness,

    // —— CFS selection (Step 1) ——
    /// Smallest CFS worth analyzing.
    pub min_cfs_size: usize,
    /// Largest number of CFSs to analyze (biggest first); caps run time on
    /// very heterogeneous graphs.
    pub max_cfs: usize,

    // —— attribute rules (Steps 2–3) ——
    /// "Dimensions and measures must be frequent": minimum support as a
    /// fraction of `|CFS|`.
    pub min_support: f64,
    /// "Dimensions should not have too many distinct values when compared
    /// to the number of facts": cap on `distinct/|CFS|`.
    pub max_distinct_ratio: f64,
    /// Absolute distinct-value cap for dimensions (the synthetic benchmark
    /// uses ≤ 100 "so that they are considered good dimensions").
    pub max_distinct_values: usize,
    /// Maximum lattice dimensionality `N` ("readability … is maximized at
    /// … N ∈ {1, 2, 3, 4}").
    pub max_lattice_dims: usize,
    /// Dimension stop list (attribute names the user excluded — the
    /// Section 6.1 "human-in-the-loop" hook, e.g. `nationality/image`).
    pub dimension_stop_list: Vec<String>,

    // —— derivations (offline phase) ——
    /// Generate derived properties at all (Experiment 1's woD/wD switch).
    pub enable_derivations: bool,
    /// Minimum keyword length for the keyword derivation.
    pub keyword_min_len: usize,
    /// Maximum number of path derivations (`p/q`) to enumerate per graph.
    pub max_path_derivations: usize,

    // —— evaluation (Step 4) ——
    /// Aggregate functions assigned to every measure (the statistics-guided
    /// assignment of Step 2; the default covers the common cases).
    pub agg_fns: Vec<AggFn>,
    /// Early-stop pruning on/off plus its parameters.
    pub early_stop: Option<EarlyStopConfig>,
    /// Worker threads for the parallel pipeline stages (per-CFS attribute
    /// analysis and per-CFS/per-lattice aggregate evaluation). `0` = one
    /// worker per available core; `1` = fully serial. The pipeline splits
    /// this budget across its two fan-out levels (CFSs × lattices), so the
    /// total worker count never exceeds it. Results are bit-identical for
    /// every value — the fan-out merges in deterministic input order.
    pub threads: usize,
}

impl Default for SpadeConfig {
    fn default() -> Self {
        SpadeConfig {
            k: 10,
            interestingness: Interestingness::Variance,
            min_cfs_size: 10,
            max_cfs: 50,
            min_support: 0.1,
            max_distinct_ratio: 0.5,
            max_distinct_values: 100,
            max_lattice_dims: 3,
            dimension_stop_list: Vec::new(),
            enable_derivations: true,
            keyword_min_len: 4,
            max_path_derivations: 200,
            agg_fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max],
            early_stop: None,
            threads: 0,
        }
    }
}

impl SpadeConfig {
    /// Enables early-stop with the paper's empirically good settings
    /// (sample size 60, 2 batches) for this config's `k` and `h`.
    pub fn with_early_stop(mut self) -> Self {
        self.early_stop = Some(EarlyStopConfig {
            k: self.k,
            h: self.interestingness,
            ..EarlyStopConfig::default()
        });
        self
    }

    /// Disables derivations (Experiment 1's `woD` setting).
    pub fn without_derivations(mut self) -> Self {
        self.enable_derivations = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SpadeConfig::default();
        assert!(c.min_support > 0.0 && c.min_support < 1.0);
        assert!(c.max_lattice_dims >= 1 && c.max_lattice_dims <= 4);
        assert!(c.early_stop.is_none());
    }

    #[test]
    fn with_early_stop_propagates_k_and_h() {
        let c = SpadeConfig {
            k: 3,
            interestingness: Interestingness::Skewness,
            ..Default::default()
        }
        .with_early_stop();
        let es = c.early_stop.unwrap();
        assert_eq!(es.k, 3);
        assert_eq!(es.h, Interestingness::Skewness);
    }

    #[test]
    fn without_derivations_switch() {
        assert!(!SpadeConfig::default().without_derivations().enable_derivations);
    }
}
