//! Spade's tunable parameters — the thresholds Section 3's rule-based
//! pruning refers to, plus evaluation knobs.

use spade_cube::EarlyStopConfig;
use spade_stats::Interestingness;
use spade_storage::AggFn;

/// End-to-end configuration of a Spade run.
#[derive(Clone, Debug)]
pub struct SpadeConfig {
    /// How many aggregates to return (`k`).
    pub k: usize,
    /// The interestingness function `h` the user chose.
    pub interestingness: Interestingness,

    // —— CFS selection (Step 1) ——
    /// Smallest CFS worth analyzing.
    pub min_cfs_size: usize,
    /// Largest number of CFSs to analyze (biggest first); caps run time on
    /// very heterogeneous graphs.
    pub max_cfs: usize,

    // —— attribute rules (Steps 2–3) ——
    /// "Dimensions and measures must be frequent": minimum support as a
    /// fraction of `|CFS|`.
    pub min_support: f64,
    /// "Dimensions should not have too many distinct values when compared
    /// to the number of facts": cap on `distinct/|CFS|`.
    pub max_distinct_ratio: f64,
    /// Absolute distinct-value cap for dimensions (the synthetic benchmark
    /// uses ≤ 100 "so that they are considered good dimensions").
    pub max_distinct_values: usize,
    /// Maximum lattice dimensionality `N` ("readability … is maximized at
    /// … N ∈ {1, 2, 3, 4}").
    pub max_lattice_dims: usize,
    /// Dimension stop list (attribute names the user excluded — the
    /// Section 6.1 "human-in-the-loop" hook, e.g. `nationality/image`).
    pub dimension_stop_list: Vec<String>,
    /// CFS allow filter (Step 1): when non-empty, only CFSs whose name
    /// contains at least one of these substrings are analyzed (e.g.
    /// `["type:CEO"]` to explore one entity class). Empty = all CFSs.
    pub cfs_filter: Vec<String>,
    /// Measure allow filter (Step 3): when non-empty, only attributes whose
    /// name contains at least one of these substrings are assigned as
    /// lattice measures (`count(*)` always stays). Empty = all measures.
    pub measure_filter: Vec<String>,

    // —— derivations (offline phase) ——
    /// Generate derived properties at all (Experiment 1's woD/wD switch).
    pub enable_derivations: bool,
    /// Minimum keyword length for the keyword derivation.
    pub keyword_min_len: usize,
    /// Maximum number of path derivations (`p/q`) to enumerate per graph.
    pub max_path_derivations: usize,

    // —— evaluation (Step 4) ——
    /// Aggregate functions assigned to every measure (the statistics-guided
    /// assignment of Step 2; the default covers the common cases).
    pub agg_fns: Vec<AggFn>,
    /// Early-stop pruning on/off plus its parameters.
    pub early_stop: Option<EarlyStopConfig>,
    /// Worker threads for the parallel pipeline stages (per-CFS attribute
    /// analysis and per-CFS/per-lattice aggregate evaluation). `0` = one
    /// worker per available core; `1` = fully serial. The pipeline splits
    /// this budget across its two fan-out levels (CFSs × lattices), so the
    /// total worker count never exceeds it. Results are bit-identical for
    /// every value — the fan-out merges in deterministic input order.
    pub threads: usize,
}

impl Default for SpadeConfig {
    fn default() -> Self {
        SpadeConfig {
            k: 10,
            interestingness: Interestingness::Variance,
            min_cfs_size: 10,
            max_cfs: 50,
            min_support: 0.1,
            max_distinct_ratio: 0.5,
            max_distinct_values: 100,
            max_lattice_dims: 3,
            dimension_stop_list: Vec::new(),
            cfs_filter: Vec::new(),
            measure_filter: Vec::new(),
            enable_derivations: true,
            keyword_min_len: 4,
            max_path_derivations: 200,
            agg_fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max],
            early_stop: None,
            threads: 0,
        }
    }
}

impl SpadeConfig {
    /// Enables early-stop with the paper's empirically good settings
    /// (sample size 60, 2 batches) for this config's `k` and `h`.
    pub fn with_early_stop(mut self) -> Self {
        self.early_stop = Some(EarlyStopConfig {
            k: self.k,
            h: self.interestingness,
            ..EarlyStopConfig::default()
        });
        self
    }

    /// Disables derivations (Experiment 1's `woD` setting).
    pub fn without_derivations(mut self) -> Self {
        self.enable_derivations = false;
        self
    }
}

/// Whether `name` passes an allow filter: an empty filter admits everything,
/// a non-empty one admits names containing at least one of its substrings.
pub fn filter_matches(filter: &[String], name: &str) -> bool {
    filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()))
}

/// Per-request overrides over a base [`SpadeConfig`] — the unit of work of
/// the load-once/serve-many split ([`Spade::run_on`]). Every field is
/// optional; `None`/empty means "use the base config's value". The
/// orthogonal base config (thresholds, derivations, aggregate functions) is
/// fixed per serving process, which is what makes [`RequestConfig::canonical_key`]
/// a complete cache key.
///
/// [`Spade::run_on`]: crate::Spade::run_on
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RequestConfig {
    /// Top-k override.
    pub k: Option<usize>,
    /// Interestingness function override.
    pub interestingness: Option<Interestingness>,
    /// Minimum-support override (Step 2/3 frequency rule).
    pub min_support: Option<f64>,
    /// CFS allow filter (see [`SpadeConfig::cfs_filter`]); replaces the
    /// base filter when non-empty.
    pub cfs_filter: Vec<String>,
    /// Measure allow filter (see [`SpadeConfig::measure_filter`]); replaces
    /// the base filter when non-empty.
    pub measure_filter: Vec<String>,
    /// Worker-thread budget for this request. A server caps this at its
    /// per-request share so concurrent requests never oversubscribe cores;
    /// results are bit-identical for every value.
    pub threads: Option<usize>,
}

impl RequestConfig {
    /// Resolves the overrides against `base` into the effective config.
    pub fn apply(&self, base: &SpadeConfig) -> SpadeConfig {
        let mut config = base.clone();
        if let Some(k) = self.k {
            config.k = k;
        }
        if let Some(h) = self.interestingness {
            config.interestingness = h;
        }
        if let Some(ms) = self.min_support {
            config.min_support = ms;
        }
        if !self.cfs_filter.is_empty() {
            config.cfs_filter = self.cfs_filter.clone();
        }
        if !self.measure_filter.is_empty() {
            config.measure_filter = self.measure_filter.clone();
        }
        if let Some(t) = self.threads {
            config.threads = t;
        }
        config
    }

    /// Parses the interestingness name of the wire protocol
    /// (`variance` / `skewness` / `kurtosis`, the [`Interestingness::label`]
    /// spellings).
    pub fn interestingness_from_name(name: &str) -> Option<Interestingness> {
        Interestingness::ALL.into_iter().find(|h| h.label() == name)
    }

    /// A canonical, deterministic encoding of the overrides — equal requests
    /// (after filter sort + dedup) encode identically, so this is a sound
    /// exact-hit cache key for the deterministic pipeline. The `threads`
    /// override is **excluded**: results are thread-count-invariant, so
    /// requests differing only in thread budget share a cache entry.
    pub fn canonical_key(&self) -> String {
        let norm = |filter: &[String]| {
            let mut f = filter.to_vec();
            f.sort();
            f.dedup();
            f
        };
        let mut w = crate::json::JsonWriter::compact();
        w.begin_object();
        w.key("cfs").begin_array();
        for f in norm(&self.cfs_filter) {
            w.string(&f);
        }
        w.end_array();
        match self.interestingness {
            Some(h) => w.key("h").string(h.label()),
            None => w.key("h").null(),
        };
        match self.k {
            Some(k) => w.key("k").usize(k),
            None => w.key("k").null(),
        };
        w.key("measures").begin_array();
        for f in norm(&self.measure_filter) {
            w.string(&f);
        }
        w.end_array();
        match self.min_support {
            Some(ms) => w.key("min_support").f64(ms),
            None => w.key("min_support").null(),
        };
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SpadeConfig::default();
        assert!(c.min_support > 0.0 && c.min_support < 1.0);
        assert!(c.max_lattice_dims >= 1 && c.max_lattice_dims <= 4);
        assert!(c.early_stop.is_none());
    }

    #[test]
    fn with_early_stop_propagates_k_and_h() {
        let c = SpadeConfig {
            k: 3,
            interestingness: Interestingness::Skewness,
            ..Default::default()
        }
        .with_early_stop();
        let es = c.early_stop.unwrap();
        assert_eq!(es.k, 3);
        assert_eq!(es.h, Interestingness::Skewness);
    }

    #[test]
    fn without_derivations_switch() {
        assert!(!SpadeConfig::default().without_derivations().enable_derivations);
    }

    #[test]
    fn filter_matches_substring_semantics() {
        assert!(filter_matches(&[], "anything"));
        let f = vec!["CEO".to_owned(), "net".to_owned()];
        assert!(filter_matches(&f, "type:CEO"));
        assert!(filter_matches(&f, "netWorth"));
        assert!(!filter_matches(&f, "nationality"));
    }

    #[test]
    fn request_config_applies_overrides() {
        let base = SpadeConfig::default();
        assert_eq!(RequestConfig::default().apply(&base).k, base.k);
        let req = RequestConfig {
            k: Some(3),
            interestingness: Some(Interestingness::Kurtosis),
            min_support: Some(0.42),
            cfs_filter: vec!["CEO".into()],
            measure_filter: vec!["netWorth".into()],
            threads: Some(2),
        };
        let c = req.apply(&base);
        assert_eq!(c.k, 3);
        assert_eq!(c.interestingness, Interestingness::Kurtosis);
        assert_eq!(c.min_support, 0.42);
        assert_eq!(c.cfs_filter, vec!["CEO".to_owned()]);
        assert_eq!(c.measure_filter, vec!["netWorth".to_owned()]);
        assert_eq!(c.threads, 2);
        // Untouched knobs come from the base.
        assert_eq!(c.max_lattice_dims, base.max_lattice_dims);
        assert_eq!(c.enable_derivations, base.enable_derivations);
    }

    #[test]
    fn canonical_key_is_normalized_and_thread_blind() {
        let a = RequestConfig {
            cfs_filter: vec!["b".into(), "a".into(), "b".into()],
            threads: Some(4),
            ..Default::default()
        };
        let b = RequestConfig {
            cfs_filter: vec!["a".into(), "b".into()],
            threads: Some(1),
            ..Default::default()
        };
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_ne!(
            a.canonical_key(),
            RequestConfig { k: Some(5), ..a.clone() }.canonical_key()
        );
        assert_eq!(
            RequestConfig::default().canonical_key(),
            r#"{"cfs":[],"h":null,"k":null,"measures":[],"min_support":null}"#
        );
    }

    #[test]
    fn interestingness_names_round_trip() {
        for h in Interestingness::ALL {
            assert_eq!(RequestConfig::interestingness_from_name(h.label()), Some(h));
        }
        assert_eq!(RequestConfig::interestingness_from_name("bogus"), None);
    }
}
