//! Candidate Fact Set Selection (Section 3, Step 1).
//!
//! "Spade identifies CFSs in three ways: (i) type-based: for each type T in
//! the graph, the set of RDF nodes of type T; (ii) property-based: for a
//! (user-specified) set of properties, all the RDF nodes having those
//! outgoing properties; (iii) summary-based: each set of RDF nodes
//! identified as equivalent by the RDFQuotient summary."

use crate::config::SpadeConfig;
use spade_parallel::{Budget, Cancelled};
use spade_rdf::{Graph, TermId};
use spade_summary::weak_summary;
use spade_telemetry::SpanCtx;
use std::collections::HashSet;

/// Which selection strategies to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfsStrategy {
    /// One CFS per `rdf:type` class.
    TypeBased,
    /// One CFS for the nodes having *all* the named outgoing properties.
    PropertyBased(Vec<String>),
    /// One CFS per weak-summary equivalence class.
    SummaryBased,
}

/// A candidate fact set: a named set of RDF nodes to aggregate over.
#[derive(Clone, Debug)]
pub struct CandidateFactSet {
    /// Human-readable origin, e.g. `type:CEO` or `summary:3`.
    pub name: String,
    /// The member nodes, sorted (fact ids follow this order).
    pub members: Vec<TermId>,
}

impl CandidateFactSet {
    /// `|CFS|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no member.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Runs the given strategies and returns deduplicated CFSs, largest first,
/// filtered by `min_cfs_size` and capped at `max_cfs`.
///
/// Member materialization and normalization (the per-candidate index scans
/// and sort+dedup) fan out over `config.threads` per strategy, merged in
/// candidate order; the dedup-and-rank tail stays serial, so the selection
/// is bit-identical at every thread count.
pub fn select(
    graph: &Graph,
    strategies: &[CfsStrategy],
    config: &SpadeConfig,
) -> Vec<CandidateFactSet> {
    select_budgeted(graph, strategies, config, &Budget::unlimited(), &SpanCtx::disabled())
        .expect("unlimited budget cannot cancel")
}

/// [`select`] under a request [`Budget`]: the budget is polled per
/// strategy and per candidate, so an expired request unwinds with
/// [`Cancelled`] within one candidate's materialization. With
/// [`Budget::unlimited`] this is exactly [`select`]. `ctx` records one
/// child span per strategy (strategies run serially, so auto ordering is
/// deterministic) with the candidate count as an attr.
pub fn select_budgeted(
    graph: &Graph,
    strategies: &[CfsStrategy],
    config: &SpadeConfig,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<Vec<CandidateFactSet>, Cancelled> {
    spade_parallel::fault::fire_with_budget("cfs", Some(budget));
    let mut out: Vec<CandidateFactSet> = Vec::new();
    let mut seen_member_sets: HashSet<Vec<TermId>> = HashSet::new();

    for strategy in strategies {
        budget.check()?;
        let span = ctx.span(match strategy {
            CfsStrategy::TypeBased => "type_based",
            CfsStrategy::PropertyBased(_) => "property_based",
            CfsStrategy::SummaryBased => "summary_based",
        });
        let candidates: Vec<(String, Vec<TermId>)> = match strategy {
            CfsStrategy::TypeBased => {
                let classes: Vec<TermId> = graph.classes().collect();
                spade_parallel::try_map(classes, config.threads, |class| {
                    budget.check()?;
                    Ok((
                        format!("type:{}", graph.dict.display(class)),
                        normalized(graph.nodes_of_type(class)),
                    ))
                })?
            }
            CfsStrategy::PropertyBased(names) => {
                let props: Vec<TermId> = names
                    .iter()
                    .filter_map(|n| graph.properties().find(|&p| graph.dict.display(p) == *n))
                    .collect();
                if props.len() == names.len() && !props.is_empty() {
                    let members = normalized(graph.subjects_with_properties(&props));
                    vec![(format!("props:{}", names.join("+")), members)]
                } else {
                    Vec::new()
                }
            }
            CfsStrategy::SummaryBased => {
                let summary = weak_summary(graph);
                spade_parallel::try_map(summary.classes, config.threads, |class| {
                    budget.check()?;
                    Ok((format!("summary:{}", class.id), normalized(class.members)))
                })?
            }
        };
        span.attr("candidates", candidates.len() as u64);
        for (name, members) in candidates {
            push_unique(&mut out, &mut seen_member_sets, name, members);
        }
    }

    // The allow filter runs before the `max_cfs` cap, so asking for a small
    // class by name works even when fifty larger CFSs would out-rank it.
    out.retain(|c| {
        c.len() >= config.min_cfs_size
            && crate::config::filter_matches(&config.cfs_filter, &c.name)
    });
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.name.cmp(&b.name)));
    out.truncate(config.max_cfs);
    Ok(out)
}

/// Sorted, deduplicated member list (the per-candidate normalization work
/// the parallel pass performs).
fn normalized(mut members: Vec<TermId>) -> Vec<TermId> {
    members.sort_unstable();
    members.dedup();
    members
}

fn push_unique(
    out: &mut Vec<CandidateFactSet>,
    seen: &mut HashSet<Vec<TermId>>,
    name: String,
    members: Vec<TermId>,
) {
    if members.is_empty() || !seen.insert(members.clone()) {
        return;
    }
    out.push(CandidateFactSet { name, members });
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_datagen::ceos_figure1;

    fn small_config() -> SpadeConfig {
        SpadeConfig { min_cfs_size: 2, ..Default::default() }
    }

    #[test]
    fn type_based_finds_classes() {
        let g = ceos_figure1();
        let cfs = select(&g, &[CfsStrategy::TypeBased], &small_config());
        let names: Vec<&str> = cfs.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"type:CEO"));
        assert!(names.contains(&"type:Company"));
        assert!(names.contains(&"type:Politician"));
        let ceo = cfs.iter().find(|c| c.name == "type:CEO").unwrap();
        assert_eq!(ceo.len(), 2);
    }

    #[test]
    fn property_based_intersects() {
        let g = ceos_figure1();
        let cfs = select(
            &g,
            &[CfsStrategy::PropertyBased(vec!["netWorth".into(), "nationality".into()])],
            &small_config(),
        );
        assert_eq!(cfs.len(), 1);
        assert_eq!(cfs[0].len(), 2); // both CEOs
        assert!(cfs[0].name.starts_with("props:"));
    }

    #[test]
    fn unknown_property_yields_nothing() {
        let g = ceos_figure1();
        let cfs = select(
            &g,
            &[CfsStrategy::PropertyBased(vec!["noSuchProperty".into()])],
            &small_config(),
        );
        assert!(cfs.is_empty());
    }

    #[test]
    fn summary_based_groups_structurally() {
        let g = ceos_figure1();
        let cfs = select(&g, &[CfsStrategy::SummaryBased], &small_config());
        assert!(!cfs.is_empty());
        for c in &cfs {
            assert!(c.name.starts_with("summary:"));
            assert!(c.len() >= 2);
        }
    }

    #[test]
    fn duplicates_across_strategies_removed() {
        let g = ceos_figure1();
        let both =
            select(&g, &[CfsStrategy::TypeBased, CfsStrategy::SummaryBased], &small_config());
        // No two CFSs may have identical member sets.
        let mut sets: Vec<&[TermId]> = both.iter().map(|c| c.members.as_slice()).collect();
        sets.sort();
        let before = sets.len();
        sets.dedup();
        assert_eq!(sets.len(), before);
    }

    #[test]
    fn min_size_and_cap_apply() {
        let g = ceos_figure1();
        let cfg = SpadeConfig { min_cfs_size: 3, max_cfs: 1, ..Default::default() };
        let cfs = select(&g, &[CfsStrategy::TypeBased], &cfg);
        assert!(cfs.len() <= 1);
        for c in &cfs {
            assert!(c.len() >= 3);
        }
    }

    #[test]
    fn sorted_largest_first() {
        let g = ceos_figure1();
        let cfs = select(&g, &[CfsStrategy::TypeBased], &small_config());
        for w in cfs.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }
}
