//! Deterministic fan-out of independent work items over a thread pool.
//!
//! The implementation lives in the dependency-free [`spade_parallel`] crate
//! so the offline ingestion subsystem (`spade-rdf`, below this crate in the
//! dependency graph) can share the exact same primitive; this module
//! re-exports it under the historical `spade_core::parallel` path used by
//! the evaluation pipeline and its determinism tests.

pub use spade_parallel::{chunk_ranges, map, par_sort, resolve_threads};
