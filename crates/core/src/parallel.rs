//! Deterministic fan-out of independent work items over a thread pool.
//!
//! Aggregate Evaluation (the paper's Figure 11 bottleneck) decomposes into
//! independent units — each CFS, and within a CFS each lattice, can be
//! evaluated in isolation; the ARM and result handling were designed for
//! concurrent producers. This module supplies the one primitive that
//! exploits this: [`map`], an ordered parallel map built on
//! `std::thread::scope` (the build environment vendors no external crates,
//! so there is no rayon; scoped threads give the same fan-out for
//! coarse-grained items without a dependency).
//!
//! **Determinism:** results are returned in input order, whatever the
//! completion order, so a fold over the output is bit-identical to the
//! serial fold — the property the `threads`-determinism tests pin down.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a configured thread count: `0` means "all available cores".
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        configured
    }
}

/// Applies `f` to every item, using up to `threads` worker threads
/// (`0` = auto), and returns the results **in input order**.
///
/// Items are claimed by an atomic cursor, so long items do not convoy
/// behind short ones. With one effective thread (or zero/one items) the
/// map runs inline on the caller's thread — the serial path and the
/// parallel path execute the exact same per-item code.
///
/// A panic in `f` propagates to the caller once all workers have stopped.
pub fn map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                *results[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker completed without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = map(items.clone(), threads, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(map(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let out = map(vec![1, 2, 3], 0, |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn borrows_captured_state() {
        let base = [10, 20, 30];
        let out = map(vec![0usize, 1, 2], 2, |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = map(vec![1, 2, 3, 4], 2, |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
