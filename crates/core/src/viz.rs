//! Presentation of discovered insights.
//!
//! Section 1: "We can show to the user such interesting insights as
//! (i) histograms (if one-dimensional), (ii) heat maps (if
//! two-dimensional), or (iii) tables (for high-dimensional aggregates)."
//!
//! This module renders a [`TopAggregate`](crate::TopAggregate) into those
//! three shapes as plain text, so examples and the experiment harness can
//! show Figure 1(b)/Figure 6-style output without a plotting stack.

use crate::pipeline::TopAggregate;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const BAR_WIDTH: usize = 40;
const MAX_ROWS: usize = 16;

/// Compact human form of a value: `2.8B`, `120.0M`, `47.0`.
pub fn humanize(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}B", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Renders the aggregate in the shape matching its dimensionality.
pub fn render(agg: &TopAggregate) -> String {
    match agg.dims.len() {
        0 | 1 => histogram(agg),
        2 => heat_map(agg),
        _ => table(agg),
    }
}

/// One-dimensional: a horizontal bar chart like Figure 1(b)'s histogram.
pub fn histogram(agg: &TopAggregate) -> String {
    let mut out = format!("{}\n", agg.description());
    let max = agg
        .sample_groups
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_width = agg
        .sample_groups
        .iter()
        .take(MAX_ROWS)
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0)
        .clamp(4, 28);
    for (label, value) in agg.sample_groups.iter().take(MAX_ROWS) {
        let bar_len = ((value.abs() / max) * BAR_WIDTH as f64).round() as usize;
        let shown: String = label.chars().take(label_width).collect();
        let _ = writeln!(
            out,
            "  {shown:<label_width$} |{} {}",
            "#".repeat(bar_len.max(usize::from(*value != 0.0))),
            humanize(*value)
        );
    }
    if agg.groups > agg.sample_groups.len().min(MAX_ROWS) {
        let _ = writeln!(out, "  … ({} groups total)", agg.groups);
    }
    out
}

/// Two-dimensional: a value grid like Figure 1(b)'s heat map, with `·` for
/// empty combinations and shading characters by magnitude.
pub fn heat_map(agg: &TopAggregate) -> String {
    // Group labels are "x, y" pairs; rebuild the two axes.
    let mut cells: BTreeMap<(String, String), f64> = BTreeMap::new();
    for (label, value) in &agg.sample_groups {
        if let Some((x, y)) = label.split_once(", ") {
            cells.insert((x.to_owned(), y.to_owned()), *value);
        }
    }
    let mut xs: Vec<String> = cells.keys().map(|(x, _)| x.clone()).collect();
    let mut ys: Vec<String> = cells.keys().map(|(_, y)| y.clone()).collect();
    xs.sort();
    xs.dedup();
    xs.truncate(MAX_ROWS);
    ys.sort();
    ys.dedup();
    ys.truncate(8);
    let max = cells.values().fold(0.0f64, |a, &v| a.max(v.abs())).max(f64::MIN_POSITIVE);

    let mut out = format!("{}\n", agg.description());
    let xw = xs.iter().map(|s| s.chars().count()).max().unwrap_or(4).clamp(4, 20);
    let _ = write!(out, "  {:<xw$}", "");
    for y in &ys {
        let _ = write!(out, " {:>8.8}", y);
    }
    out.push('\n');
    for x in &xs {
        let shown: String = x.chars().take(xw).collect();
        let _ = write!(out, "  {shown:<xw$}");
        for y in &ys {
            match cells.get(&(x.clone(), y.clone())) {
                None => {
                    let _ = write!(out, " {:>8}", "·");
                }
                Some(v) => {
                    let shade = shade_of(v.abs() / max);
                    let _ = write!(out, " {shade}{:>7}", humanize(*v));
                }
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "  (darker = larger: █ ▓ ▒ ░; {} groups total)", agg.groups);
    out
}

fn shade_of(intensity: f64) -> char {
    match intensity {
        i if i > 0.75 => '█',
        i if i > 0.5 => '▓',
        i if i > 0.25 => '▒',
        _ => '░',
    }
}

/// Three or more dimensions: a plain table.
pub fn table(agg: &TopAggregate) -> String {
    let mut out = format!("{}\n", agg.description());
    let _ = writeln!(out, "  {:<44} {:>14}", agg.dims.join(" | "), agg.mda);
    for (label, value) in agg.sample_groups.iter().take(MAX_ROWS) {
        let _ = writeln!(out, "  {label:<44} {value:>14.4}");
    }
    if agg.groups > agg.sample_groups.len().min(MAX_ROWS) {
        let _ = writeln!(out, "  … ({} groups total)", agg.groups);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(dims: &[&str], groups: &[(&str, f64)]) -> TopAggregate {
        TopAggregate {
            cfs: "type:CEO".into(),
            dims: dims.iter().map(|s| s.to_string()).collect(),
            mda: "sum(netWorth)".into(),
            score: 1.0,
            groups: groups.len(),
            sample_groups: groups.iter().map(|(l, v)| (l.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn one_dim_renders_histogram() {
        let a = agg(
            &["countryOfOrigin"],
            &[("Angola", 2.8e9), ("France", 1.2e8), ("Brazil", 0.9e8)],
        );
        let s = render(&a);
        assert!(s.contains("Angola"));
        // The outlier gets the longest bar.
        let angola_bar = s.lines().find(|l| l.contains("Angola")).unwrap();
        let france_bar = s.lines().find(|l| l.contains("France")).unwrap();
        let count = |l: &str| l.matches('#').count();
        assert!(count(angola_bar) > 5 * count(france_bar).max(1));
    }

    #[test]
    fn two_dims_render_heat_map() {
        let a = agg(
            &["nationality", "numOf(company)"],
            &[
                ("Angola, 2", 35.0),
                ("France, 1", 60.0),
                ("France, 2", 58.0),
                ("Brazil, 1", 61.0),
            ],
        );
        let s = render(&a);
        assert!(s.contains('█'), "largest cell shaded darkest:\n{s}");
        assert!(s.contains('·'), "missing combination shown as ·:\n{s}");
        assert!(s.contains("Angola"));
    }

    #[test]
    fn high_dims_render_table() {
        let a = agg(
            &["nationality", "gender", "company/area"],
            &[("Angola, Female, Diamond", 1.0)],
        );
        let s = render(&a);
        assert!(s.contains("nationality | gender | company/area"));
        assert!(s.contains("Angola, Female, Diamond"));
    }

    #[test]
    fn zero_and_negative_values_are_safe() {
        let a = agg(&["d"], &[("a", 0.0), ("b", -5.0), ("c", 5.0)]);
        let s = render(&a);
        assert!(s.contains("-5.0"));
        // Zero draws no bar.
        let zero_line = s.lines().find(|l| l.trim_start().starts_with("a ")).unwrap();
        assert_eq!(zero_line.matches('#').count(), 0);
    }

    #[test]
    fn truncates_long_group_lists() {
        let groups: Vec<(String, f64)> = (0..40).map(|i| (format!("g{i}"), i as f64)).collect();
        let a = TopAggregate {
            cfs: "x".into(),
            dims: vec!["d".into()],
            mda: "count(*)".into(),
            score: 1.0,
            groups: 40,
            sample_groups: groups,
        };
        let s = render(&a);
        assert!(s.contains("(40 groups total)"));
        assert!(s.lines().count() < 25);
    }
}
