//! Offline Attribute Analysis and Derived Property Enumeration (Section 3,
//! offline phase).
//!
//! "we perform Offline Attribute Analysis with three main purposes: (i) to
//! gather a set of statistics for each property in the graph, (ii) to
//! determine if derivations should be generated for a given property, and
//! (iii) to decide if pre-aggregated values of some properties should be
//! computed and stored in the database."

use crate::attr::{AttrKind, AttributeDef};
use crate::config::SpadeConfig;
use crate::text;
use spade_parallel::{Budget, Cancelled};
use spade_rdf::{vocab, Graph, Term, TermId, ValueKind};
use std::collections::{HashMap, HashSet};

/// Statistics of one property over the whole graph.
#[derive(Clone, Debug)]
pub struct PropertyStats {
    /// The property.
    pub property: TermId,
    /// Display name.
    pub name: String,
    /// Number of `(s, o)` pairs.
    pub triples: usize,
    /// Distinct subjects carrying the property.
    pub subjects: usize,
    /// Distinct object values.
    pub distinct_values: usize,
    /// Subjects with more than one value (multi-valued property carrier).
    pub multi_valued_subjects: usize,
    /// Values with a numeric interpretation.
    pub numeric_values: usize,
    /// Object values that are resources with outgoing edges (link ends).
    pub link_values: usize,
    /// Values that look like free text (≥ 3 words).
    pub text_values: usize,
    /// Min/max over numeric values, if any.
    pub numeric_bounds: Option<(f64, f64)>,
}

impl PropertyStats {
    /// `true` when some subject carries several values.
    pub fn is_multi_valued(&self) -> bool {
        self.multi_valued_subjects > 0
    }

    /// `true` when the property mostly links to other described nodes —
    /// a path-derivation source.
    pub fn is_link(&self) -> bool {
        self.link_values * 2 > self.triples
    }

    /// `true` when the property mostly carries free text — a keyword /
    /// language derivation source.
    pub fn is_text(&self) -> bool {
        self.text_values * 2 > self.triples
    }

    /// `true` when the property mostly carries numbers.
    pub fn is_numeric(&self) -> bool {
        self.numeric_values * 2 > self.triples
    }
}

/// The offline statistics of all data properties.
#[derive(Clone, Debug, Default)]
pub struct OfflineStats {
    /// Per-property statistics, most frequent first.
    pub properties: Vec<PropertyStats>,
    by_id: HashMap<TermId, usize>,
}

impl OfflineStats {
    /// Looks a property's statistics up.
    pub fn get(&self, p: TermId) -> Option<&PropertyStats> {
        self.by_id.get(&p).map(|&i| &self.properties[i])
    }

    /// Number of (data) properties — Table 2's `#P`.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }
}

/// Properties that are RDF(S) machinery rather than data.
fn is_schema_property(graph: &Graph, p: TermId) -> bool {
    match graph.dict.term(p) {
        Term::Iri(iri) => {
            iri == vocab::RDF_TYPE
                || iri == vocab::RDFS_SUBCLASSOF
                || iri == vocab::RDFS_SUBPROPERTYOF
                || iri == vocab::RDFS_DOMAIN
                || iri == vocab::RDFS_RANGE
        }
        _ => false,
    }
}

/// Gathers per-property statistics over the whole graph.
pub fn analyze(graph: &Graph) -> OfflineStats {
    match analyze_budgeted(graph, 1, &Budget::unlimited()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("unlimited budget cannot cancel"),
    }
}

/// [`analyze`] fanned out over `threads` workers under a request
/// [`Budget`]: each property's full-graph scan is an independent work
/// item, merged in input order, so the statistics are bit-identical to the
/// serial pass at any thread count. Cancellation is polled once per
/// property.
pub fn analyze_budgeted(
    graph: &Graph,
    threads: usize,
    budget: &Budget,
) -> Result<OfflineStats, Cancelled> {
    budget.check()?;
    let mut stats = OfflineStats::default();
    let props: Vec<TermId> =
        graph.properties().filter(|&p| !is_schema_property(graph, p)).collect();
    stats.properties = spade_parallel::try_map(props, threads, |p| {
        budget.check()?;
        let pairs = graph.property_pairs(p);
        let mut subjects: HashMap<TermId, usize> = HashMap::new();
        let mut values: HashSet<TermId> = HashSet::new();
        let mut numeric = 0usize;
        let mut link = 0usize;
        let mut textv = 0usize;
        let mut bounds: Option<(f64, f64)> = None;
        for &(s, o) in pairs {
            *subjects.entry(s).or_default() += 1;
            values.insert(o);
            let term = graph.dict.term(o);
            if let Some(v) = term.numeric_value() {
                numeric += 1;
                bounds = Some(match bounds {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
            if term.is_resource() && !graph.outgoing(o).is_empty() {
                link += 1;
            }
            if let Some(l) = term.as_literal() {
                if term.value_kind() == ValueKind::String && text::is_texty(&l.lexical) {
                    textv += 1;
                }
            }
        }
        let multi = subjects.values().filter(|&&c| c > 1).count();
        Ok(PropertyStats {
            property: p,
            name: graph.dict.display(p),
            triples: pairs.len(),
            subjects: subjects.len(),
            distinct_values: values.len(),
            multi_valued_subjects: multi,
            numeric_values: numeric,
            link_values: link,
            text_values: textv,
            numeric_bounds: bounds,
        })
    })?;
    stats
        .properties
        .sort_by(|a, b| b.triples.cmp(&a.triples).then(a.property.cmp(&b.property)));
    stats.by_id = stats.properties.iter().enumerate().map(|(i, s)| (s.property, i)).collect();
    Ok(stats)
}

/// Flattens the offline statistics into the snapshot store's fixed-width
/// records (same order as [`OfflineStats::properties`]). Display names are
/// *not* stored — they are derived data, rebuilt from the dictionary by
/// [`from_records`].
pub fn to_records(stats: &OfflineStats) -> Vec<spade_store::PropertyStatsRecord> {
    stats
        .properties
        .iter()
        .map(|ps| spade_store::PropertyStatsRecord {
            property: ps.property,
            triples: ps.triples as u64,
            subjects: ps.subjects as u64,
            distinct_values: ps.distinct_values as u64,
            multi_valued_subjects: ps.multi_valued_subjects as u64,
            numeric_values: ps.numeric_values as u64,
            link_values: ps.link_values as u64,
            text_values: ps.text_values as u64,
            numeric_bounds: ps.numeric_bounds,
        })
        .collect()
}

/// Reconstitutes [`OfflineStats`] from snapshot records, restoring display
/// names from `graph`'s dictionary. The inverse of [`to_records`]: a
/// round trip reproduces the stats of a fresh [`analyze`] bit for bit.
pub fn from_records(
    graph: &Graph,
    records: &[spade_store::PropertyStatsRecord],
) -> OfflineStats {
    let mut stats = OfflineStats::default();
    stats.properties = records
        .iter()
        .map(|r| PropertyStats {
            property: r.property,
            name: graph.dict.display(r.property),
            triples: r.triples as usize,
            subjects: r.subjects as usize,
            distinct_values: r.distinct_values as usize,
            multi_valued_subjects: r.multi_valued_subjects as usize,
            numeric_values: r.numeric_values as usize,
            link_values: r.link_values as usize,
            text_values: r.text_values as usize,
            numeric_bounds: r.numeric_bounds,
        })
        .collect();
    stats.by_id = stats.properties.iter().enumerate().map(|(i, s)| (s.property, i)).collect();
    stats
}

/// How many derivations of each kind were enumerated (Table 2's `#DP`
/// columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DerivationCounts {
    /// Keyword derivations.
    pub kw: usize,
    /// Language derivations.
    pub lang: usize,
    /// Count derivations.
    pub count: usize,
    /// Path derivations (length 1).
    pub path: usize,
}

impl DerivationCounts {
    /// Total derived properties.
    pub fn total(&self) -> usize {
        self.kw + self.lang + self.count + self.path
    }
}

/// Enumerates the graph-wide derived properties guided by the offline
/// statistics (Derived Property Enumeration).
pub fn enumerate_derivations(
    graph: &Graph,
    stats: &OfflineStats,
    config: &SpadeConfig,
) -> (Vec<AttributeDef>, DerivationCounts) {
    match enumerate_derivations_budgeted(graph, stats, config, 1, &Budget::unlimited()) {
        Ok(r) => r,
        Err(_) => unreachable!("unlimited budget cannot cancel"),
    }
}

/// [`enumerate_derivations`] under a request [`Budget`], with the
/// expensive part — the per-link-property scan over target nodes — fanned
/// out over `threads` workers. The capped path assembly stays serial in
/// statistics order, so the enumerated derivations are bit-identical to
/// the serial pass at any thread count (a cancelled budget may skip
/// scans the serial version would also have skipped via the cap, and may
/// perform scans the serial version skips; neither affects a completed
/// run's output).
pub fn enumerate_derivations_budgeted(
    graph: &Graph,
    stats: &OfflineStats,
    config: &SpadeConfig,
    threads: usize,
    budget: &Budget,
) -> Result<(Vec<AttributeDef>, DerivationCounts), Cancelled> {
    budget.check()?;
    let mut out = Vec::new();
    let mut counts = DerivationCounts::default();
    if !config.enable_derivations {
        return Ok((out, counts));
    }
    for ps in &stats.properties {
        // (i) property counts for multi-valued properties.
        if ps.is_multi_valued() {
            out.push(AttributeDef::new(AttrKind::Count(ps.property), graph));
            counts.count += 1;
        }
        // (ii)/(iii) keywords and language of text properties.
        if ps.is_text() {
            out.push(AttributeDef::new(AttrKind::Keywords(ps.property), graph));
            counts.kw += 1;
            out.push(AttributeDef::new(AttrKind::Language(ps.property), graph));
            counts.lang += 1;
        }
    }
    budget.check()?;
    // (iv) paths p/q: p links to nodes carrying q. Each link property's
    // target-property histogram is an independent full scan — fan out, then
    // assemble serially in statistics order so the global cap picks the
    // same derivations as the serial loop.
    let links: Vec<TermId> =
        stats.properties.iter().filter(|ps| ps.is_link()).map(|ps| ps.property).collect();
    let histograms: Vec<Vec<(TermId, usize)>> =
        spade_parallel::try_map(links.clone(), threads, |p| {
            budget.check()?;
            let mut target_props: HashMap<TermId, usize> = HashMap::new();
            for &(_, o) in graph.property_pairs(p) {
                for &(q, _) in graph.outgoing(o) {
                    if !is_schema_property(graph, q) {
                        *target_props.entry(q).or_default() += 1;
                    }
                }
            }
            let mut qs: Vec<(TermId, usize)> = target_props.into_iter().collect();
            qs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            Ok(qs)
        })?;
    'outer: for (p, qs) in links.into_iter().zip(histograms) {
        for (q, _) in qs {
            if counts.path >= config.max_path_derivations {
                break 'outer;
            }
            out.push(AttributeDef::new(AttrKind::Path(p, q), graph));
            counts.path += 1;
        }
    }
    Ok((out, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_datagen::ceos_figure1;

    fn stats_for_figure1() -> (Graph, OfflineStats) {
        let g = ceos_figure1();
        let s = analyze(&g);
        (g, s)
    }

    #[test]
    fn schema_properties_excluded() {
        let (_, s) = stats_for_figure1();
        assert!(s.properties.iter().all(|p| p.name != "type"));
        assert!(s.property_count() > 5);
    }

    #[test]
    fn nationality_is_multi_valued() {
        let (g, s) = stats_for_figure1();
        let nat = g.dict.id_of(&Term::iri("http://ceos.example.org/nationality")).unwrap();
        let ps = s.get(nat).unwrap();
        assert_eq!(ps.triples, 5); // Angola + Ghosn's four
        assert_eq!(ps.subjects, 2);
        assert_eq!(ps.multi_valued_subjects, 1);
        assert!(ps.is_multi_valued());
        assert!(!ps.is_link());
    }

    #[test]
    fn company_is_a_link_property() {
        let (g, s) = stats_for_figure1();
        let company = g.dict.id_of(&Term::iri("http://ceos.example.org/company")).unwrap();
        assert!(s.get(company).unwrap().is_link());
    }

    #[test]
    fn net_worth_is_numeric_with_bounds() {
        let (g, s) = stats_for_figure1();
        let nw = g.dict.id_of(&Term::iri("http://ceos.example.org/netWorth")).unwrap();
        let ps = s.get(nw).unwrap();
        assert!(ps.is_numeric());
        assert_eq!(ps.numeric_bounds, Some((1.2e8, 2.8e9)));
    }

    #[test]
    fn derivations_cover_all_four_kinds() {
        let (g, s) = stats_for_figure1();
        let (defs, counts) = enumerate_derivations(&g, &s, &SpadeConfig::default());
        assert!(counts.count >= 2, "nationality, company, area are multi-valued");
        assert!(counts.kw >= 1 && counts.lang >= 1, "description is texty");
        assert!(counts.path >= 3, "company/area, company/name, politicalConnection/role…");
        assert_eq!(defs.len(), counts.total());
        // The famous Example 3 derivation exists.
        assert!(defs.iter().any(|d| d.name == "company/area"));
        assert!(defs.iter().any(|d| d.name == "politicalConnection/role"));
    }

    #[test]
    fn derivations_disabled_by_config() {
        let (g, s) = stats_for_figure1();
        let cfg = SpadeConfig::default().without_derivations();
        let (defs, counts) = enumerate_derivations(&g, &s, &cfg);
        assert!(defs.is_empty());
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn stats_records_roundtrip_exactly() {
        let (g, s) = stats_for_figure1();
        let records = to_records(&s);
        assert_eq!(records.len(), s.property_count());
        let back = from_records(&g, &records);
        assert_eq!(back.property_count(), s.property_count());
        for (a, b) in s.properties.iter().zip(&back.properties) {
            assert_eq!(a.property, b.property);
            assert_eq!(a.name, b.name, "display name rebuilt from the dictionary");
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.subjects, b.subjects);
            assert_eq!(a.distinct_values, b.distinct_values);
            assert_eq!(a.multi_valued_subjects, b.multi_valued_subjects);
            assert_eq!(a.numeric_values, b.numeric_values);
            assert_eq!(a.link_values, b.link_values);
            assert_eq!(a.text_values, b.text_values);
            assert_eq!(a.numeric_bounds, b.numeric_bounds);
        }
        for p in s.properties.iter().map(|ps| ps.property) {
            assert_eq!(back.get(p).unwrap().property, s.get(p).unwrap().property);
        }
    }

    #[test]
    fn path_budget_respected() {
        let (g, s) = stats_for_figure1();
        let cfg = SpadeConfig { max_path_derivations: 2, ..Default::default() };
        let (_, counts) = enumerate_derivations(&g, &s, &cfg);
        assert_eq!(counts.path, 2);
    }

    #[test]
    fn parallel_offline_is_thread_invariant() {
        let (g, serial_stats) = stats_for_figure1();
        let cfg = SpadeConfig::default();
        let (serial_defs, serial_counts) = enumerate_derivations(&g, &serial_stats, &cfg);
        let budget = Budget::unlimited();
        for threads in [2usize, 8] {
            let stats = analyze_budgeted(&g, threads, &budget).unwrap();
            assert_eq!(stats.property_count(), serial_stats.property_count());
            for (a, b) in stats.properties.iter().zip(&serial_stats.properties) {
                assert_eq!(a.property, b.property);
                assert_eq!(a.triples, b.triples);
                assert_eq!(a.subjects, b.subjects);
                assert_eq!(a.numeric_bounds, b.numeric_bounds);
            }
            let (defs, counts) =
                enumerate_derivations_budgeted(&g, &stats, &cfg, threads, &budget).unwrap();
            assert_eq!(counts, serial_counts);
            let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
            let serial_names: Vec<&str> = serial_defs.iter().map(|d| d.name.as_str()).collect();
            assert_eq!(names, serial_names);
        }
    }

    #[test]
    fn cancelled_budget_stops_offline_analysis() {
        let (g, s) = stats_for_figure1();
        let budget = Budget::unlimited();
        budget.cancel();
        assert!(analyze_budgeted(&g, 2, &budget).is_err());
        assert!(enumerate_derivations_budgeted(&g, &s, &SpadeConfig::default(), 2, &budget)
            .is_err());
    }
}
