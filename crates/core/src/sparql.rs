//! Rendering MDAs as SPARQL 1.1 aggregate queries.
//!
//! Section 2: "The semantics of A is that of a SPARQL 1.1 aggregate query
//! [13] … The query can be expressed in a language such as SPARQL 1.1 …
//! and evaluated by any RDF query engine." This module emits that query for
//! any discovered aggregate, so a user can re-run an insight on their own
//! triple store.
//!
//! Two faithfulness details:
//!
//! * **Per-fact measure contribution.** A naive `SUM(?m)` over the join
//!   would double-count facts with multi-valued dimensions — the very error
//!   Section 4.2 dissects. The emitted query therefore pre-aggregates the
//!   measure per fact in a subquery (mirroring Spade's offline pre-
//!   aggregated measures) so each fact contributes exactly once per group.
//! * **Derived properties.** Paths render as SPARQL property paths
//!   (`p/q`); counts render as a per-fact `COUNT` subquery; keyword and
//!   language attributes have no portable SPARQL equivalent (they come from
//!   Spade's offline text derivation), so they render as a placeholder
//!   `VALUES`-less pattern plus an explanatory comment.

use crate::attr::{AttrKind, AttributeDef};
use spade_rdf::{Graph, Term, TermId};
use spade_storage::AggFn;
use std::fmt::Write as _;

/// What the rendered query aggregates.
#[derive(Clone, Copy, Debug)]
pub enum SparqlMeasure<'a> {
    /// `COUNT(DISTINCT ?cf)` — the fact-count MDA.
    FactCount,
    /// `f(measure)` with per-fact pre-aggregation.
    Measure(&'a AttributeDef, AggFn),
}

fn iri_of(graph: &Graph, id: TermId) -> String {
    match graph.dict.term(id) {
        Term::Iri(s) => format!("<{s}>"),
        other => format!("{other}"),
    }
}

/// The SPARQL keyword of an aggregate function.
pub fn agg_keyword(f: AggFn) -> &'static str {
    match f {
        AggFn::Count => "COUNT",
        AggFn::Sum => "SUM",
        AggFn::Avg => "AVG",
        AggFn::Min => "MIN",
        AggFn::Max => "MAX",
    }
}

/// Emits the triple patterns binding `?var` to `attr`'s values of `?cf`.
fn attr_pattern(graph: &Graph, attr: &AttributeDef, var: &str, out: &mut String) {
    match &attr.kind {
        AttrKind::Direct(p) => {
            let _ = writeln!(out, "  ?cf {} ?{var} .", iri_of(graph, *p));
        }
        AttrKind::Path(p, q) => {
            let _ = writeln!(out, "  ?cf {}/{} ?{var} .", iri_of(graph, *p), iri_of(graph, *q));
        }
        AttrKind::Count(p) => {
            let _ = writeln!(
                out,
                "  {{ SELECT ?cf (COUNT(?__{var}) AS ?{var}) WHERE {{ ?cf {} ?__{var} . }} GROUP BY ?cf }}",
                iri_of(graph, *p)
            );
        }
        AttrKind::Keywords(p) => {
            let _ = writeln!(
                out,
                "  # {} is Spade's offline keyword derivation of {} — no portable",
                attr.name,
                iri_of(graph, *p)
            );
            let _ = writeln!(
                out,
                "  # SPARQL equivalent; materialize it as a property to reproduce.\n  ?cf {} ?{var} .",
                iri_of(graph, *p)
            );
        }
        AttrKind::Language(p) => {
            let _ = writeln!(
                out,
                "  ?cf {} ?__{var}_text .\n  BIND(LANG(?__{var}_text) AS ?{var})",
                iri_of(graph, *p)
            );
        }
    }
}

/// Renders a full MDA as a SPARQL 1.1 query.
///
/// * `cfs_type` — the class IRI for a type-based CFS (`?cf a <T>`); pass
///   `None` for property/summary-based CFSs (membership then comes from the
///   dimension patterns).
pub fn mda_to_sparql(
    graph: &Graph,
    cfs_type: Option<TermId>,
    dims: &[&AttributeDef],
    measure: SparqlMeasure<'_>,
) -> String {
    let mut query = String::from("SELECT ");
    for i in 0..dims.len() {
        let _ = write!(query, "?d{i} ");
    }
    match measure {
        SparqlMeasure::FactCount => query.push_str("(COUNT(DISTINCT ?cf) AS ?value)"),
        SparqlMeasure::Measure(_, f) => {
            // Outer aggregate over per-fact pre-aggregates: COUNT sums the
            // per-fact counts, AVG is the ratio of summed sums and counts.
            match f {
                AggFn::Count => query.push_str("(SUM(?cfCount) AS ?value)"),
                AggFn::Avg => query.push_str("(SUM(?cfSum)/SUM(?cfCount) AS ?value)"),
                AggFn::Sum => query.push_str("(SUM(?cfSum) AS ?value)"),
                AggFn::Min => query.push_str("(MIN(?cfMin) AS ?value)"),
                AggFn::Max => query.push_str("(MAX(?cfMax) AS ?value)"),
            }
        }
    }
    query.push_str("\nWHERE {\n");
    if let Some(t) = cfs_type {
        let _ = writeln!(query, "  ?cf a {} .", iri_of(graph, t));
    }
    for (i, d) in dims.iter().enumerate() {
        attr_pattern(graph, d, &format!("d{i}"), &mut query);
    }
    if let SparqlMeasure::Measure(m, f) = measure {
        // The per-fact pre-aggregation subquery (offline phase semantics).
        let inner = match &m.kind {
            AttrKind::Direct(p) | AttrKind::Path(p, _) => iri_of(graph, *p),
            AttrKind::Count(p) => iri_of(graph, *p),
            _ => String::from("?unsupportedTextMeasure"),
        };
        let path_suffix = match &m.kind {
            AttrKind::Path(_, q) => format!("/{}", iri_of(graph, *q)),
            _ => String::new(),
        };
        let projections = match f {
            AggFn::Sum => "(SUM(?mv) AS ?cfSum)".to_owned(),
            AggFn::Count => "(COUNT(?mv) AS ?cfCount)".to_owned(),
            AggFn::Avg => "(SUM(?mv) AS ?cfSum) (COUNT(?mv) AS ?cfCount)".to_owned(),
            AggFn::Min => "(MIN(?mv) AS ?cfMin)".to_owned(),
            AggFn::Max => "(MAX(?mv) AS ?cfMax)".to_owned(),
        };
        let _ = writeln!(
            query,
            "  {{ SELECT ?cf {projections}\n    WHERE {{ ?cf {inner}{path_suffix} ?mv . }} GROUP BY ?cf }}"
        );
    }
    query.push('}');
    if !dims.is_empty() {
        query.push_str("\nGROUP BY");
        for i in 0..dims.len() {
            let _ = write!(query, " ?d{i}");
        }
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Graph, TermId, AttributeDef, AttributeDef, AttributeDef, AttributeDef) {
        let mut g = Graph::new();
        let nationality = g.dict.intern_iri("http://x/nationality");
        let company = g.dict.intern_iri("http://x/company");
        let area = g.dict.intern_iri("http://x/area");
        let net_worth = g.dict.intern_iri("http://x/netWorth");
        let ceo = g.dict.intern_iri("http://x/CEO");
        let d_nat = AttributeDef::new(AttrKind::Direct(nationality), &g);
        let d_path = AttributeDef::new(AttrKind::Path(company, area), &g);
        let d_count = AttributeDef::new(AttrKind::Count(company), &g);
        let m_nw = AttributeDef::new(AttrKind::Direct(net_worth), &g);
        (g, ceo, d_nat, d_path, d_count, m_nw)
    }

    #[test]
    fn example1_query_shape() {
        // "Sum of the net worth of CEOs … grouped by country of origin".
        let (g, ceo, d_nat, _, _, m_nw) = setup();
        let q =
            mda_to_sparql(&g, Some(ceo), &[&d_nat], SparqlMeasure::Measure(&m_nw, AggFn::Sum));
        assert!(q.contains("SELECT ?d0 (SUM(?cfSum) AS ?value)"), "{q}");
        assert!(q.contains("?cf a <http://x/CEO> ."));
        assert!(q.contains("?cf <http://x/nationality> ?d0 ."));
        assert!(q.contains("GROUP BY ?cf }"), "per-fact pre-aggregation:\n{q}");
        assert!(q.ends_with("GROUP BY ?d0"));
    }

    #[test]
    fn path_derivation_uses_property_path() {
        let (g, ceo, _, d_path, _, _) = setup();
        let q = mda_to_sparql(&g, Some(ceo), &[&d_path], SparqlMeasure::FactCount);
        assert!(q.contains("?cf <http://x/company>/<http://x/area> ?d0 ."), "{q}");
        assert!(q.contains("COUNT(DISTINCT ?cf)"));
    }

    #[test]
    fn count_derivation_uses_subquery() {
        let (g, ceo, _, _, d_count, _) = setup();
        let q = mda_to_sparql(&g, Some(ceo), &[&d_count], SparqlMeasure::FactCount);
        assert!(q.contains("SELECT ?cf (COUNT(?__d0) AS ?d0)"), "{q}");
    }

    #[test]
    fn avg_divides_summed_preaggregates() {
        // Variation 2's correct semantics: sum of per-fact sums over sum of
        // per-fact counts — NOT AVG over the join.
        let (g, ceo, d_nat, _, _, m_nw) = setup();
        let q =
            mda_to_sparql(&g, Some(ceo), &[&d_nat], SparqlMeasure::Measure(&m_nw, AggFn::Avg));
        assert!(q.contains("(SUM(?cfSum)/SUM(?cfCount) AS ?value)"), "{q}");
        assert!(!q.contains("AVG(?mv) AS ?value"));
    }

    #[test]
    fn grand_total_has_no_group_by() {
        let (g, ceo, _, _, _, m_nw) = setup();
        let q = mda_to_sparql(&g, Some(ceo), &[], SparqlMeasure::Measure(&m_nw, AggFn::Max));
        assert!(!q.contains("GROUP BY ?d"));
        assert!(q.contains("(MIN(?mv) AS ?cfMin)") || q.contains("(MAX(?mv) AS ?cfMax)"));
    }

    #[test]
    fn agg_keywords() {
        assert_eq!(agg_keyword(AggFn::Sum), "SUM");
        assert_eq!(agg_keyword(AggFn::Count), "COUNT");
        assert_eq!(agg_keyword(AggFn::Min), "MIN");
    }
}
