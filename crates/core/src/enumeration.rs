//! Aggregate Enumeration (Section 3, Step 3).
//!
//! Dimension/measure identification happened during online analysis; this
//! module (b) finds the dimension set of each lattice via maximal frequent
//! sets and (c) assigns each lattice its measure set:
//!
//! "Once a lattice acquires dimensions D_i, we assign it a measure set M_i
//! that comprises all the analyzed attributes of the CFS except those in
//! D_i, and those that are derived from a dimension in D_i, e.g.,
//! numOfNationalities cannot be a measure in an aggregate whose dimension
//! is nationality."

use crate::analysis::CfsAnalysis;
use crate::config::SpadeConfig;
use crate::mfs::{maximal_frequent_sets_budgeted, Item};
use spade_bitmap::Bitmap;
use spade_parallel::{Budget, Cancelled};
use spade_storage::FactId;
use spade_telemetry::SpanCtx;

/// One lattice to evaluate: dimension and measure attribute indexes into
/// the [`CfsAnalysis::attributes`] vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticeSpec {
    /// Dimension attribute indexes (the lattice root), sorted.
    pub dims: Vec<usize>,
    /// Measure attribute indexes.
    pub measures: Vec<usize>,
}

impl LatticeSpec {
    /// Number of MDAs this lattice contributes before cross-lattice
    /// deduplication: `2^N · (1 + #measures · #fns)`.
    pub fn mda_count(&self, fns_per_measure: usize) -> usize {
        (1usize << self.dims.len()) * (1 + self.measures.len() * fns_per_measure)
    }
}

/// Whether two attributes may share a lattice: neither may be derived from
/// the other's base property ("does not contain attributes that are derived
/// one from the other").
fn compatible(
    a: &crate::analysis::AnalyzedAttribute,
    b: &crate::analysis::AnalyzedAttribute,
) -> bool {
    let a_from = a.def.derived_from();
    let b_from = b.def.derived_from();
    let a_base = a.def.base_property();
    let b_base = b.def.base_property();
    // derived(b) over direct a, derived(a) over direct b, or two derivations
    // of the same property.
    !(a_from.is_some() && a_from == b_base
        || b_from.is_some() && b_from == a_base
        || a_from.is_some() && a_from == b_from)
}

/// Enumerates the lattices of one analyzed CFS.
///
/// The per-attribute tidset construction (a full fact scan per dimension
/// candidate) and the per-root measure assignment are independent, so both
/// fan out over `config.threads` with input-order merges — candidate
/// generation is bit-identical at every thread count.
pub fn enumerate(analysis: &CfsAnalysis, config: &SpadeConfig) -> Vec<LatticeSpec> {
    enumerate_budgeted(analysis, config, &Budget::unlimited(), &SpanCtx::disabled())
        .expect("unlimited budget cannot cancel")
}

/// [`enumerate`] under a request [`Budget`]: the budget is polled per
/// tidset scan and per lattice root, so an expired request unwinds with
/// [`Cancelled`] within one attribute's fact scan. With
/// [`Budget::unlimited`] this is exactly [`enumerate`]. `ctx` records one
/// `mfs` span over the maximal-frequent-set mining with dimension-item and
/// lattice-root counts as attrs.
pub fn enumerate_budgeted(
    analysis: &CfsAnalysis,
    config: &SpadeConfig,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<Vec<LatticeSpec>, Cancelled> {
    let dim_attrs = analysis.dimension_attrs();
    if dim_attrs.is_empty() {
        return Ok(Vec::new());
    }
    // Tidsets over facts for the frequent-set mining.
    let items: Vec<Item> = spade_parallel::try_map(dim_attrs, config.threads, |ai| {
        budget.check()?;
        let col = analysis.attributes[ai].categorical.as_ref().expect("dims have columns");
        let tidset = Bitmap::from_iter(
            (0..analysis.n_facts() as u32).filter(|&f| !col.codes_of(FactId(f)).is_empty()),
        );
        Ok(Item { attr: ai, tidset })
    })?;
    let min_count = ((config.min_support * analysis.n_facts() as f64).ceil() as u64).max(1);
    budget.check()?;
    let mfs_span = ctx.span("mfs");
    mfs_span.attr("items", items.len() as u64);
    let roots = maximal_frequent_sets_budgeted(
        &items,
        min_count,
        config.max_lattice_dims,
        |a, b| compatible(&analysis.attributes[a], &analysis.attributes[b]),
        config.threads,
        budget,
    )?;
    mfs_span.attr("roots", roots.len() as u64);
    drop(mfs_span);

    spade_parallel::try_map(roots, config.threads, |dims| {
        budget.check()?;
        let measures: Vec<usize> = analysis
            .measure_attrs()
            .into_iter()
            .filter(|&mi| {
                !dims.contains(&mi)
                    && crate::config::filter_matches(
                        &config.measure_filter,
                        &analysis.attributes[mi].def.name,
                    )
                    && dims.iter().all(|&di| {
                        compatible(&analysis.attributes[di], &analysis.attributes[mi])
                    })
            })
            .collect();
        Ok(LatticeSpec { dims, measures })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_cfs;
    use crate::cfs::{select, CfsStrategy};
    use crate::offline;
    use spade_datagen::{realistic, RealisticConfig};

    fn ceos_analysis() -> (CfsAnalysis, SpadeConfig) {
        let g = realistic::ceos(&RealisticConfig { scale: 300, seed: 5 });
        let config = SpadeConfig { min_support: 0.3, ..Default::default() };
        let stats = offline::analyze(&g);
        let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
        let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
        let ceo = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
        (analyze_cfs(&g, ceo, &derived, &config), config)
    }

    #[test]
    fn lattices_found_with_bounded_dims() {
        let (analysis, config) = ceos_analysis();
        let lattices = enumerate(&analysis, &config);
        assert!(!lattices.is_empty(), "CEOs must yield lattices");
        for l in &lattices {
            assert!(!l.dims.is_empty());
            assert!(l.dims.len() <= config.max_lattice_dims);
            for &d in &l.dims {
                assert!(analysis.attributes[d].dimension_ok);
            }
            for &m in &l.measures {
                assert!(analysis.attributes[m].measure_ok);
                assert!(!l.dims.contains(&m));
            }
        }
    }

    #[test]
    fn no_lattice_mixes_base_and_derivation() {
        let (analysis, config) = ceos_analysis();
        let lattices = enumerate(&analysis, &config);
        for l in &lattices {
            for &d in &l.dims {
                for &d2 in &l.dims {
                    if d != d2 {
                        assert!(
                            compatible(&analysis.attributes[d], &analysis.attributes[d2]),
                            "{} vs {}",
                            analysis.attributes[d].def.name,
                            analysis.attributes[d2].def.name
                        );
                    }
                }
                // Measures derived from a dimension are excluded, e.g.
                // numOf(nationality) cannot measure a nationality lattice.
                for &m in &l.measures {
                    assert!(
                        compatible(&analysis.attributes[d], &analysis.attributes[m]),
                        "dim {} with measure {}",
                        analysis.attributes[d].def.name,
                        analysis.attributes[m].def.name
                    );
                }
            }
        }
    }

    #[test]
    fn mda_count_formula() {
        let l = LatticeSpec { dims: vec![0, 1], measures: vec![2, 3, 4] };
        // 2² nodes × (count(*) + 3 measures × 2 fns) = 4 × 7 = 28.
        assert_eq!(l.mda_count(2), 28);
    }

    #[test]
    fn no_dimensions_no_lattices() {
        let (mut analysis, config) = ceos_analysis();
        for a in &mut analysis.attributes {
            a.dimension_ok = false;
        }
        assert!(enumerate(&analysis, &config).is_empty());
    }
}
