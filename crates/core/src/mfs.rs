//! Maximal Frequent Sets of attributes (Section 3, Step 3(b)).
//!
//! "We compute the Maximal Frequent Sets of attributes [25] in the CFS.
//! Each of the found sets is the root of one lattice."
//!
//! An attribute set is *frequent* when the fraction of facts carrying **all**
//! its attributes reaches the support threshold; it is *maximal* when no
//! frequent superset exists (within the dimensionality cap `N` and the
//! compatibility rule — attributes derived one from the other may not share
//! a lattice). Mining uses tidset intersection over fact bitmaps, in the
//! spirit of GenMax [Gouda & Zaki, ICDM 2001].

use spade_bitmap::Bitmap;

/// One item: an attribute index plus the set of facts carrying it.
#[derive(Clone, Debug)]
pub struct Item {
    /// Caller-side attribute identifier.
    pub attr: usize,
    /// Facts having the attribute (the item's tidset).
    pub tidset: Bitmap,
}

/// Mines the maximal frequent attribute sets.
///
/// * `min_count` — absolute support threshold (facts carrying the set);
/// * `max_size` — dimensionality cap `N` (sets of this size count as
///   maximal even if a larger frequent superset exists);
/// * `compatible(a, b)` — pairwise rule; incompatible attributes never
///   co-occur in a set.
///
/// Returns sets of attribute ids, each sorted ascending; the result is
/// subset-free.
pub fn maximal_frequent_sets(
    items: &[Item],
    min_count: u64,
    max_size: usize,
    compatible: impl Fn(usize, usize) -> bool,
) -> Vec<Vec<usize>> {
    // Frequent single items, by descending support (dense-first ordering
    // makes long sets appear early, improving subsumption pruning).
    let mut order: Vec<usize> =
        (0..items.len()).filter(|&i| items[i].tidset.cardinality() >= min_count).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .tidset
            .cardinality()
            .cmp(&items[a].tidset.cardinality())
            .then(items[a].attr.cmp(&items[b].attr))
    });

    let mut maximal: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();

    fn is_subset_of_any(set: &[usize], maximal: &[Vec<usize>]) -> bool {
        maximal.iter().any(|m| set.iter().all(|a| m.contains(a)))
    }

    #[allow(clippy::too_many_arguments)]
    fn extend(
        items: &[Item],
        order: &[usize],
        from: usize,
        tids: &Bitmap,
        current: &mut Vec<usize>,
        maximal: &mut Vec<Vec<usize>>,
        min_count: u64,
        max_size: usize,
        compatible: &impl Fn(usize, usize) -> bool,
    ) {
        let mut extended = false;
        if current.len() < max_size {
            for (pos, &i) in order.iter().enumerate().skip(from) {
                let attr = items[i].attr;
                if !current.iter().all(|&a| compatible(a, attr)) {
                    continue;
                }
                if tids.intersect_len(&items[i].tidset) < min_count {
                    continue;
                }
                extended = true;
                let new_tids = tids.intersect(&items[i].tidset);
                current.push(attr);
                extend(
                    items,
                    order,
                    pos + 1,
                    &new_tids,
                    current,
                    maximal,
                    min_count,
                    max_size,
                    compatible,
                );
                current.pop();
            }
        }
        if !extended && !current.is_empty() {
            let mut set = current.clone();
            set.sort_unstable();
            if !is_subset_of_any(&set, maximal) {
                // A new maximal set may subsume previously found smaller ones
                // discovered along incompatible-order paths.
                maximal.retain(|m| !m.iter().all(|a| set.contains(a)));
                maximal.push(set);
            }
        }
    }

    if order.is_empty() {
        return maximal;
    }
    let universe = {
        // Union of all tidsets bounds the initial intersection identity.
        let mut u = Bitmap::new();
        for &i in &order {
            u.union_with(&items[i].tidset);
        }
        u
    };
    extend(
        items,
        &order,
        0,
        &universe,
        &mut current,
        &mut maximal,
        min_count,
        max_size,
        &compatible,
    );
    maximal.sort();
    maximal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(attr: usize, facts: &[u32]) -> Item {
        Item { attr, tidset: Bitmap::from_iter(facts.iter().copied()) }
    }

    #[test]
    fn single_frequent_item_is_maximal() {
        let items = vec![item(0, &[0, 1, 2]), item(1, &[9])];
        let sets = maximal_frequent_sets(&items, 2, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0]]);
    }

    #[test]
    fn finds_the_natural_maximal_set() {
        // Attributes 0,1,2 co-occur on facts 0–7; attribute 3 only on 0–2.
        let all: Vec<u32> = (0..8).collect();
        let items = vec![item(0, &all), item(1, &all), item(2, &all), item(3, &[0, 1, 2])];
        let sets = maximal_frequent_sets(&items, 4, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0, 1, 2]]);
        // Lowering the threshold pulls attribute 3 in.
        let sets = maximal_frequent_sets(&items, 3, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn disjoint_supports_give_two_lattice_roots() {
        let items = vec![
            item(0, &[0, 1, 2, 3]),
            item(1, &[0, 1, 2, 3]),
            item(2, &[10, 11, 12, 13]),
            item(3, &[10, 11, 12, 13]),
        ];
        let sets = maximal_frequent_sets(&items, 3, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn max_size_caps_the_roots() {
        let all: Vec<u32> = (0..10).collect();
        let items: Vec<Item> = (0..5).map(|a| item(a, &all)).collect();
        let sets = maximal_frequent_sets(&items, 5, 3, |_, _| true);
        for s in &sets {
            assert!(s.len() <= 3);
        }
        // The full 5-set is frequent, so capped 3-subsets must cover all
        // attributes across roots.
        let covered: std::collections::HashSet<usize> =
            sets.iter().flatten().copied().collect();
        assert_eq!(covered.len(), 5);
    }

    #[test]
    fn incompatible_attributes_split() {
        // 0 and 1 always co-occur but are declared incompatible (e.g.
        // nationality vs numOf(nationality)).
        let all: Vec<u32> = (0..10).collect();
        let items = vec![item(0, &all), item(1, &all), item(2, &all)];
        let sets =
            maximal_frequent_sets(&items, 5, 4, |a, b| !(a == 0 && b == 1 || a == 1 && b == 0));
        assert_eq!(sets, vec![vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn result_is_subset_free() {
        let items = vec![
            item(0, &(0..20).collect::<Vec<_>>()),
            item(1, &(0..20).collect::<Vec<_>>()),
            item(2, &(0..10).collect::<Vec<_>>()),
            item(3, &(5..25).collect::<Vec<_>>()),
        ];
        let sets = maximal_frequent_sets(&items, 8, 4, |_, _| true);
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    assert!(!a.iter().all(|x| b.contains(x)), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    #[test]
    fn empty_input_and_infrequent_items() {
        assert!(maximal_frequent_sets(&[], 1, 4, |_, _| true).is_empty());
        let items = vec![item(0, &[1]), item(1, &[2])];
        assert!(maximal_frequent_sets(&items, 2, 4, |_, _| true).is_empty());
    }
}
