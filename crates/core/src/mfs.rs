//! Maximal Frequent Sets of attributes (Section 3, Step 3(b)).
//!
//! "We compute the Maximal Frequent Sets of attributes [25] in the CFS.
//! Each of the found sets is the root of one lattice."
//!
//! An attribute set is *frequent* when the fraction of facts carrying **all**
//! its attributes reaches the support threshold; it is *maximal* when no
//! frequent superset exists (within the dimensionality cap `N` and the
//! compatibility rule — attributes derived one from the other may not share
//! a lattice). Mining uses tidset intersection over fact bitmaps, in the
//! spirit of GenMax [Gouda & Zaki, ICDM 2001].

use spade_bitmap::Bitmap;
use spade_parallel::{Budget, Cancelled};

/// One item: an attribute index plus the set of facts carrying it.
#[derive(Clone, Debug)]
pub struct Item {
    /// Caller-side attribute identifier.
    pub attr: usize,
    /// Facts having the attribute (the item's tidset).
    pub tidset: Bitmap,
}

/// Mines the maximal frequent attribute sets.
///
/// * `min_count` — absolute support threshold (facts carrying the set);
/// * `max_size` — dimensionality cap `N` (sets of this size count as
///   maximal even if a larger frequent superset exists);
/// * `compatible(a, b)` — pairwise rule; incompatible attributes never
///   co-occur in a set.
///
/// Returns sets of attribute ids, each sorted ascending; the result is
/// subset-free.
pub fn maximal_frequent_sets(
    items: &[Item],
    min_count: u64,
    max_size: usize,
    compatible: impl Fn(usize, usize) -> bool + Sync,
) -> Vec<Vec<usize>> {
    match maximal_frequent_sets_budgeted(
        items,
        min_count,
        max_size,
        compatible,
        1,
        &Budget::unlimited(),
    ) {
        Ok(sets) => sets,
        Err(_) => unreachable!("unlimited budget cannot cancel"),
    }
}

/// [`maximal_frequent_sets`] fanned out over `threads` workers under a
/// request [`Budget`].
///
/// The search tree's top-level branches (one per frequent item, in the
/// dense-first order) are mined independently; each branch records its
/// locally maximal sets, and a serial merge applies the same subsumption
/// rule across branches in branch order. Subsumption only suppresses
/// *storage* — it never alters which subtrees are explored — so the merged
/// subset-free family is identical to the serial mining at any thread
/// count. Cancellation is polled once per top-level branch.
pub fn maximal_frequent_sets_budgeted(
    items: &[Item],
    min_count: u64,
    max_size: usize,
    compatible: impl Fn(usize, usize) -> bool + Sync,
    threads: usize,
    budget: &Budget,
) -> Result<Vec<Vec<usize>>, Cancelled> {
    budget.check()?;
    // Frequent single items, by descending support (dense-first ordering
    // makes long sets appear early, improving subsumption pruning).
    let mut order: Vec<usize> =
        (0..items.len()).filter(|&i| items[i].tidset.cardinality() >= min_count).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .tidset
            .cardinality()
            .cmp(&items[a].tidset.cardinality())
            .then(items[a].attr.cmp(&items[b].attr))
    });

    fn is_subset_of_any(set: &[usize], maximal: &[Vec<usize>]) -> bool {
        maximal.iter().any(|m| set.iter().all(|a| m.contains(a)))
    }

    #[allow(clippy::too_many_arguments)]
    fn extend(
        items: &[Item],
        order: &[usize],
        from: usize,
        tids: &Bitmap,
        current: &mut Vec<usize>,
        maximal: &mut Vec<Vec<usize>>,
        min_count: u64,
        max_size: usize,
        compatible: &impl Fn(usize, usize) -> bool,
    ) {
        let mut extended = false;
        if current.len() < max_size {
            for (pos, &i) in order.iter().enumerate().skip(from) {
                let attr = items[i].attr;
                if !current.iter().all(|&a| compatible(a, attr)) {
                    continue;
                }
                if tids.intersect_len(&items[i].tidset) < min_count {
                    continue;
                }
                extended = true;
                let new_tids = tids.intersect(&items[i].tidset);
                current.push(attr);
                extend(
                    items,
                    order,
                    pos + 1,
                    &new_tids,
                    current,
                    maximal,
                    min_count,
                    max_size,
                    compatible,
                );
                current.pop();
            }
        }
        if !extended && !current.is_empty() {
            let mut set = current.clone();
            set.sort_unstable();
            if !is_subset_of_any(&set, maximal) {
                // A new maximal set may subsume previously found smaller ones
                // discovered along incompatible-order paths.
                maximal.retain(|m| !m.iter().all(|a| set.contains(a)));
                maximal.push(set);
            }
        }
    }

    if order.is_empty() || max_size == 0 {
        return Ok(Vec::new());
    }
    let universe = {
        // Union of all tidsets bounds the initial intersection identity.
        let mut u = Bitmap::new();
        let refs: Vec<&Bitmap> = order.iter().map(|&i| &items[i].tidset).collect();
        u.union_with_all(&refs);
        u
    };

    // Fan out over the top-level branches. Each branch explores the same
    // subtree the serial loop would (the recursion never consults the
    // accumulated maximal sets), so concatenating the branch outputs in
    // branch order reproduces the serial candidate stream.
    let positions: Vec<usize> = (0..order.len()).collect();
    let order = &order;
    let universe = &universe;
    let compatible = &compatible;
    let branches: Vec<Vec<Vec<usize>>> = spade_parallel::try_map(positions, threads, |pos| {
        budget.check()?;
        let i = order[pos];
        // Top level: `current` is empty, so compatibility is vacuous and
        // the intersection with the all-items universe is the tidset.
        if items[i].tidset.cardinality() < min_count {
            return Ok(Vec::new());
        }
        let new_tids = universe.intersect(&items[i].tidset);
        let mut current = vec![items[i].attr];
        let mut maximal: Vec<Vec<usize>> = Vec::new();
        extend(
            items,
            order,
            pos + 1,
            &new_tids,
            &mut current,
            &mut maximal,
            min_count,
            max_size,
            compatible,
        );
        Ok(maximal)
    })?;

    // Serial cross-branch merge with the same subsumption rule; the result
    // is the maximal antichain of all candidates, independent of order.
    let mut maximal: Vec<Vec<usize>> = Vec::new();
    for set in branches.into_iter().flatten() {
        if !is_subset_of_any(&set, &maximal) {
            maximal.retain(|m| !m.iter().all(|a| set.contains(a)));
            maximal.push(set);
        }
    }
    maximal.sort();
    Ok(maximal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(attr: usize, facts: &[u32]) -> Item {
        Item { attr, tidset: Bitmap::from_iter(facts.iter().copied()) }
    }

    #[test]
    fn single_frequent_item_is_maximal() {
        let items = vec![item(0, &[0, 1, 2]), item(1, &[9])];
        let sets = maximal_frequent_sets(&items, 2, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0]]);
    }

    #[test]
    fn finds_the_natural_maximal_set() {
        // Attributes 0,1,2 co-occur on facts 0–7; attribute 3 only on 0–2.
        let all: Vec<u32> = (0..8).collect();
        let items = vec![item(0, &all), item(1, &all), item(2, &all), item(3, &[0, 1, 2])];
        let sets = maximal_frequent_sets(&items, 4, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0, 1, 2]]);
        // Lowering the threshold pulls attribute 3 in.
        let sets = maximal_frequent_sets(&items, 3, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn disjoint_supports_give_two_lattice_roots() {
        let items = vec![
            item(0, &[0, 1, 2, 3]),
            item(1, &[0, 1, 2, 3]),
            item(2, &[10, 11, 12, 13]),
            item(3, &[10, 11, 12, 13]),
        ];
        let sets = maximal_frequent_sets(&items, 3, 4, |_, _| true);
        assert_eq!(sets, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn max_size_caps_the_roots() {
        let all: Vec<u32> = (0..10).collect();
        let items: Vec<Item> = (0..5).map(|a| item(a, &all)).collect();
        let sets = maximal_frequent_sets(&items, 5, 3, |_, _| true);
        for s in &sets {
            assert!(s.len() <= 3);
        }
        // The full 5-set is frequent, so capped 3-subsets must cover all
        // attributes across roots.
        let covered: std::collections::HashSet<usize> =
            sets.iter().flatten().copied().collect();
        assert_eq!(covered.len(), 5);
    }

    #[test]
    fn incompatible_attributes_split() {
        // 0 and 1 always co-occur but are declared incompatible (e.g.
        // nationality vs numOf(nationality)).
        let all: Vec<u32> = (0..10).collect();
        let items = vec![item(0, &all), item(1, &all), item(2, &all)];
        let sets =
            maximal_frequent_sets(&items, 5, 4, |a, b| !(a == 0 && b == 1 || a == 1 && b == 0));
        assert_eq!(sets, vec![vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn result_is_subset_free() {
        let items = vec![
            item(0, &(0..20).collect::<Vec<_>>()),
            item(1, &(0..20).collect::<Vec<_>>()),
            item(2, &(0..10).collect::<Vec<_>>()),
            item(3, &(5..25).collect::<Vec<_>>()),
        ];
        let sets = maximal_frequent_sets(&items, 8, 4, |_, _| true);
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    assert!(!a.iter().all(|x| b.contains(x)), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    #[test]
    fn empty_input_and_infrequent_items() {
        assert!(maximal_frequent_sets(&[], 1, 4, |_, _| true).is_empty());
        let items = vec![item(0, &[1]), item(1, &[2])];
        assert!(maximal_frequent_sets(&items, 2, 4, |_, _| true).is_empty());
    }

    #[test]
    fn parallel_mining_is_thread_invariant() {
        // Overlapping supports with an incompatibility so branches interact
        // through cross-branch subsumption.
        let items: Vec<Item> = (0..12)
            .map(|a| {
                let facts: Vec<u32> =
                    (0..60).filter(|f| !(f + a as u32).is_multiple_of(a as u32 + 2)).collect();
                item(a, &facts)
            })
            .collect();
        let compat = |a: usize, b: usize| !(a + b).is_multiple_of(7);
        let serial = maximal_frequent_sets(&items, 12, 4, compat);
        let budget = Budget::unlimited();
        for threads in [2usize, 8] {
            let par = maximal_frequent_sets_budgeted(&items, 12, 4, compat, threads, &budget)
                .unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn cancelled_budget_stops_mining() {
        let items = vec![item(0, &[0, 1, 2]), item(1, &[0, 1, 2])];
        let budget = Budget::unlimited();
        budget.cancel();
        assert!(maximal_frequent_sets_budgeted(&items, 1, 4, |_, _| true, 2, &budget).is_err());
    }
}
