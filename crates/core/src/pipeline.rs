//! The end-to-end Spade pipeline (Figure 2).
//!
//! [`Spade::run`] executes the offline phase (RDFS saturation, offline
//! attribute analysis, derived-property enumeration) followed by the five
//! online steps, timing each one — the instrumentation behind Figure 11 —
//! and returns a [`SpadeReport`] with the dataset profile (Table 2's
//! columns), the per-step timings, and the global top-k aggregates.

use crate::analysis::{analyze_cfs, CfsAnalysis};
use crate::cfs::{select_budgeted, CfsStrategy};
use crate::config::{RequestConfig, SpadeConfig};
use crate::enumeration::{enumerate_budgeted, LatticeSpec};
use crate::evaluate::evaluate_cfs_budgeted;
use crate::json::JsonWriter;
use crate::offline::{self, DerivationCounts, OfflineStats};
use spade_cube::arm::top_k_of_result;
use spade_cube::result::NULL_CODE;
use spade_parallel::{Budget, Cancelled};
use spade_rdf::{Graph, NtParseError};
use spade_store::{LoadedSnapshot, OpenMode, Snapshot, SnapshotError};
use spade_telemetry::{SpanCtx, Trace};
use std::path::Path;
use std::time::{Duration, Instant};

/// Wall-clock duration of each pipeline step (Figure 11's bar segments).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// Offline: N-Triples ingestion (parse + dictionary + graph build).
    /// Zero when the pipeline was handed an already-built [`Graph`].
    pub ingest: Duration,
    /// Offline: snapshot load (file read, validation, reconstitution).
    /// Non-zero only for [`Spade::run_snapshot`]-style runs, which replace
    /// ingestion, saturation, and attribute analysis entirely.
    pub snapshot_load: Duration,
    /// Offline: RDFS saturation.
    pub saturation: Duration,
    /// Offline: attribute statistics + derivation enumeration.
    pub offline_analysis: Duration,
    /// Offline phase total: ingestion, saturation, statistics, derivation
    /// enumeration.
    pub offline: Duration,
    /// Step 1 — Candidate Fact Set Selection.
    pub cfs_selection: Duration,
    /// Step 2 — Online Attribute Analysis.
    pub attribute_analysis: Duration,
    /// Step 3 — Aggregate Enumeration.
    pub enumeration: Duration,
    /// Step 4 — Aggregate Evaluation.
    pub evaluation: Duration,
    /// Step 5 — Top-k Computation.
    pub topk: Duration,
}

impl StepTimings {
    /// Total online time (offline excluded, as in Figure 11).
    pub fn online_total(&self) -> Duration {
        self.cfs_selection
            + self.attribute_analysis
            + self.enumeration
            + self.evaluation
            + self.topk
    }
}

/// The dataset profile — Table 2's columns.
#[derive(Clone, Copy, Debug, Default)]
pub struct DatasetProfile {
    /// `#triples`.
    pub triples: usize,
    /// `#CFSs` analyzed.
    pub cfs_count: usize,
    /// `#P` — direct (data) properties in the graph.
    pub direct_properties: usize,
    /// `#DP` — derived properties by kind (kw, lang, count, path).
    pub derivations: DerivationCounts,
    /// `#A` — aggregates enumerated (after cross-lattice sharing).
    pub aggregates: usize,
}

/// One aggregate in the top-k list.
#[derive(Clone, Debug)]
pub struct TopAggregate {
    /// Which CFS it analyzes.
    pub cfs: String,
    /// Dimension attribute names.
    pub dims: Vec<String>,
    /// The measure/function label, e.g. `sum(netWorth)`.
    pub mda: String,
    /// Interestingness score.
    pub score: f64,
    /// Number of (visible) groups.
    pub groups: usize,
    /// Up to twelve `(group label, value)` pairs for display (Figure 6).
    pub sample_groups: Vec<(String, f64)>,
}

impl TopAggregate {
    /// `sum(netWorth) of type:CEO by nationality, gender`-style description.
    pub fn description(&self) -> String {
        if self.dims.is_empty() {
            format!("{} of {}", self.mda, self.cfs)
        } else {
            format!("{} of {} by {}", self.mda, self.cfs, self.dims.join(", "))
        }
    }
}

/// Ground-truth work counters from a traced run: total `(cells, facts)`
/// touched by the engine shards, summed from the `cells`/`facts` attrs the
/// engine annotates on its `shard` spans during
/// [`Spade::run_on_traced`]. Each cube cell belongs to exactly one chunk
/// of exactly one shard, so the totals are plan- and thread-invariant —
/// the same request measures the same work at any thread count. The sum
/// filters by span name because other spans (`emit`, `translate`) reuse
/// the `cells` key with different meanings. Returns `(0, 0)` for an
/// untraced or not-yet-evaluated run.
///
/// This is the cost signal the serve-layer request ledger records per
/// request, and the measurement any cardinality estimator is scored
/// against.
pub fn work_counters(trace: &Trace) -> (u64, u64) {
    (trace.sum_attr("shard", "cells"), trace.sum_attr("shard", "facts"))
}

/// Everything a Spade run produces.
#[derive(Clone, Debug, Default)]
pub struct SpadeReport {
    /// Table 2 columns for the input graph.
    pub profile: DatasetProfile,
    /// Per-step wall-clock times.
    pub timings: StepTimings,
    /// The k most interesting aggregates, best first.
    pub top: Vec<TopAggregate>,
    /// Aggregates evaluated (after sharing and early-stop).
    pub evaluated_aggregates: usize,
    /// Aggregates pruned by early-stop.
    pub pruned_by_es: usize,
}

impl SpadeReport {
    /// Serializes the report as compact JSON — the `spade-serve` response
    /// body and the shared artifact shape.
    ///
    /// With `with_timings = false` the output is **deterministic**: it
    /// contains only pipeline results, which are bit-identical across
    /// thread counts and repeat runs, so equal requests produce equal
    /// bytes (the property the serve cache and the loopback determinism
    /// suite rely on). With `with_timings = true` a `timings_ms` object
    /// (wall-clock, inherently nondeterministic) is appended.
    pub fn to_json(&self, with_timings: bool) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("profile").begin_object();
        w.key("triples").usize(self.profile.triples);
        w.key("cfs_count").usize(self.profile.cfs_count);
        w.key("direct_properties").usize(self.profile.direct_properties);
        w.key("derivations").begin_object();
        w.key("kw").usize(self.profile.derivations.kw);
        w.key("lang").usize(self.profile.derivations.lang);
        w.key("count").usize(self.profile.derivations.count);
        w.key("path").usize(self.profile.derivations.path);
        w.end_object();
        w.key("aggregates").usize(self.profile.aggregates);
        w.end_object();
        w.key("evaluated_aggregates").usize(self.evaluated_aggregates);
        w.key("pruned_by_es").usize(self.pruned_by_es);
        w.key("top").begin_array();
        for t in &self.top {
            w.begin_object();
            w.key("cfs").string(&t.cfs);
            w.key("dims").begin_array();
            for d in &t.dims {
                w.string(d);
            }
            w.end_array();
            w.key("mda").string(&t.mda);
            w.key("score").f64(t.score);
            w.key("groups").usize(t.groups);
            w.key("description").string(&t.description());
            w.key("sample_groups").begin_array();
            for (label, value) in &t.sample_groups {
                w.begin_object();
                w.key("group").string(label);
                w.key("value").f64(*value);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        if with_timings {
            let ms = |d: Duration| d.as_secs_f64() * 1e3;
            w.key("timings_ms").begin_object();
            w.key("ingest").f64(ms(self.timings.ingest));
            w.key("snapshot_load").f64(ms(self.timings.snapshot_load));
            w.key("saturation").f64(ms(self.timings.saturation));
            w.key("offline_analysis").f64(ms(self.timings.offline_analysis));
            w.key("offline").f64(ms(self.timings.offline));
            w.key("cfs_selection").f64(ms(self.timings.cfs_selection));
            w.key("attribute_analysis").f64(ms(self.timings.attribute_analysis));
            w.key("enumeration").f64(ms(self.timings.enumeration));
            w.key("evaluation").f64(ms(self.timings.evaluation));
            w.key("topk").f64(ms(self.timings.topk));
            w.key("online_total").f64(ms(self.timings.online_total()));
            w.end_object();
        }
        w.end_object();
        w.finish()
    }
}

/// Everything that can fail building or serving from a snapshot.
#[derive(Debug)]
pub enum SnapshotPipelineError {
    /// The N-Triples input of [`Spade::snapshot_ntriples`] did not parse.
    Parse(NtParseError),
    /// The snapshot file could not be written, read, or validated.
    Store(SnapshotError),
}

impl std::fmt::Display for SnapshotPipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotPipelineError::Parse(e) => write!(f, "{e}"),
            SnapshotPipelineError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SnapshotPipelineError {}

impl From<NtParseError> for SnapshotPipelineError {
    fn from(e: NtParseError) -> Self {
        SnapshotPipelineError::Parse(e)
    }
}

impl From<SnapshotError> for SnapshotPipelineError {
    fn from(e: SnapshotError) -> Self {
        SnapshotPipelineError::Store(e)
    }
}

/// The complete **load-once** state of the offline phase: the saturated
/// graph (dictionary + indexes) and the offline per-property statistics.
///
/// This is the unit the load-once/serve-many split revolves around: a
/// serving process builds one `OfflineState` (in milliseconds, from a
/// `spade-store` snapshot) and then answers any number of
/// [`Spade::run_on`] requests against it concurrently — the state is
/// immutable, every online step takes `&Graph`/`&OfflineStats`, so sharing
/// it behind an `Arc` needs no locks.
pub struct OfflineState {
    /// The saturated graph.
    pub graph: Graph,
    /// Offline per-property statistics.
    pub stats: OfflineStats,
    /// Wall-clock cost of building this state (snapshot open + load, or
    /// saturation + analysis) — reported as
    /// [`StepTimings::snapshot_load`] by snapshot-backed runs.
    pub load_time: Duration,
    /// The validated snapshot this state was opened from, kept alive so a
    /// memory-mapped image stays addressable for the lifetime of the
    /// state (its resident pages are released right after load — holding
    /// it costs address space, not RSS) and is dropped — unmapped — with
    /// the state. `None` for graph-built and in-memory-image states.
    snapshot: Option<Snapshot>,
}

impl OfflineState {
    /// Loads the state from a snapshot file written by
    /// [`Spade::snapshot_ntriples`] (or `spade_store::write_snapshot`),
    /// memory-mapping the file by default (see [`OfflineState::open_with`]).
    pub fn open(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<OfflineState, SnapshotPipelineError> {
        Self::open_with(path, threads, OpenMode::default())
    }

    /// [`OfflineState::open`] with an explicit [`OpenMode`]. The opened
    /// snapshot is retained inside the state; in the default mapped mode
    /// its pages are released after materialization, so the state's
    /// steady-state memory is the in-memory graph alone — dropping the
    /// state (e.g. catalog eviction) unmaps the file and returns the RSS.
    pub fn open_with(
        path: impl AsRef<Path>,
        threads: usize,
        mode: OpenMode,
    ) -> Result<OfflineState, SnapshotPipelineError> {
        let t = Instant::now();
        let snapshot = Snapshot::open_with(path, threads, mode)?;
        let loaded = snapshot.load(threads)?;
        snapshot.release_resident_pages();
        let mut state = OfflineState::from_loaded(loaded, t.elapsed());
        state.snapshot = Some(snapshot);
        Ok(state)
    }

    /// [`OfflineState::open`] over an in-memory snapshot image.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        threads: usize,
    ) -> Result<OfflineState, SnapshotPipelineError> {
        let t = Instant::now();
        let loaded = Snapshot::from_bytes(bytes, threads)?.load(threads)?;
        Ok(OfflineState::from_loaded(loaded, t.elapsed()))
    }

    /// Builds the state directly from a graph (saturating it in place) —
    /// the snapshot-less path for tests and one-shot embedding.
    pub fn from_graph(mut graph: Graph, threads: usize) -> OfflineState {
        let t = Instant::now();
        spade_rdf::saturate_with_threads(&mut graph, threads);
        let stats = offline::analyze_budgeted(&graph, threads, &Budget::unlimited())
            .expect("unlimited budget cannot cancel");
        OfflineState { graph, stats, load_time: t.elapsed(), snapshot: None }
    }

    fn from_loaded(loaded: LoadedSnapshot, load_time: Duration) -> OfflineState {
        let stats = offline::from_records(&loaded.graph, &loaded.stats);
        OfflineState { graph: loaded.graph, stats, load_time, snapshot: None }
    }

    /// Whether the retained snapshot is a live file mapping.
    pub fn is_mapped(&self) -> bool {
        self.snapshot.as_ref().is_some_and(Snapshot::is_mapped)
    }

    /// Bytes of the on-disk image backing this state (0 when none).
    pub fn image_len(&self) -> usize {
        self.snapshot.as_ref().map_or(0, Snapshot::image_len)
    }

    /// A deliberately simple upper-bound estimate of this state's resident
    /// memory, used by the serving catalog's eviction budget: the
    /// materialized graph is proportional to the snapshot payload (triples,
    /// index columns, dictionary text all reappear on the heap, hash-map
    /// overhead roughly offsetting columnar compactness), plus the image
    /// itself when it is heap-backed rather than mapped.
    pub fn resident_estimate(&self) -> u64 {
        let image = self.image_len() as u64;
        let heap = if self.snapshot.is_some() {
            image
        } else {
            // Graph-built states: approximate from triple count alone.
            (self.graph.len() as u64) * 48
        };
        heap + if self.is_mapped() { 0 } else { image }
    }
}

/// The Spade engine.
pub struct Spade {
    config: SpadeConfig,
    strategies: Vec<CfsStrategy>,
}

impl Spade {
    /// Creates an engine with the default CFS strategies (type-based +
    /// summary-based; property-based is opt-in since it needs user input).
    pub fn new(config: SpadeConfig) -> Self {
        Spade { config, strategies: vec![CfsStrategy::TypeBased, CfsStrategy::SummaryBased] }
    }

    /// Overrides the CFS selection strategies.
    pub fn with_strategies(mut self, strategies: Vec<CfsStrategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SpadeConfig {
        &self.config
    }

    /// Parses `input` as N-Triples (parallel zero-copy ingestion) and runs
    /// the full pipeline, recording the parse in [`StepTimings::ingest`].
    pub fn run_ntriples(&self, input: &str) -> Result<SpadeReport, spade_rdf::NtParseError> {
        let t = Instant::now();
        let mut graph = spade_rdf::ingest(input, self.config.threads)?;
        let ingest = t.elapsed();
        let mut report = self.run(&mut graph);
        report.timings.ingest = ingest;
        report.timings.offline += ingest;
        Ok(report)
    }

    /// Runs the full pipeline on `graph` (saturated in place).
    pub fn run(&self, graph: &mut Graph) -> SpadeReport {
        let mut report = SpadeReport::default();
        let t = Instant::now();
        spade_rdf::saturate_with_threads(graph, self.config.threads);
        report.timings.saturation = t.elapsed();
        let t = Instant::now();
        let stats = offline::analyze_budgeted(graph, self.config.threads, &Budget::unlimited())
            .expect("unlimited budget cannot cancel");
        report.timings.offline_analysis = t.elapsed();
        self.run_analyzed(
            &self.config,
            graph,
            &stats,
            report,
            &Budget::unlimited(),
            &SpanCtx::disabled(),
        )
        .expect("unlimited budget cannot cancel")
    }

    /// Runs the **offline phase only** (ingestion, saturation, offline
    /// attribute analysis) on N-Triples text and writes the complete
    /// offline state to the snapshot file at `path`. A subsequent
    /// [`Spade::run_snapshot`] serves from that file without redoing any of
    /// it.
    pub fn snapshot_ntriples(
        &self,
        input: &str,
        path: impl AsRef<Path>,
    ) -> Result<(), SnapshotPipelineError> {
        let mut graph = spade_rdf::ingest(input, self.config.threads)?;
        spade_rdf::saturate_with_threads(&mut graph, self.config.threads);
        let stats =
            offline::analyze_budgeted(&graph, self.config.threads, &Budget::unlimited())
                .expect("unlimited budget cannot cancel");
        spade_store::write_snapshot(path, &graph, &offline::to_records(&stats))?;
        Ok(())
    }

    /// Runs the pipeline from a snapshot file: the offline phase collapses
    /// to one zero-copy load ([`StepTimings::snapshot_load`]); saturation
    /// and attribute analysis are **not** re-run — their outputs come from
    /// the file. Equivalent to [`OfflineState::open`] +
    /// [`Spade::run_on`] with no overrides.
    pub fn run_snapshot(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<SpadeReport, SnapshotPipelineError> {
        let state = OfflineState::open(path, self.config.threads)?;
        Ok(self.run_on(&state, &RequestConfig::default()))
    }

    /// [`Spade::run_snapshot`] over an in-memory snapshot image (e.g. one
    /// fetched from object storage instead of the filesystem).
    pub fn run_snapshot_bytes(
        &self,
        bytes: &[u8],
    ) -> Result<SpadeReport, SnapshotPipelineError> {
        let state = OfflineState::from_snapshot_bytes(bytes, self.config.threads)?;
        Ok(self.run_on(&state, &RequestConfig::default()))
    }

    /// The cheap **per-request** path of the load-once/serve-many split:
    /// runs the five online steps on an already-loaded [`OfflineState`]
    /// with `request`'s overrides resolved against this engine's base
    /// config. Takes `&self` and `&OfflineState` only — any number of
    /// `run_on` calls may execute concurrently against one shared state,
    /// and results are bit-identical across thread budgets and callers.
    pub fn run_on(&self, state: &OfflineState, request: &RequestConfig) -> SpadeReport {
        self.run_on_budgeted(state, request, &Budget::unlimited())
            .expect("unlimited budget cannot cancel")
    }

    /// [`Spade::run_on`] under a request [`Budget`]: a per-request
    /// deadline/cancellation flag is polled by every long-running stage
    /// (CFS selection, enumeration, early-stop pruning, the cube engine's
    /// region-shard loop), so an expired or cancelled request unwinds with
    /// the typed [`Cancelled`] error in bounded time instead of running to
    /// completion. Budget checks only ever *abort* — they never reorder or
    /// skip work — so an `Ok` result is bit-identical to [`Spade::run_on`].
    pub fn run_on_budgeted(
        &self,
        state: &OfflineState,
        request: &RequestConfig,
        budget: &Budget,
    ) -> Result<SpadeReport, Cancelled> {
        self.run_on_traced(state, request, budget, None)
    }

    /// [`Spade::run_on_budgeted`] with per-request tracing: when `trace` is
    /// given, every pipeline stage records a span into it (named exactly
    /// after the [`StepTimings`] online fields, plus `offline_analysis`),
    /// and the parallel fan-outs (per-CFS enumeration/evaluation, per
    /// lattice, per region shard) record index-ordered child spans — the
    /// span-tree **shape** is identical at every thread count. Tracing is
    /// observation only: the report is bit-identical with or without it.
    pub fn run_on_traced(
        &self,
        state: &OfflineState,
        request: &RequestConfig,
        budget: &Budget,
        trace: Option<&Trace>,
    ) -> Result<SpadeReport, Cancelled> {
        let config = request.apply(&self.config);
        let mut report = SpadeReport::default();
        report.timings.snapshot_load = state.load_time;
        let ctx = trace.map(Trace::root).unwrap_or_else(SpanCtx::disabled);
        self.run_analyzed(&config, &state.graph, &state.stats, report, budget, &ctx)
    }

    /// The shared tail of every entry point: derivation enumeration (the
    /// config-dependent rest of the offline phase) followed by the five
    /// online steps. `config` is the **effective** configuration — the
    /// engine's own for whole-pipeline runs, the request-resolved one for
    /// [`Spade::run_on`]; `report` carries whatever offline timings the
    /// caller already accumulated.
    ///
    /// Every step is timed through a [`SpanCtx`] span ([`Span::finish`]
    /// measures even on a disabled context), so the [`StepTimings`] fields
    /// and the recorded trace are one and the same measurement.
    ///
    /// [`Span::finish`]: spade_telemetry::Span::finish
    fn run_analyzed(
        &self,
        config: &SpadeConfig,
        graph: &Graph,
        stats: &OfflineStats,
        mut report: SpadeReport,
        budget: &Budget,
        ctx: &SpanCtx,
    ) -> Result<SpadeReport, Cancelled> {
        let span = ctx.span("offline_analysis");
        let (derived, derivation_counts) = offline::enumerate_derivations_budgeted(
            graph,
            stats,
            config,
            config.threads,
            budget,
        )?;
        report.timings.offline_analysis += span.finish();
        report.timings.offline = report.timings.snapshot_load
            + report.timings.saturation
            + report.timings.offline_analysis;
        report.profile.triples = graph.len();
        report.profile.direct_properties = stats.property_count();
        report.profile.derivations = derivation_counts;

        // —— Step 1: CFS selection ——
        let span = ctx.span("cfs_selection");
        let cfs_list = select_budgeted(graph, &self.strategies, config, budget, &span.ctx())?;
        span.attr("cfs", cfs_list.len() as u64);
        report.timings.cfs_selection = span.finish();
        report.profile.cfs_count = cfs_list.len();

        // —— Step 2: online attribute analysis (parallel per CFS) ——
        let span = ctx.span("attribute_analysis");
        let graph_ref: &Graph = graph;
        let analyses: Vec<CfsAnalysis> =
            spade_parallel::try_map(cfs_list.iter().collect(), config.threads, |cfs| {
                budget.check()?;
                Ok(analyze_cfs(graph_ref, cfs, &derived, config))
            })?;
        span.attr("cfs", analyses.len() as u64);
        report.timings.attribute_analysis = span.finish();

        // —— Step 3: aggregate enumeration (parallel per CFS; each CFS
        // fans its tidset construction out further — see
        // `enumeration::enumerate`) ——
        let span = ctx.span("enumeration");
        let ectx = span.ctx();
        let (enum_outer, enum_inner) =
            spade_parallel::split_budget(config.threads, analyses.len());
        let enum_config = SpadeConfig { threads: enum_inner, ..config.clone() };
        let lattice_specs: Vec<Vec<LatticeSpec>> = spade_parallel::try_map(
            analyses.iter().enumerate().collect(),
            enum_outer,
            |(i, a)| {
                let cfs_span = ectx.span_at("cfs", i as u64);
                enumerate_budgeted(a, &enum_config, budget, &cfs_span.ctx())
            },
        )?;
        report.timings.enumeration = span.finish();

        // —— Step 4: aggregate evaluation (parallel per CFS; each CFS fans
        // its lattices — and each lattice its region shards — out further,
        // see `evaluate::evaluate_cfs`). The thread budget is split across
        // the levels so the total worker count stays at `threads` instead
        // of `threads²`. ——
        let span = ctx.span("evaluation");
        let evctx = span.ctx();
        let (outer, inner) = spade_parallel::split_budget(config.threads, analyses.len());
        let inner_config = SpadeConfig { threads: inner, ..config.clone() };
        let evaluations: Vec<_> = spade_parallel::try_map(
            analyses.iter().zip(&lattice_specs).enumerate().collect(),
            outer,
            |(i, (analysis, lattices))| {
                let cfs_span = evctx.span_at("cfs", i as u64);
                cfs_span.attr("lattices", lattices.len() as u64);
                evaluate_cfs_budgeted(
                    analysis,
                    lattices,
                    &inner_config,
                    budget,
                    &cfs_span.ctx(),
                )
            },
        )?;
        report.timings.evaluation = span.finish();
        for e in &evaluations {
            report.profile.aggregates += e.enumerated_aggregates;
            report.evaluated_aggregates += e.evaluated_aggregates;
            report.pruned_by_es += e.pruned_by_es;
        }

        // —— Step 5: top-k (parallel per lattice result) ——
        let span = ctx.span("topk");
        // Score first with a light record; only the k winners get their
        // display details (dimension names, group samples) materialized.
        // Scoring fans out over the per-lattice results and merges in input
        // order, so the concatenation below — and therefore the tie-broken
        // sort — is identical for every thread count.
        struct Scored {
            cfs_idx: usize,
            lattice_idx: usize,
            id: spade_cube::arm::AggregateId,
            label: String,
            score: f64,
            groups: usize,
        }
        let score_inputs: Vec<(usize, usize, &spade_cube::CubeResult)> = evaluations
            .iter()
            .enumerate()
            .flat_map(|(cfs_idx, evaluation)| {
                evaluation
                    .results
                    .iter()
                    .enumerate()
                    .map(move |(lattice_idx, result)| (cfs_idx, lattice_idx, result))
            })
            .collect();
        let per_result: Vec<Vec<Scored>> = spade_parallel::try_map(
            score_inputs,
            config.threads,
            |(cfs_idx, lattice_idx, result)| {
                budget.check()?;
                Ok(top_k_of_result(result, config.interestingness, usize::MAX)
                    .into_iter()
                    .filter(|s| s.score > 0.0)
                    .map(|s| Scored {
                        cfs_idx,
                        lattice_idx,
                        id: s.id,
                        label: s.mda_label,
                        score: s.score,
                        groups: s.group_count,
                    })
                    .collect())
            },
        )?;
        let mut scored: Vec<Scored> = per_result.into_iter().flatten().collect();
        scored.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.cfs_idx.cmp(&b.cfs_idx))
                .then_with(|| a.label.cmp(&b.label))
                .then_with(|| a.id.cmp(&b.id))
        });
        scored.truncate(config.k);
        report.top = scored
            .into_iter()
            .map(|s| {
                let analysis = &analyses[s.cfs_idx];
                let lattice_spec = &lattice_specs[s.cfs_idx][s.lattice_idx];
                let result = &evaluations[s.cfs_idx].results[s.lattice_idx];
                let node = result.node(s.id.node_mask).expect("scored node exists");
                TopAggregate {
                    cfs: analysis.name.clone(),
                    dims: node
                        .dims
                        .iter()
                        .map(|&pos| {
                            analysis.attributes[lattice_spec.dims[pos]].def.name.clone()
                        })
                        .collect(),
                    mda: s.label,
                    score: s.score,
                    groups: s.groups,
                    sample_groups: sample_groups(analysis, lattice_spec, node, s.id.mda),
                }
            })
            .collect();
        report.timings.topk = span.finish();
        Ok(report)
    }
}

/// Renders up to twelve groups of a node's MDA for display.
fn sample_groups(
    analysis: &CfsAnalysis,
    lattice_spec: &LatticeSpec,
    node: &spade_cube::NodeResult,
    mda: usize,
) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = node
        .visible_groups()
        .filter_map(|(key, values)| {
            let v = values[mda]?;
            let label = key
                .iter()
                .enumerate()
                .map(|(pos, &code)| {
                    if code == NULL_CODE {
                        "null".to_owned()
                    } else {
                        let attr = lattice_spec.dims[node.dims[pos]];
                        analysis.attributes[attr]
                            .categorical
                            .as_ref()
                            .map(|c| c.label(code).to_owned())
                            .unwrap_or_else(|| code.to_string())
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            Some((label, v))
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.truncate(12);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_datagen::{ceos_figure1, realistic, RealisticConfig};

    #[test]
    fn end_to_end_on_simulated_ceos() {
        let mut g = realistic::ceos(&RealisticConfig { scale: 300, seed: 2 });
        let config = SpadeConfig { k: 5, min_support: 0.3, ..Default::default() };
        let report = Spade::new(config).run(&mut g);
        assert!(report.profile.cfs_count > 0);
        assert!(report.profile.direct_properties >= 8);
        assert!(report.profile.derivations.total() > 0);
        assert!(report.profile.aggregates > 10);
        assert_eq!(report.top.len(), 5);
        for w in report.top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // The Angolan netWorth outlier story must rank at the very top for
        // variance on this graph.
        assert!(
            report.top.iter().take(3).any(|t| t.mda.contains("netWorth")),
            "top-3: {:?}",
            report.top.iter().map(TopAggregate::description).collect::<Vec<_>>()
        );
    }

    #[test]
    fn early_stop_preserves_strong_winners() {
        let mut g1 = realistic::ceos(&RealisticConfig { scale: 300, seed: 2 });
        let mut g2 = realistic::ceos(&RealisticConfig { scale: 300, seed: 2 });
        let base = SpadeConfig { k: 3, min_support: 0.3, ..Default::default() };
        let full = Spade::new(base.clone()).run(&mut g1);
        let es = Spade::new(base.with_early_stop()).run(&mut g2);
        assert!(es.pruned_by_es > 0);
        assert!(es.evaluated_aggregates < full.evaluated_aggregates);
        // Accuracy on the clear-cut winner: the top-1 aggregate survives.
        assert_eq!(full.top[0].description(), es.top[0].description());
    }

    #[test]
    fn figure1_graph_yields_example_aggregates() {
        let mut g = ceos_figure1();
        let config = SpadeConfig {
            k: 20,
            min_cfs_size: 2,
            min_support: 0.4,
            max_distinct_ratio: 5.0,
            ..Default::default()
        };
        let report = Spade::new(config).run(&mut g);
        // Derived dimensions (paths like politicalConnection/role, counts
        // like numOf(company)) must appear among the top aggregates — the
        // graph is tiny, so ties decide which specific one surfaces.
        assert!(
            report
                .top
                .iter()
                .any(|t| t.dims.iter().any(|d| d.contains('/') || d.starts_with("numOf"))),
            "top: {:?}",
            report.top.iter().map(TopAggregate::description).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derivations_increase_aggregate_count() {
        // Experiment 1 (R1): derivations increase the number of MDAs.
        let mut g1 = realistic::ceos(&RealisticConfig { scale: 200, seed: 4 });
        let mut g2 = realistic::ceos(&RealisticConfig { scale: 200, seed: 4 });
        let base = SpadeConfig { min_support: 0.3, ..Default::default() };
        let wod = Spade::new(base.clone().without_derivations()).run(&mut g1);
        let wd = Spade::new(base).run(&mut g2);
        assert!(wd.profile.aggregates > wod.profile.aggregates);
        assert_eq!(wod.profile.derivations.total(), 0);
    }

    #[test]
    fn timings_are_recorded() {
        let mut g = realistic::nasa(&RealisticConfig { scale: 150, seed: 3 });
        let report =
            Spade::new(SpadeConfig { min_support: 0.3, ..Default::default() }).run(&mut g);
        assert!(report.timings.online_total() > Duration::ZERO);
        assert!(report.timings.evaluation > Duration::ZERO);
        // Offline splits: no ingestion happened, and the offline total is
        // exactly its recorded parts.
        assert_eq!(report.timings.ingest, Duration::ZERO);
        assert_eq!(
            report.timings.offline,
            report.timings.saturation + report.timings.offline_analysis
        );
    }

    #[test]
    fn run_ntriples_records_ingest_split() {
        let g = realistic::ceos(&RealisticConfig { scale: 100, seed: 5 });
        let nt = spade_rdf::write_ntriples(&g);
        let spade = Spade::new(SpadeConfig { min_support: 0.3, ..Default::default() });
        let report = spade.run_ntriples(&nt).expect("valid N-Triples");
        assert!(report.timings.ingest > Duration::ZERO);
        assert_eq!(
            report.timings.offline,
            report.timings.ingest + report.timings.saturation + report.timings.offline_analysis
        );
        assert!(report.profile.triples > 0);
        // Same pipeline on the pre-built graph agrees on the profile.
        let mut g2 = realistic::ceos(&RealisticConfig { scale: 100, seed: 5 });
        let direct = spade.run(&mut g2);
        assert_eq!(report.profile.triples, direct.profile.triples);
        assert_eq!(report.profile.cfs_count, direct.profile.cfs_count);
        assert!(spade.run_ntriples("broken\n").is_err());
    }

    #[test]
    fn run_on_shared_state_matches_whole_pipeline_run() {
        let g = realistic::ceos(&RealisticConfig { scale: 200, seed: 2 });
        let config = SpadeConfig { k: 5, min_support: 0.3, ..Default::default() };
        let spade = Spade::new(config.clone());
        let state = OfflineState::from_graph(g, config.threads);
        let served = spade.run_on(&state, &RequestConfig::default());
        let mut g2 = realistic::ceos(&RealisticConfig { scale: 200, seed: 2 });
        let direct = Spade::new(config).run(&mut g2);
        // Identical results (compared through the deterministic JSON body),
        // and repeat requests against the same state are byte-identical.
        assert_eq!(served.to_json(false), direct.to_json(false));
        let again = spade.run_on(&state, &RequestConfig::default());
        assert_eq!(served.to_json(false), again.to_json(false));
    }

    #[test]
    fn run_on_applies_request_overrides() {
        let g = realistic::ceos(&RealisticConfig { scale: 200, seed: 2 });
        let base = SpadeConfig { k: 5, min_support: 0.3, ..Default::default() };
        let spade = Spade::new(base);
        let state = OfflineState::from_graph(g, 0);
        let full = spade.run_on(&state, &RequestConfig::default());
        assert_eq!(full.top.len(), 5);

        // k override shrinks the answer to a prefix of the full one.
        let k2 = spade.run_on(&state, &RequestConfig { k: Some(2), ..Default::default() });
        assert_eq!(k2.top.len(), 2);
        for (a, b) in k2.top.iter().zip(&full.top) {
            assert_eq!(a.description(), b.description());
        }

        // CFS filter: every reported aggregate analyzes a matching CFS, and
        // unfiltered profiles see more CFSs.
        let ceo = spade.run_on(
            &state,
            &RequestConfig { cfs_filter: vec!["type:CEO".into()], ..Default::default() },
        );
        assert!(ceo.profile.cfs_count >= 1);
        assert!(ceo.profile.cfs_count < full.profile.cfs_count);
        assert!(ceo.top.iter().all(|t| t.cfs.contains("type:CEO")), "filtered CFSs only");

        // Measure filter: only count(*) and matching measures survive.
        let nw = spade.run_on(
            &state,
            &RequestConfig { measure_filter: vec!["netWorth".into()], ..Default::default() },
        );
        assert!(!nw.top.is_empty());
        assert!(
            nw.top.iter().all(|t| t.mda.contains("netWorth") || t.mda == "count(*)"),
            "top: {:?}",
            nw.top.iter().map(TopAggregate::description).collect::<Vec<_>>()
        );
        assert!(nw.profile.aggregates < full.profile.aggregates);

        // Interestingness override is honored.
        let skew = spade.run_on(
            &state,
            &RequestConfig {
                interestingness: Some(spade_stats::Interestingness::Skewness),
                ..Default::default()
            },
        );
        assert!(!skew.top.is_empty());

        // Thread budget is a pure latency knob: bit-identical bodies.
        for threads in [1usize, 2, 8] {
            let r = spade.run_on(
                &state,
                &RequestConfig { threads: Some(threads), ..Default::default() },
            );
            assert_eq!(r.to_json(false), full.to_json(false), "threads={threads}");
        }
    }

    #[test]
    fn report_json_shape() {
        let g = realistic::ceos(&RealisticConfig { scale: 150, seed: 3 });
        let spade = Spade::new(SpadeConfig { k: 3, min_support: 0.3, ..Default::default() });
        let state = OfflineState::from_graph(g, 0);
        let report = spade.run_on(&state, &RequestConfig::default());
        let body = report.to_json(false);
        let parsed = crate::json::parse(&body).expect("body is valid JSON");
        assert_eq!(
            parsed.get("profile").and_then(|p| p.get("triples")).and_then(|v| v.as_usize()),
            Some(report.profile.triples)
        );
        assert_eq!(
            parsed.get("top").and_then(|t| t.as_array()).map(<[_]>::len),
            Some(report.top.len())
        );
        assert!(body.find("\"timings_ms\"").is_none());
        let with_timings = report.to_json(true);
        let parsed = crate::json::parse(&with_timings).expect("timed body is valid JSON");
        assert!(parsed.get("timings_ms").is_some());
    }

    #[test]
    fn description_format() {
        let t = TopAggregate {
            cfs: "type:CEO".into(),
            dims: vec!["nationality".into(), "gender".into()],
            mda: "sum(netWorth)".into(),
            score: 1.0,
            groups: 4,
            sample_groups: vec![],
        };
        assert_eq!(t.description(), "sum(netWorth) of type:CEO by nationality, gender");
    }
}
