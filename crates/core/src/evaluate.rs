//! Aggregate Evaluation (Section 3, Step 4).
//!
//! Wires the enumerated lattices into MVDCube, with two cost savers:
//!
//! * **cross-lattice sharing** — "Spade ensures that the results of
//!   evaluated MDAs are reused (not recomputed) in the other lattices where
//!   they appear": a `(dimension set, MDA)` pair evaluated by one lattice is
//!   marked dead in every later lattice of the same CFS;
//! * **early-stop** — when enabled, the Section 5 pruning runs on the
//!   stratified samples collected during data translation, and only the
//!   surviving MDAs are computed.
//!
//! Evaluation is staged so the heavy work fans out: a serial planning pass
//! resolves cross-lattice sharing (inherently order-dependent — earlier
//! lattices claim shared aggregates), then every lattice's translation,
//! early-stop pruning, and cube evaluation run independently on the
//! [`spade_parallel`] pool, and a serial fold merges the outcomes in
//! lattice order so counters and results are identical at any thread count.
//! The thread budget splits across the two fan-out levels
//! ([`spade_parallel::split_budget`]): outer workers run whole lattices,
//! and each lattice's leftover inner budget drives the region-sharded
//! engine (and the early-stop pruning loop) *within* that lattice — the
//! single-large-lattice shape then still uses every core.

use crate::analysis::CfsAnalysis;
use crate::config::SpadeConfig;
use crate::enumeration::LatticeSpec;
use spade_cube::earlystop;
use spade_cube::mvdcube::{mvd_cube_pruned_budgeted, prepare_budgeted, MvdCubeOptions};
use spade_cube::{CubeResult, CubeSpec, MeasureSpec};
use spade_parallel::{Budget, Cancelled};
use spade_telemetry::SpanCtx;
use std::collections::{HashMap, HashSet};

/// The evaluation output for one CFS.
#[derive(Debug, Default)]
pub struct CfsEvaluation {
    /// One result per lattice (parallel to the input specs).
    pub results: Vec<CubeResult>,
    /// `(node, MDA)` aggregates actually computed (after sharing + ES).
    pub evaluated_aggregates: usize,
    /// Aggregates enumerated for this CFS (after cross-lattice sharing,
    /// before early-stop) — the Table 2 `#A` contribution.
    pub enumerated_aggregates: usize,
    /// Aggregates removed by early-stop.
    pub pruned_by_es: usize,
}

/// The parallel outcome of one lattice's translation + pruning + cube run.
struct LatticeOutcome {
    result: CubeResult,
    evaluated_aggregates: usize,
    pruned_by_es: usize,
}

/// Evaluates all lattices of one CFS.
pub fn evaluate_cfs(
    analysis: &CfsAnalysis,
    lattices: &[LatticeSpec],
    config: &SpadeConfig,
) -> CfsEvaluation {
    evaluate_cfs_budgeted(
        analysis,
        lattices,
        config,
        &Budget::unlimited(),
        &SpanCtx::disabled(),
    )
    .expect("unlimited budget cannot cancel")
}

/// [`evaluate_cfs`] under a request [`Budget`]: the budget is polled per
/// lattice during planning and threaded into every lattice's early-stop
/// pruning and cube run, so an expired request unwinds with [`Cancelled`]
/// within one region flush. With [`Budget::unlimited`] this is exactly
/// [`evaluate_cfs`].
///
/// `ctx` records one `lattice` span per lattice, ordered by lattice index
/// ([`SpanCtx::span_at`]) so the span-tree shape is identical at every
/// thread count; each lattice span nests the translate, early-stop, and
/// cube-engine child spans opened by the stages it runs.
pub fn evaluate_cfs_budgeted(
    analysis: &CfsAnalysis,
    lattices: &[LatticeSpec],
    config: &SpadeConfig,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<CfsEvaluation, Cancelled> {
    let mut evaluation = CfsEvaluation::default();
    // Split the thread budget: `outer` lattices in flight, each with
    // `inner` workers for its intra-lattice region shards.
    let (outer, inner) = spade_parallel::split_budget(config.threads, lattices.len());
    let options = MvdCubeOptions { threads: inner, ..Default::default() };

    // —— serial planning: cross-lattice sharing ——
    // `(sorted dim attribute ids, MDA label)` pairs already evaluated in an
    // earlier lattice of this CFS; lattice order decides who computes a
    // shared aggregate, so this pass must stay sequential.
    let mut shared: HashSet<(Vec<usize>, String)> = HashSet::new();
    let mut work: Vec<(CubeSpec<'_>, HashMap<u32, Vec<bool>>)> =
        Vec::with_capacity(lattices.len());
    for lattice_spec in lattices {
        budget.check()?;
        let dims: Vec<_> = lattice_spec
            .dims
            .iter()
            .map(|&d| analysis.attributes[d].categorical.as_ref().expect("dimension column"))
            .collect();
        let measures: Vec<MeasureSpec<'_>> = lattice_spec
            .measures
            .iter()
            .map(|&m| MeasureSpec {
                preagg: analysis.attributes[m].numeric.as_ref().expect("measure column"),
                fns: config.agg_fns.clone(),
            })
            .collect();
        let spec = CubeSpec::new(dims, measures, analysis.n_facts());
        let mdas = spec.mdas();

        // Mark duplicated (dim set, MDA) pairs dead.
        let n_dims = lattice_spec.dims.len();
        let mut alive: HashMap<u32, Vec<bool>> = HashMap::new();
        for mask in 0u32..(1 << n_dims) {
            let dim_attrs: Vec<usize> = (0..n_dims)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| lattice_spec.dims[i])
                .collect();
            let flags: Vec<bool> = mdas
                .iter()
                .map(|mda| shared.insert((dim_attrs.clone(), mda.label.clone())))
                .collect();
            evaluation.enumerated_aggregates += flags.iter().filter(|&&f| f).count();
            alive.insert(mask, flags);
        }
        work.push((spec, alive));
    }

    // —— parallel per-lattice evaluation ——
    // Translation, early-stop pruning (each lattice draws from its own
    // seeded sample), and the cube run are independent per lattice.
    #[allow(clippy::type_complexity)]
    let indexed: Vec<(usize, (CubeSpec<'_>, HashMap<u32, Vec<bool>>))> =
        work.into_iter().enumerate().collect();
    let outcomes = spade_parallel::try_map(indexed, outer, |(idx, (spec, mut alive))| {
        budget.check()?;
        let lattice_span = ctx.span_at("lattice", idx as u64);
        let lctx = lattice_span.ctx();
        let sample_cap = config.early_stop.map(|es| es.sample_size);
        let (lattice, translation) =
            prepare_budgeted(&spec, &options, sample_cap, budget, &lctx)?;
        let mut pruned_by_es = 0usize;
        if let Some(es_config) = &config.early_stop {
            let samples = translation.samples.clone().expect("sampling enabled");
            let outcome = earlystop::prune_budgeted(
                &spec, &lattice, &samples, es_config, inner, budget, &lctx,
            )?;
            for (mask, flags) in &mut alive {
                let es_flags = &outcome.alive[mask];
                for (i, f) in flags.iter_mut().enumerate() {
                    if *f && !es_flags[i] {
                        *f = false;
                        pruned_by_es += 1;
                    }
                }
            }
        }
        let evaluated_aggregates =
            alive.values().map(|f| f.iter().filter(|&&x| x).count()).sum::<usize>();
        lattice_span.attr("aggregates", evaluated_aggregates as u64);
        let result = mvd_cube_pruned_budgeted(
            &spec,
            &options,
            &lattice,
            &translation,
            &alive,
            budget,
            &lctx,
        )?;
        Ok(LatticeOutcome { result, evaluated_aggregates, pruned_by_es })
    })?;

    // —— serial fold, in lattice order ——
    for outcome in outcomes {
        evaluation.evaluated_aggregates += outcome.evaluated_aggregates;
        evaluation.pruned_by_es += outcome.pruned_by_es;
        evaluation.results.push(outcome.result);
    }
    Ok(evaluation)
}

#[cfg(test)]
impl SpadeConfig {
    /// Test helper: same config with early-stop off.
    fn clone_without_es(&self) -> SpadeConfig {
        SpadeConfig { early_stop: None, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_cfs;
    use crate::cfs::{select, CfsStrategy};
    use crate::enumeration::enumerate;
    use crate::offline;
    use spade_datagen::{realistic, RealisticConfig};

    fn setup() -> (CfsAnalysis, Vec<LatticeSpec>, SpadeConfig) {
        let g = realistic::ceos(&RealisticConfig { scale: 250, seed: 9 });
        let config = SpadeConfig { min_support: 0.3, ..Default::default() };
        let stats = offline::analyze(&g);
        let (derived, _) = offline::enumerate_derivations(&g, &stats, &config);
        let cfs_list = select(&g, &[CfsStrategy::TypeBased], &config);
        let ceo = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
        let analysis = analyze_cfs(&g, ceo, &derived, &config);
        let lattices = enumerate(&analysis, &config);
        (analysis, lattices, config)
    }

    #[test]
    fn evaluates_every_lattice() {
        let (analysis, lattices, config) = setup();
        assert!(!lattices.is_empty());
        let eval = evaluate_cfs(&analysis, &lattices, &config);
        assert_eq!(eval.results.len(), lattices.len());
        assert!(eval.evaluated_aggregates > 0);
        assert_eq!(eval.evaluated_aggregates, eval.enumerated_aggregates);
        // Every result has a populated root node.
        for (r, l) in eval.results.iter().zip(&lattices) {
            let root = (1u32 << l.dims.len()) - 1;
            assert!(r.node(root).is_some());
        }
    }

    #[test]
    fn sharing_avoids_recomputation_across_lattices() {
        let (analysis, lattices, config) = setup();
        if lattices.len() < 2 {
            // The sharing path is still exercised inside one lattice run;
            // nothing to assert across lattices.
            return;
        }
        let eval = evaluate_cfs(&analysis, &lattices, &config);
        let independent: usize =
            lattices.iter().map(|l| l.mda_count(config.agg_fns.len())).sum();
        assert!(
            eval.enumerated_aggregates <= independent,
            "sharing cannot increase the aggregate count"
        );
    }

    #[test]
    fn early_stop_reduces_computed_aggregates() {
        let (analysis, lattices, config) = setup();
        let es_config = SpadeConfig { k: 3, ..config }.with_early_stop();
        let plain = evaluate_cfs(&analysis, &lattices, &es_config.clone_without_es());
        let pruned = evaluate_cfs(&analysis, &lattices, &es_config);
        assert!(pruned.pruned_by_es > 0, "expected pruning on a 250-fact CFS");
        assert!(pruned.evaluated_aggregates < plain.evaluated_aggregates);
        assert_eq!(
            pruned.evaluated_aggregates + pruned.pruned_by_es,
            plain.evaluated_aggregates
        );
    }
}
