//! Text utilities for derived properties: keyword extraction and language
//! detection (Section 3's Derived Property Enumeration, items (ii) and
//! (iii)).

/// Minimal multilingual stopword lists used both to drop noise keywords and
/// to detect the language of a text property.
const STOPWORDS_EN: [&str; 24] = [
    "the", "a", "an", "and", "or", "of", "in", "on", "for", "with", "to", "is", "are", "was",
    "be", "by", "at", "as", "that", "this", "from", "it", "its", "into",
];
const STOPWORDS_FR: [&str; 22] = [
    "le",
    "la",
    "les",
    "un",
    "une",
    "des",
    "et",
    "ou",
    "de",
    "du",
    "dans",
    "sur",
    "pour",
    "avec",
    "est",
    "sont",
    "par",
    "au",
    "aux",
    "que",
    "qui",
    "mélanger",
];
const STOPWORDS_DE: [&str; 16] = [
    "der", "die", "das", "ein", "eine", "und", "oder", "von", "im", "auf", "für", "mit", "ist",
    "sind", "durch", "dem",
];
const STOPWORDS_ES: [&str; 16] = [
    "el", "la", "los", "las", "un", "una", "y", "o", "de", "del", "en", "para", "con", "es",
    "son", "por",
];

/// Lowercases and splits a text into candidate tokens (alphabetic runs of
/// length ≥ `min_len`).
fn tokens(text: &str, min_len: usize) -> Vec<String> {
    text.split(|c: char| !c.is_alphabetic())
        .filter(|t| t.chars().count() >= min_len)
        .map(|t| t.to_lowercase())
        .collect()
}

/// Extracts keywords from a text property value: lowercased alphabetic
/// tokens of length ≥ `min_len`, minus stopwords, deduplicated.
///
/// E.g. "Sonangol oversees petroleum production" → the company "gain[s] the
/// multi-valued attribute kwInDescription with the values Petroleum and
/// Production" (Section 3) — plus the other content words.
pub fn keywords(text: &str, min_len: usize) -> Vec<String> {
    let mut out: Vec<String> = tokens(text, min_len)
        .into_iter()
        .filter(|t| {
            let t = t.as_str();
            !STOPWORDS_EN.contains(&t)
                && !STOPWORDS_FR.contains(&t)
                && !STOPWORDS_DE.contains(&t)
                && !STOPWORDS_ES.contains(&t)
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Detects the language of a text by stopword hit counting. Returns `None`
/// for texts with no recognizable function words (numbers, names, codes).
pub fn detect_language(text: &str) -> Option<&'static str> {
    let toks = tokens(text, 1);
    if toks.is_empty() {
        return None;
    }
    let count = |list: &[&str]| toks.iter().filter(|t| list.contains(&t.as_str())).count();
    let scores = [
        ("English", count(&STOPWORDS_EN)),
        ("French", count(&STOPWORDS_FR)),
        ("German", count(&STOPWORDS_DE)),
        ("Spanish", count(&STOPWORDS_ES)),
    ];
    let (lang, hits) = scores.iter().max_by_key(|(_, c)| *c).copied().unwrap();
    (hits > 0).then_some(lang)
}

/// `true` when a literal looks like free text worth keyword/language
/// derivation: several alphabetic words (Offline Attribute Analysis uses
/// this to decide "if derivations should be generated for a given
/// property").
pub fn is_texty(value: &str) -> bool {
    tokens(value, 2).len() >= 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_extraction_matches_paper_example() {
        let kws = keywords("Sonangol oversees petroleum production", 4);
        assert!(kws.contains(&"petroleum".to_owned()));
        assert!(kws.contains(&"production".to_owned()));
        assert!(kws.contains(&"sonangol".to_owned()));
    }

    #[test]
    fn stopwords_and_short_tokens_dropped() {
        let kws = keywords("The cat sat on the mat with a hat", 4);
        assert!(!kws.iter().any(|k| k == "the" || k == "with"));
        assert!(!kws.iter().any(|k| k == "cat" || k == "sat"));
    }

    #[test]
    fn keywords_are_deduplicated_and_sorted() {
        let kws = keywords("query query engine engine", 4);
        assert_eq!(kws, vec!["engine".to_owned(), "query".to_owned()]);
    }

    #[test]
    fn detects_english_and_french() {
        assert_eq!(
            detect_language("Mix the flour and the butter with the sugar in a bowl"),
            Some("English")
        );
        assert_eq!(
            detect_language("Mélanger la farine et le beurre avec le sucre dans un bol"),
            Some("French")
        );
        assert_eq!(detect_language("12345 -- !!"), None);
        assert_eq!(detect_language("Zorgblatt Qwerty"), None);
    }

    #[test]
    fn texty_detection() {
        assert!(is_texty("Sonangol oversees petroleum production"));
        assert!(!is_texty("42"));
        assert!(!is_texty("Angola"));
        assert!(!is_texty("New York"));
    }
}
