//! Round-trip property tests: graph → snapshot → graph must be
//! **bit-identical** — same `TermId` assignment, same triple order, same
//! index contents per key, same statistics records — for every thread
//! count, including terms that stress the canonical encoding (embedded
//! NULs, semicolons, multi-byte characters, empty lexical forms).

use proptest::prelude::*;
use spade_rdf::{vocab, Graph, Literal, Term};
use spade_store::{snapshot_bytes, PropertyStatsRecord, Snapshot};

fn iri() -> impl Strategy<Value = Term> {
    "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}")))
}

fn literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[ -~äöüé北京;\\n\\t]{0,24}".prop_map(Term::lit),
        any::<i64>().prop_map(Term::int),
        (-1e9f64..1e9).prop_map(Term::num),
        ("[a-z]{0,6}", "[a-z]{2}").prop_map(|(s, l)| Term::Literal(Literal::lang_tagged(s, l))),
        ("[ -~;]{0,8}", "[a-z:/;]{1,12}")
            .prop_map(|(s, d)| Term::Literal(Literal::typed(s, d))),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![iri(), literal(), "[a-z][a-z0-9]{0,6}".prop_map(Term::blank)]
}

/// A triple generator that includes `rdf:type` triples, so the type index
/// is non-trivial.
fn triples() -> impl Strategy<Value = Vec<(Term, Term, Term)>> {
    prop::collection::vec(
        prop_oneof![(iri(), iri(), term()), (iri(), Just(Term::iri(vocab::RDF_TYPE)), iri()),],
        0..100,
    )
}

fn stats_for(graph: &Graph) -> Vec<PropertyStatsRecord> {
    graph
        .properties()
        .map(|p| PropertyStatsRecord {
            property: p,
            triples: graph.property_pairs(p).len() as u64,
            subjects: 1,
            distinct_values: 2,
            multi_valued_subjects: 0,
            numeric_values: 3,
            link_values: 4,
            text_values: 5,
            numeric_bounds: if p.index() % 2 == 0 { Some((-1.5, 7.25)) } else { None },
        })
        .collect()
}

fn assert_identical(loaded: &Graph, original: &Graph) {
    assert_eq!(loaded.triples(), original.triples(), "triple order");
    assert_eq!(loaded.dict.len(), original.dict.len(), "dictionary size");
    for (id, term) in original.dict.iter() {
        assert_eq!(loaded.dict.term(id), term, "term {id}");
    }
    assert_eq!(loaded.rdf_type_id(), original.rdf_type_id(), "rdf:type id");
    for p in original.properties() {
        assert_eq!(loaded.property_pairs(p), original.property_pairs(p), "property {p}");
    }
    for s in original.subjects() {
        assert_eq!(loaded.outgoing(s), original.outgoing(s), "subject {s}");
    }
    for c in original.classes() {
        assert_eq!(loaded.type_extent_raw(c), original.type_extent_raw(c), "class {c}");
    }
    assert_eq!(loaded.subject_count(), original.subject_count());
}

proptest! {
    /// Snapshot → load reproduces the graph and the statistics bit for bit,
    /// at 1/2/8 threads, and the writer itself is deterministic.
    #[test]
    fn snapshot_roundtrip_bit_identical(spec in triples()) {
        let mut graph = Graph::new();
        for (s, p, o) in spec {
            graph.insert(s, p, o);
        }
        let stats = stats_for(&graph);
        let bytes = snapshot_bytes(&graph, &stats);
        prop_assert_eq!(&bytes, &snapshot_bytes(&graph, &stats), "writer determinism");
        for threads in [1usize, 2, 8] {
            let snap = Snapshot::from_bytes(&bytes, threads).expect("valid image");
            let loaded = snap.load(threads).expect("loadable");
            assert_identical(&loaded.graph, &graph);
            prop_assert_eq!(&loaded.stats, &stats, "stats at {} threads", threads);
            // A re-snapshot of the loaded state is byte-identical.
            prop_assert_eq!(
                &snapshot_bytes(&loaded.graph, &loaded.stats),
                &bytes,
                "second generation at {} threads",
                threads
            );
        }
    }

    /// The loaded graph still behaves as a graph: membership, lookups, and
    /// further insertion (id continuity) all work.
    #[test]
    fn loaded_graph_stays_usable(spec in triples()) {
        let mut graph = Graph::new();
        for (s, p, o) in spec {
            graph.insert(s, p, o);
        }
        let bytes = snapshot_bytes(&graph, &[]);
        let mut loaded = Snapshot::from_bytes(&bytes, 1).unwrap().load(1).unwrap().graph;
        for t in graph.triples() {
            prop_assert!(loaded.contains(t.s, t.p, t.o));
        }
        for (id, term) in graph.dict.iter() {
            prop_assert_eq!(loaded.dict.id_of(term), Some(id), "lazy id map agrees");
        }
        // New interning continues after the loaded ids.
        let next = loaded.dict.intern(Term::iri("http://example.org/definitely-fresh-term"));
        prop_assert_eq!(next.index(), graph.dict.len());
        if let Some(&t) = graph.triples().first() {
            prop_assert!(!loaded.insert_ids(t.s, t.p, t.o), "duplicate re-insert");
        }
    }
}

/// End-to-end on a realistic corpus: ingest + saturate + snapshot, then the
/// loaded graph is already saturated (re-saturation derives nothing) and
/// snapshots back to the identical file.
#[test]
fn saturated_corpus_roundtrips_and_stays_saturated() {
    let nt = spade_datagen::nt_corpus(
        "CEOs",
        &spade_datagen::RealisticConfig { scale: 60, seed: 11 },
        6,
    );
    let mut graph = spade_rdf::ingest(&nt, 0).expect("corpus parses");
    let derived = spade_rdf::saturate(&mut graph);
    assert!(derived > 0, "the overlay must give saturation real work");
    let bytes = snapshot_bytes(&graph, &[]);
    for threads in [1usize, 2, 8] {
        let mut loaded = Snapshot::from_bytes(&bytes, threads).unwrap().load(threads).unwrap();
        assert_identical(&loaded.graph, &graph);
        assert_eq!(
            spade_rdf::saturate_with_threads(&mut loaded.graph, threads),
            0,
            "loaded graph is already saturated"
        );
        assert_eq!(snapshot_bytes(&loaded.graph, &[]), bytes);
    }
}
