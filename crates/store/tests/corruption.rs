//! Corruption tests: a damaged snapshot must always surface a **typed**
//! [`SnapshotError`] — truncation, bad magic, wrong version, foreign
//! endianness, checksum mismatch, or a structural `Malformed` — and must
//! never panic, whatever bytes it contains.
//!
//! Every suite runs twice: once over the copied in-memory path
//! ([`Snapshot::from_bytes`]) and once over the memory-mapped on-disk path
//! ([`Snapshot::open_with`] + [`OpenMode::Mmap`], the serving default) by
//! writing the tampered bytes to a real file first. The mapped reader must
//! report the same typed errors — and since validation bounds every access
//! to the declared prefix, no flip can turn into a panic or a `SIGBUS`.

use spade_store::{snapshot_bytes, update_checksum, OpenMode, Snapshot, SnapshotError};

use spade_rdf::{vocab, Graph, Term};
use std::sync::atomic::{AtomicU64, Ordering};

fn sample_bytes() -> Vec<u8> {
    let mut g = Graph::new();
    let iri = |s: &str| Term::iri(format!("http://x/{s}"));
    g.insert(iri("a"), iri("p"), Term::lit("v1"));
    g.insert(iri("b"), Term::iri(vocab::RDF_TYPE), iri("CEO"));
    g.insert(iri("a"), iri("q"), iri("b"));
    g.insert(iri("b"), iri("p"), Term::Literal(spade_rdf::Literal::lang_tagged("x;y", "en")));
    snapshot_bytes(&g, &[])
}

/// Opening + loading the copied in-memory image.
fn load_copied(bytes: &[u8]) -> Result<(), SnapshotError> {
    Snapshot::from_bytes(bytes, 1)?.load(1).map(|_| ())
}

/// Opening + loading through a real file and the mmap path, as the daemon
/// does it: write the (tampered) image to disk, map it, load, unmap.
fn load_mapped(bytes: &[u8]) -> Result<(), SnapshotError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "spade-store-corruption-{}-{}.spade",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write tampered image");
    let result =
        Snapshot::open_with(&path, 1, OpenMode::Mmap).and_then(|s| s.load(1).map(|_| ()));
    std::fs::remove_file(&path).ok();
    result
}

/// Both serving-shaped loaders, so each suite asserts identical typed
/// behavior for the heap and mapped representations.
type Loader = fn(&[u8]) -> Result<(), SnapshotError>;
const LOADERS: [(&str, Loader); 2] = [("copied", load_copied), ("mapped", load_mapped)];

#[test]
fn truncation_at_every_prefix_is_a_typed_error() {
    let bytes = sample_bytes();
    for (mode, load) in LOADERS {
        assert!(load(&bytes).is_ok(), "{mode}: baseline image must load");
        // Every proper prefix reports `Truncated` — too short for a header,
        // or shorter than the length the (intact) header declares.
        for len in 0..bytes.len() {
            let err = load(&bytes[..len]).expect_err("truncated image must fail");
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "{mode}: prefix {len}: got {err:?}"
            );
        }
        // Trailing garbage beyond the declared file length is ignored.
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"trailing junk");
        assert!(load(&padded).is_ok(), "{mode}: trailing junk must be ignored");
    }
}

#[test]
fn bad_magic_wrong_version_bad_endianness() {
    let bytes = sample_bytes();
    for (mode, load) in LOADERS {
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(load(&bad_magic), Err(SnapshotError::BadMagic)), "{mode}");

        let mut foreign = bytes.clone();
        // The endianness marker, byte-swapped: a big-endian writer's file.
        foreign[8..12].copy_from_slice(&0x0A0B_0C0Du32.to_be_bytes());
        assert!(matches!(load(&foreign), Err(SnapshotError::BadEndianness)), "{mode}");

        let mut future = bytes.clone();
        future[12..16].copy_from_slice(&99u32.to_le_bytes());
        match load(&future) {
            Err(SnapshotError::UnsupportedVersion { found: 99, supported }) => {
                assert_eq!(supported, spade_store::VERSION);
            }
            other => panic!("{mode}: expected UnsupportedVersion, got {other:?}"),
        }
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = sample_bytes();
    // Flipping any one bit anywhere — header, section table, payload —
    // must yield an error (usually ChecksumMismatch), never a panic and
    // never a successful load of wrong data. The mapped run flips the
    // byte *on disk*, which is exactly the bit-rot case the checksum
    // pass at open exists for.
    for (mode, load) in LOADERS {
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x01;
            assert!(load(&tampered).is_err(), "{mode}: flip at byte {i} went undetected");
        }
    }
}

#[test]
fn checksum_field_itself_is_checked() {
    let bytes = sample_bytes();
    for (mode, load) in LOADERS {
        let mut tampered = bytes.clone();
        tampered[24] ^= 0xFF; // the stored checksum
        assert!(
            matches!(load(&tampered), Err(SnapshotError::ChecksumMismatch { .. })),
            "{mode}"
        );
    }
}

/// Re-sealed tampering: fix the checksum after corrupting the payload, so
/// the deeper structural validation has to catch it.
#[test]
fn resealed_structural_corruption_is_malformed_not_panic() {
    let baseline = sample_bytes();
    for (mode, load) in LOADERS {
        // Point a section table entry at a misaligned offset.
        let mut bad_align = baseline.clone();
        bad_align[48 + 8] = bad_align[48 + 8].wrapping_add(1);
        update_checksum(&mut bad_align);
        assert!(matches!(load(&bad_align), Err(SnapshotError::Malformed(_))), "{mode}");

        // Point a section past the end of the file.
        let mut bad_bounds = baseline.clone();
        bad_bounds[48 + 16..48 + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        update_checksum(&mut bad_bounds);
        assert!(matches!(load(&bad_bounds), Err(SnapshotError::Malformed(_))), "{mode}");

        // An absurd section count.
        let mut bad_count = baseline.clone();
        bad_count[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        update_checksum(&mut bad_count);
        assert!(matches!(load(&bad_count), Err(SnapshotError::Malformed(_))), "{mode}");

        // Corrupt every payload byte in turn, re-sealing each time: whatever
        // structure it hits (term encodings, CSR offsets, triple ids, stats
        // flags), the loader must return an error or a *consistent* success —
        // never panic. Successes are possible (e.g. a flipped object id still
        // in range), so only absence of panics and of Checksum errors is
        // asserted.
        let payload_start = 48 + 14 * 24; // header + the 14-section table
        for i in payload_start..baseline.len() {
            let mut tampered = baseline.clone();
            tampered[i] ^= 0x10;
            update_checksum(&mut tampered);
            match load(&tampered) {
                Ok(()) => {}
                Err(SnapshotError::ChecksumMismatch { .. }) => {
                    panic!("{mode}: byte {i}: reseal failed, checksum still mismatching")
                }
                Err(_) => {}
            }
        }
    }
}

#[test]
fn missing_file_is_io() {
    let missing = std::env::temp_dir().join("spade-store-definitely-missing.spade");
    for mode in [OpenMode::Mmap, OpenMode::Read] {
        assert!(matches!(Snapshot::open_with(&missing, 1, mode), Err(SnapshotError::Io(_))));
    }
}

#[test]
fn empty_and_tiny_files() {
    for (mode, load) in LOADERS {
        assert!(
            matches!(load(&[]), Err(SnapshotError::Truncated { expected: 48, actual: 0 })),
            "{mode}"
        );
        assert!(load(&[0u8; 47]).is_err(), "{mode}");
        assert!(load(b"SPADESNP").is_err(), "{mode}");
    }
}
