//! `spade-store` — a versioned, checksummed, **single-file binary snapshot**
//! of the Spade offline state, loaded zero-copy.
//!
//! The paper's architecture splits work into an offline phase (ingestion,
//! RDFS saturation, summarization, offline attribute analysis) and an online
//! exploration phase. This crate makes the offline phase run **once**: its
//! entire output — the term [`Dictionary`], the [`Graph`] triple columns with
//! their property/subject/type indexes (saturation included, since the graph
//! is snapshotted *after* saturation), and the offline per-property
//! statistics — is written to one file and reconstituted without re-parsing,
//! re-interning, or re-sorting anything.
//!
//! # On-disk layout
//!
//! All multi-byte integers are **little-endian**; an endianness marker in the
//! header rejects foreign files instead of misreading them. The file is
//!
//! ```text
//! header ‖ section table ‖ payload
//! ```
//!
//! **Header** — 48 bytes:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `b"SPADESNP"` |
//! | 8      | 4    | endianness marker `0x0A0B0C0D` |
//! | 12     | 4    | format version (currently [`VERSION`]) |
//! | 16     | 8    | total file length in bytes |
//! | 24     | 8    | checksum of bytes `[48, file length)` (FxHash64 ⊕ length) |
//! | 32     | 8    | number of section-table entries |
//! | 40     | 8    | reserved, 0 |
//!
//! **Section table** — one 24-byte entry per section: `kind: u32`,
//! `reserved: u32`, `offset: u64` (absolute, **8-byte aligned**),
//! `len: u64` (bytes, unpadded). Entries with unknown kinds are ignored, so
//! future versions can add sections without breaking old readers.
//!
//! **Payload** — the sections, 8-byte aligned (zero-padded between), with
//! these kinds:
//!
//! | kind | name | content |
//! |-----:|------|---------|
//! | 1  | `META`        | `[n_terms, n_triples, rdf_type id, n_stats]` as u64 |
//! | 2  | `DICT_ENDS`   | u64 end offset of each term's canonical encoding |
//! | 3  | `DICT_BLOB`   | UTF-8 canonical term encodings, concatenated |
//! | 4  | `TRIPLES`     | u32 × 3·n_triples: `(s, p, o)` ids, insertion order |
//! | 5  | `PROP_KEYS`   | u32 property ids, strictly increasing |
//! | 6  | `PROP_OFFS`   | u32 CSR offsets (entries, `n_keys + 1` values) |
//! | 7  | `PROP_PAIRS`  | u32 × 2·entries: `(s, o)` per property |
//! | 8  | `SUBJ_KEYS`   | u32 subject ids, strictly increasing |
//! | 9  | `SUBJ_OFFS`   | u32 CSR offsets |
//! | 10 | `SUBJ_PAIRS`  | u32 × 2·entries: `(p, o)` per subject |
//! | 11 | `TYPE_KEYS`   | u32 class ids, strictly increasing |
//! | 12 | `TYPE_OFFS`   | u32 CSR offsets |
//! | 13 | `TYPE_VALS`   | u32 × entries: typed subjects per class |
//! | 14 | `STATS`       | u64 × 11 per property-statistics record |
//!
//! The alignment guarantee is what makes the load zero-copy: the whole file
//! is backed by **one 8-byte-aligned image** — either an owned heap buffer
//! or a read-only memory mapping (see below) — and every fixed-width
//! column is reinterpreted in place (`&[u8]` → `&[u32]`/`&[u64]`, alignment
//! and length checked, no decode pass), while variable-width term text is
//! borrowed by offset out of `DICT_BLOB`. Reconstituting the in-memory
//! [`Graph`] then costs one linear pass per column — no N-Triples parsing,
//! no hashing per occurrence, no sorting.
//!
//! # Memory-mapped opens
//!
//! [`Snapshot::open`] maps the file read-only (`mmap(2)`, `PROT_READ` +
//! `MAP_PRIVATE`) instead of copying it into an owned buffer, so opening
//! costs no allocation proportional to the file and N daemons (or N graphs
//! in one daemon) serving the same snapshot share a single page-cache copy.
//! The borrowed column views are identical in both representations — the
//! mapping starts page-aligned, which satisfies every 8-byte section
//! alignment the in-place `&[u32]`/`&[u64]` views require — and both paths
//! are selectable via [`Snapshot::open_with`] / [`OpenMode`]
//! ([`Snapshot::from_bytes`] always copies, so tests and in-memory tooling
//! keep the heap path).
//!
//! **Lifetime.** The mapping lives exactly as long as the [`Snapshot`]
//! value: views borrow from `&Snapshot`, so the borrow checker pins the
//! mapping for as long as any view exists, and `Drop` unmaps. A consumer
//! that materializes its state (e.g. `OfflineState`) may additionally call
//! [`Snapshot::release_resident_pages`] (`madvise(MADV_DONTNEED)`) after
//! loading: the pages leave the process RSS immediately and fault back in
//! from the page cache (or disk) on the next access — valid because the
//! mapping is read-only and file-backed, so no dirty state can be lost.
//!
//! **Safety argument.** Mapped memory is only sound to expose as `&[u8]`
//! if nobody mutates the file under the mapping. Snapshots are published
//! with [`write_snapshot`]'s write-then-rename protocol and never modified
//! in place: a refresh writes a *new* inode and renames it over the path,
//! which leaves the old inode — the one this mapping pins — untouched
//! until the last reader closes it. External truncation of a mapped file
//! is outside the contract (as with any mmap consumer, a `SIGBUS` on a
//! page past EOF cannot be caught in safe Rust); the reader bounds every
//! access to the validated header length, verifies the checksum over the
//! whole declared range at open (with `MADV_SEQUENTIAL` readahead, so the
//! pass streams at disk bandwidth), and never reads past it.
//!
//! # Integrity
//!
//! Every load validates magic, endianness, version, length, and checksum
//! before trusting a single payload byte, and every structural invariant
//! (section bounds and alignment, offset monotonicity, id ranges, CSR entry
//! counts) afterwards. All failures are typed [`SnapshotError`]s — a
//! corrupted or truncated file can never panic the loader, in either open
//! mode.

use spade_rdf::dict::{FxHashMap, FxHashSet};
use spade_rdf::{Dictionary, Graph, TermId, Triple};
use std::io::Read;
use std::path::{Path, PathBuf};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SPADESNP";

/// The current format version.
pub const VERSION: u32 = 1;

const ENDIAN_MARK: u32 = 0x0A0B_0C0D;
const HEADER_LEN: usize = 48;
const TABLE_ENTRY_LEN: usize = 24;

const SEC_META: u32 = 1;
const SEC_DICT_ENDS: u32 = 2;
const SEC_DICT_BLOB: u32 = 3;
const SEC_TRIPLES: u32 = 4;
const SEC_PROP_KEYS: u32 = 5;
const SEC_PROP_OFFS: u32 = 6;
const SEC_PROP_PAIRS: u32 = 7;
const SEC_SUBJ_KEYS: u32 = 8;
const SEC_SUBJ_OFFS: u32 = 9;
const SEC_SUBJ_PAIRS: u32 = 10;
const SEC_TYPE_KEYS: u32 = 11;
const SEC_TYPE_OFFS: u32 = 12;
const SEC_TYPE_VALS: u32 = 13;
const SEC_STATS: u32 = 14;

const META_WORDS: usize = 4;
const STATS_RECORD_WORDS: usize = 11;

/// Everything that can go wrong opening or loading a snapshot. Corruption is
/// always reported through one of these — never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file is shorter than its header claims (or than a header at all).
    Truncated {
        /// Bytes the file should at least contain.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The magic bytes are not [`MAGIC`] — not a snapshot file.
    BadMagic,
    /// The file was written on a platform of the opposite endianness.
    BadEndianness,
    /// The format version is not supported by this reader.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The stored checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the file.
        computed: u64,
    },
    /// The file passed the integrity checks but a structural invariant does
    /// not hold (bad section table, offsets, id ranges, encodings, …).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: expected {expected} bytes, found {actual}")
            }
            SnapshotError::BadMagic => write!(f, "not a Spade snapshot (bad magic)"),
            SnapshotError::BadEndianness => {
                write!(f, "snapshot written with the opposite byte order")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported snapshot version {found} (reader supports {supported})")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#018x}, file hashes to \
                 {computed:#018x}"
            ),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn malformed(message: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(message.into())
}

/// Independent-hash chunk size of the checksum — small enough that even a
/// few-MB snapshot fans out over all cores.
const CHECKSUM_CHUNK: usize = 1 << 20;

/// The FxHash multiplier. This — and [`Fx64`] below — is a deliberate,
/// **frozen** copy of the FxHash64 recurrence: the on-disk checksum must
/// never change meaning, so the store owns its hash instead of linking the
/// format to `spade_rdf::dict::FxHasher` (an interning perf knob that is
/// free to evolve independently).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// The frozen single-lane FxHash64 state used for checksum tails and folds.
struct Fx64(u64);

impl Fx64 {
    fn new() -> Self {
        Fx64(0)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.0 = fx_mix(self.0, u64::from_le_bytes(chunk.try_into().expect("8-byte word")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.0 = fx_mix(self.0, u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = fx_mix(self.0, v);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FxHash64 over one chunk, computed in **four independent lanes** over
/// 32-byte blocks (the single-lane recurrence is latency-bound — four
/// dependency chains let the CPU overlap the multiplies), folded with the
/// tail and the chunk length.
fn hash_chunk(chunk: &[u8]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut blocks = chunk.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = fx_mix(*lane, u64::from_le_bytes(word.try_into().expect("8-byte word")));
        }
    }
    let mut tail = Fx64::new();
    tail.write(blocks.remainder());
    tail.write_u64(chunk.len() as u64);
    let mut h = lanes[0];
    for fold in [lanes[1], lanes[2], lanes[3], tail.finish()] {
        h = fx_mix(h, fold);
    }
    h
}

/// Chunked checksum: every [`CHECKSUM_CHUNK`] block hashes independently —
/// so verification of large snapshots fans out over `threads` workers —
/// and the per-chunk hashes plus the total length fold into the final
/// value. The result is identical for every thread count (chunk boundaries
/// depend only on the data); small inputs skip the fan-out entirely, since
/// spawning workers would cost more than the hash.
fn checksum(bytes: &[u8], threads: usize) -> u64 {
    let hashes: Vec<u64> = if bytes.len() <= 8 * CHECKSUM_CHUNK {
        bytes.chunks(CHECKSUM_CHUNK).map(hash_chunk).collect()
    } else {
        spade_parallel::map(bytes.chunks(CHECKSUM_CHUNK).collect(), threads, hash_chunk)
    };
    let mut h = Fx64::new();
    for &x in &hashes {
        h.write_u64(x);
    }
    h.write_u64(bytes.len() as u64);
    h.finish()
}

/// Recomputes and patches the header checksum of an in-memory snapshot
/// image. Tooling that edits sections in place uses this to re-seal the
/// file; the corruption tests use it to craft images whose *structure* is
/// bad while the checksum is good. Images shorter than a header are left
/// untouched.
pub fn update_checksum(bytes: &mut [u8]) {
    if bytes.len() >= HEADER_LEN {
        // Hash exactly what the reader will verify: up to the declared file
        // length, ignoring any trailing bytes beyond it (which the reader
        // ignores too). An out-of-range declared length falls back to the
        // whole buffer.
        let declared = usize::try_from(read_u64(bytes, 16)).unwrap_or(usize::MAX);
        let end = declared.clamp(HEADER_LEN, bytes.len());
        let sum = checksum(&bytes[HEADER_LEN..end], 1);
        bytes[24..32].copy_from_slice(&sum.to_le_bytes());
    }
}

// ——————————————————————— aligned owned buffer ———————————————————————

/// An owned byte buffer whose storage is 8-byte aligned (it is a `Vec<u64>`
/// underneath), so any section at an 8-aligned file offset can be
/// reinterpreted as `&[u32]` / `&[u64]` in place.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn zeroed(len: usize) -> Self {
        AlignedBuf { words: vec![0u64; len.div_ceil(8)], len }
    }

    fn copy_from(bytes: &[u8]) -> Self {
        let mut buf = Self::zeroed(bytes.len());
        buf.bytes_mut().copy_from_slice(bytes);
        buf
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: the Vec<u64> owns at least `len` initialized bytes, and
        // u8 has no alignment requirement.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as above, and we hold `&mut self`.
        unsafe {
            std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len)
        }
    }
}

// ——————————————————————— memory-mapped image ———————————————————————

/// A minimal `mmap(2)` wrapper over the C library std already links —
/// the same dependency-free idiom as the daemon's signal handling — gated
/// to 64-bit unix, where `off_t` is `i64` and `usize` holds any file size
/// we accept. Everything else falls back to the heap read path.
#[cfg(all(unix, target_pointer_width = "64"))]
mod mmap {
    use std::ffi::c_void;
    use std::os::unix::io::AsRawFd;

    // Prot/flag/advice values shared by Linux and the BSD family (macOS).
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_SEQUENTIAL: i32 = 2;
    const MADV_DONTNEED: i32 = 4;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    /// A read-only, private, file-backed mapping. The mapped inode stays
    /// alive for the lifetime of this value even if the path is renamed
    /// over or unlinked (the snapshot publication protocol guarantees the
    /// bytes under it never change — see the crate docs' safety argument).
    pub(crate) struct Mmap {
        ptr: std::ptr::NonNull<c_void>,
        len: usize,
    }

    // SAFETY: the mapping is immutable shared memory owned by this value;
    // no thread affinity is involved in reading or unmapping it.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero
        /// (zero-length mappings are an `EINVAL`; callers route empty
        /// files through the heap path).
        pub(crate) fn map(file: &std::fs::File, len: usize) -> std::io::Result<Mmap> {
            debug_assert!(len > 0, "zero-length mappings are rejected by mmap");
            // SAFETY: a fresh PROT_READ | MAP_PRIVATE mapping of a file we
            // own a handle to; the kernel checks fd validity and rejects
            // impossible lengths. A MAP_FAILED return is handled below.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            match std::ptr::NonNull::new(ptr) {
                Some(ptr) => Ok(Mmap { ptr, len }),
                None => Err(std::io::Error::other("mmap returned NULL")),
            }
        }

        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes for as long
            // as this value lives, and the backing inode is immutable.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().cast::<u8>(), self.len) }
        }

        fn advise(&self, advice: i32) {
            // SAFETY: advising our own mapping; madvise is a hint — any
            // failure is deliberately ignored (the mapping stays valid).
            unsafe {
                madvise(self.ptr.as_ptr(), self.len, advice);
            }
        }

        /// Hints sequential access — turns the checksum pass into a
        /// readahead-friendly linear stream.
        pub(crate) fn advise_sequential(&self) {
            self.advise(MADV_SEQUENTIAL);
        }

        /// Drops the resident pages of the mapping (they fault back in
        /// from the page cache or disk on next access — safe for a
        /// read-only file-backed mapping, which holds no dirty state).
        pub(crate) fn release_resident(&self) {
            self.advise(MADV_DONTNEED);
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region this value owns, once.
            unsafe {
                munmap(self.ptr.as_ptr(), self.len);
            }
        }
    }
}

/// The storage backing a validated snapshot: an owned aligned heap buffer
/// (in-memory images, platforms without mmap) or a read-only file mapping.
/// Both hand out the same `&[u8]`, so every accessor above it is
/// representation-blind.
enum SnapshotImage {
    Heap(AlignedBuf),
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(mmap::Mmap),
}

impl SnapshotImage {
    fn bytes(&self) -> &[u8] {
        match self {
            SnapshotImage::Heap(buf) => buf.bytes(),
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotImage::Mapped(map) => map.bytes(),
        }
    }
}

/// How [`Snapshot::open_with`] backs the image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpenMode {
    /// Memory-map the file read-only (the [`Snapshot::open`] default).
    /// Falls back to [`OpenMode::Read`] on platforms without the mapping
    /// wrapper, for empty files, and when the `mmap` call itself fails.
    #[default]
    Mmap,
    /// Read the whole file into one owned aligned buffer (the pre-mmap
    /// behavior; costs an O(file) copy and a resident heap buffer).
    Read,
}

/// Reinterprets `bytes` as a `&[u32]` in place (little-endian files on a
/// little-endian host — enforced by the header's endianness marker).
fn view_u32<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u32], SnapshotError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(malformed(format!("{what}: length {} not a multiple of 4", bytes.len())));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>()) {
        return Err(malformed(format!("{what}: misaligned section")));
    }
    // SAFETY: alignment and length verified; u32 permits any bit pattern;
    // the lifetime stays tied to `bytes`.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

/// Reinterprets `bytes` as a `&[u64]` in place.
fn view_u64<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u64], SnapshotError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(malformed(format!("{what}: length {} not a multiple of 8", bytes.len())));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>()) {
        return Err(malformed(format!("{what}: misaligned section")));
    }
    // SAFETY: as in `view_u32`.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

// ——————————————————————— offline statistics records ———————————————————————

/// One property's offline statistics, in the plain fixed-width form the
/// snapshot persists (11 u64 words per record). `spade-core` converts these
/// to and from its richer `PropertyStats`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropertyStatsRecord {
    /// The property.
    pub property: TermId,
    /// Number of `(s, o)` pairs.
    pub triples: u64,
    /// Distinct subjects carrying the property.
    pub subjects: u64,
    /// Distinct object values.
    pub distinct_values: u64,
    /// Subjects with more than one value.
    pub multi_valued_subjects: u64,
    /// Values with a numeric interpretation.
    pub numeric_values: u64,
    /// Object values that are resources with outgoing edges.
    pub link_values: u64,
    /// Values that look like free text.
    pub text_values: u64,
    /// Min/max over numeric values, if any.
    pub numeric_bounds: Option<(f64, f64)>,
}

impl PropertyStatsRecord {
    fn to_words(self, out: &mut Vec<u64>) {
        let (has, lo, hi) = match self.numeric_bounds {
            Some((lo, hi)) => (1, lo.to_bits(), hi.to_bits()),
            None => (0, 0, 0),
        };
        out.extend_from_slice(&[
            u64::from(self.property.0),
            self.triples,
            self.subjects,
            self.distinct_values,
            self.multi_valued_subjects,
            self.numeric_values,
            self.link_values,
            self.text_values,
            has,
            lo,
            hi,
        ]);
    }

    fn from_words(w: &[u64]) -> Result<Self, SnapshotError> {
        let property = u32::try_from(w[0])
            .map_err(|_| malformed(format!("stats record property id {} overflows", w[0])))?;
        let numeric_bounds = match w[8] {
            0 => None,
            1 => Some((f64::from_bits(w[9]), f64::from_bits(w[10]))),
            other => return Err(malformed(format!("stats record bounds flag {other}"))),
        };
        Ok(PropertyStatsRecord {
            property: TermId(property),
            triples: w[1],
            subjects: w[2],
            distinct_values: w[3],
            multi_valued_subjects: w[4],
            numeric_values: w[5],
            link_values: w[6],
            text_values: w[7],
            numeric_bounds,
        })
    }
}

// ——————————————————————— writer ———————————————————————

#[derive(Default)]
struct SectionWriter {
    payload: Vec<u8>,
    table: Vec<(u32, u64, u64)>, // kind, payload-relative offset, byte length
}

impl SectionWriter {
    /// Aligns the payload, records the table entry for a `len`-byte
    /// section, and reserves room; the caller then appends exactly `len`
    /// bytes (columns stream straight into the payload — no per-section
    /// staging buffer).
    fn begin(&mut self, kind: u32, len: usize) {
        while !self.payload.len().is_multiple_of(8) {
            self.payload.push(0);
        }
        self.table.push((kind, self.payload.len() as u64, len as u64));
        self.payload.reserve(len);
    }

    fn bytes(&mut self, kind: u32, data: &[u8]) {
        self.begin(kind, data.len());
        self.payload.extend_from_slice(data);
    }

    fn u32s(&mut self, kind: u32, data: &[u32]) {
        self.begin(kind, data.len() * 4);
        for v in data {
            self.payload.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn u64s(&mut self, kind: u32, data: &[u64]) {
        self.begin(kind, data.len() * 8);
        for v in data {
            self.payload.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn finish(self) -> Vec<u8> {
        let base = HEADER_LEN + self.table.len() * TABLE_ENTRY_LEN;
        debug_assert_eq!(base % 8, 0, "payload must start 8-aligned");
        let file_len = base + self.payload.len();
        let mut out = Vec::with_capacity(file_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(file_len as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
        out.extend_from_slice(&(self.table.len() as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // reserved
        for (kind, offset, len) in &self.table {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(base as u64 + offset).to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        update_checksum(&mut out);
        out
    }
}

/// Serializes the complete offline state to an in-memory snapshot image.
/// Section contents are emitted in deterministic order (index keys sorted by
/// id), so the same state always produces byte-identical files.
pub fn snapshot_bytes(graph: &Graph, stats: &[PropertyStatsRecord]) -> Vec<u8> {
    let mut w = SectionWriter::default();
    w.u64s(
        SEC_META,
        &[
            graph.dict.len() as u64,
            graph.len() as u64,
            u64::from(graph.rdf_type_id().0),
            stats.len() as u64,
        ],
    );

    let parts = graph.dict.to_parts();
    w.u64s(SEC_DICT_ENDS, &parts.ends);
    w.bytes(SEC_DICT_BLOB, parts.blob.as_bytes());

    let mut tri = Vec::with_capacity(graph.len() * 3);
    for t in graph.triples() {
        tri.extend_from_slice(&[t.s.0, t.p.0, t.o.0]);
    }
    w.u32s(SEC_TRIPLES, &tri);

    write_csr(
        &mut w,
        [SEC_PROP_KEYS, SEC_PROP_OFFS, SEC_PROP_PAIRS],
        graph.properties().collect(),
        2,
        |p, out| {
            for &(s, o) in graph.property_pairs(p) {
                out.extend_from_slice(&[s.0, o.0]);
            }
        },
    );
    write_csr(
        &mut w,
        [SEC_SUBJ_KEYS, SEC_SUBJ_OFFS, SEC_SUBJ_PAIRS],
        graph.subjects().collect(),
        2,
        |s, out| {
            for &(p, o) in graph.outgoing(s) {
                out.extend_from_slice(&[p.0, o.0]);
            }
        },
    );
    write_csr(
        &mut w,
        [SEC_TYPE_KEYS, SEC_TYPE_OFFS, SEC_TYPE_VALS],
        graph.classes().collect(),
        1,
        |c, out| {
            for &s in graph.type_extent_raw(c) {
                out.push(s.0);
            }
        },
    );

    let mut words = Vec::with_capacity(stats.len() * STATS_RECORD_WORDS);
    for record in stats {
        record.to_words(&mut words);
    }
    w.u64s(SEC_STATS, &words);
    w.finish()
}

/// Emits one CSR index as its three sections: sorted keys, entry offsets,
/// flattened values. `emit` appends each key's u32 values; the offsets
/// array counts *entries* (the per-key value count divided by the uniform
/// stride), which the reader re-derives from the value section length.
fn write_csr(
    w: &mut SectionWriter,
    kinds: [u32; 3],
    mut keys: Vec<TermId>,
    stride: usize,
    emit: impl Fn(TermId, &mut Vec<u32>),
) {
    keys.sort_unstable();
    let mut vals: Vec<u32> = Vec::new();
    let mut offs: Vec<u32> = Vec::with_capacity(keys.len() + 1);
    offs.push(0);
    for &k in &keys {
        emit(k, &mut vals);
        debug_assert_eq!(vals.len() % stride, 0, "emit must append whole entries");
        offs.push(u32::try_from(vals.len() / stride).expect("index exceeds 2^32 entries"));
    }
    let raw_keys: Vec<u32> = keys.iter().map(|k| k.0).collect();
    w.u32s(kinds[0], &raw_keys);
    w.u32s(kinds[1], &offs);
    w.u32s(kinds[2], &vals);
}

/// Writes the snapshot of `graph` + `stats` to `path` (see
/// [`snapshot_bytes`] for the format).
pub fn write_snapshot(
    path: impl AsRef<Path>,
    graph: &Graph,
    stats: &[PropertyStatsRecord],
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    // Write-then-rename, so refreshing an existing snapshot is atomic: a
    // crash or full disk mid-write leaves the previous good file intact.
    // The temp name carries a process id *and* a per-call counter, so
    // concurrent writers never share a temp file.
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".{}.{}.tmp", std::process::id(), seq));
    let tmp = PathBuf::from(tmp_name);
    let publish = (|| {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&snapshot_bytes(graph, stats))?;
        // Flush to stable storage *before* the rename commits, so a power
        // loss cannot replace the old snapshot with a torn new one.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = publish {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(())
}

// ——————————————————————— reader ———————————————————————

/// The metadata section of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Interned terms.
    pub n_terms: u64,
    /// Stored (deduplicated, saturated) triples.
    pub n_triples: u64,
    /// The id of `rdf:type` in the stored dictionary.
    pub rdf_type: u64,
    /// Stored property-statistics records.
    pub n_stats: u64,
}

/// A validated snapshot: one aligned image (owned buffer or read-only
/// mapping — see [`SnapshotImage`]'s two faces behind [`OpenMode`]) plus
/// the section table. All accessors are **zero-copy views** into that
/// image; call [`Snapshot::load`] to reconstitute the in-memory offline
/// state.
pub struct Snapshot {
    image: SnapshotImage,
    sections: Vec<(u32, usize, usize)>, // kind, offset, len
    /// One-time UTF-8 validation of `DICT_BLOB`, so [`Snapshot::term_text`]
    /// stays O(slice) per call instead of revalidating the whole blob.
    blob_utf8: std::sync::OnceLock<Result<(), String>>,
}

/// The reconstituted offline state of a snapshot.
pub struct LoadedSnapshot {
    /// The saturated graph (dictionary, triples, indexes).
    pub graph: Graph,
    /// The offline per-property statistics.
    pub stats: Vec<PropertyStatsRecord>,
}

fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("caller bounds-checked"))
}

fn read_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("caller bounds-checked"))
}

impl Snapshot {
    /// Opens and validates the snapshot at `path` in the default
    /// [`OpenMode`] (memory-mapped where supported). Header, length, and
    /// checksum (verified over `threads` workers, `0` = auto) are checked
    /// before any payload byte is interpreted — in the mapped case the
    /// checksum pass runs behind `MADV_SEQUENTIAL` readahead.
    pub fn open(path: impl AsRef<Path>, threads: usize) -> Result<Snapshot, SnapshotError> {
        Self::open_with(path, threads, OpenMode::default())
    }

    /// [`Snapshot::open`] with an explicit backing choice; benchmarks and
    /// tests use this to compare the two paths on the same file.
    pub fn open_with(
        path: impl AsRef<Path>,
        threads: usize,
        mode: OpenMode,
    ) -> Result<Snapshot, SnapshotError> {
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| malformed("file too large for this platform"))?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        if mode == OpenMode::Mmap && len > 0 {
            if let Ok(map) = mmap::Mmap::map(&file, len) {
                map.advise_sequential();
                return Self::parse(SnapshotImage::Mapped(map), threads);
            }
            // An mmap failure (exotic filesystem, exhausted mappings) is
            // not fatal: the heap read below serves the same bytes.
        }
        let _ = mode;
        let mut buf = AlignedBuf::zeroed(len);
        file.read_exact(buf.bytes_mut())?;
        Self::parse(SnapshotImage::Heap(buf), threads)
    }

    /// Validates an in-memory snapshot image (copied into aligned storage
    /// — always the heap representation).
    pub fn from_bytes(bytes: &[u8], threads: usize) -> Result<Snapshot, SnapshotError> {
        Self::parse(SnapshotImage::Heap(AlignedBuf::copy_from(bytes)), threads)
    }

    /// Whether the image is a file mapping (as opposed to an owned buffer).
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            matches!(self.image, SnapshotImage::Mapped(_))
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            false
        }
    }

    /// Bytes backing the image (the file size for opened snapshots).
    pub fn image_len(&self) -> usize {
        self.image.bytes().len()
    }

    /// Drops the resident pages of a mapped image (`madvise(MADV_DONTNEED)`)
    /// so they stop counting against this process's RSS; they fault back in
    /// transparently on the next access. No-op for heap images. Callers that
    /// fully materialize the state (e.g. after [`Snapshot::load`]) use this
    /// so holding the snapshot open costs address space, not memory.
    pub fn release_resident_pages(&self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let SnapshotImage::Mapped(map) = &self.image {
            map.release_resident();
        }
    }

    fn parse(image: SnapshotImage, threads: usize) -> Result<Snapshot, SnapshotError> {
        let b = image.bytes();
        if b.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                expected: HEADER_LEN as u64,
                actual: b.len() as u64,
            });
        }
        if b[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if read_u32(b, 8) != ENDIAN_MARK {
            return Err(SnapshotError::BadEndianness);
        }
        let version = read_u32(b, 12);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let file_len = read_u64(b, 16);
        if file_len < HEADER_LEN as u64 {
            return Err(malformed(format!("header claims impossible length {file_len}")));
        }
        if (b.len() as u64) < file_len {
            return Err(SnapshotError::Truncated {
                expected: file_len,
                actual: b.len() as u64,
            });
        }
        let file_len = file_len as usize;
        let stored = read_u64(b, 24);
        let computed = checksum(&b[HEADER_LEN..file_len], threads);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        if read_u64(b, 40) != 0 {
            return Err(malformed("reserved header field must be zero"));
        }
        let n_sections = read_u64(b, 32);
        let table_bytes = n_sections
            .checked_mul(TABLE_ENTRY_LEN as u64)
            .and_then(|t| t.checked_add(HEADER_LEN as u64))
            .ok_or_else(|| malformed("section count overflows"))?;
        if table_bytes > file_len as u64 {
            return Err(malformed(format!(
                "section table ({n_sections} entries) exceeds the file"
            )));
        }
        let table_end = table_bytes as usize;
        let mut sections: Vec<(u32, usize, usize)> = Vec::with_capacity(n_sections as usize);
        let mut seen_kinds: FxHashSet<u32> = FxHashSet::default();
        for i in 0..n_sections as usize {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let kind = read_u32(b, e);
            let offset = read_u64(b, e + 8);
            let len = read_u64(b, e + 16);
            let end = offset
                .checked_add(len)
                .ok_or_else(|| malformed(format!("section {kind}: offset overflow")))?;
            if !offset.is_multiple_of(8) || offset < table_end as u64 || end > file_len as u64 {
                return Err(malformed(format!(
                    "section {kind}: bad bounds [{offset}, {end}) in a {file_len}-byte file"
                )));
            }
            if !seen_kinds.insert(kind) {
                return Err(malformed(format!("duplicate section kind {kind}")));
            }
            sections.push((kind, offset as usize, len as usize));
        }
        Ok(Snapshot { image, sections, blob_utf8: std::sync::OnceLock::new() })
    }

    fn section(&self, kind: u32, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .map(|&(_, off, len)| &self.image.bytes()[off..off + len])
            .ok_or_else(|| malformed(format!("missing section {name} (kind {kind})")))
    }

    fn section_u32s(&self, kind: u32, name: &str) -> Result<&[u32], SnapshotError> {
        view_u32(self.section(kind, name)?, name)
    }

    fn section_u64s(&self, kind: u32, name: &str) -> Result<&[u64], SnapshotError> {
        view_u64(self.section(kind, name)?, name)
    }

    /// The metadata section.
    pub fn meta(&self) -> Result<SnapshotMeta, SnapshotError> {
        let words = self.section_u64s(SEC_META, "META")?;
        if words.len() != META_WORDS {
            return Err(malformed(format!("META holds {} words, expected 4", words.len())));
        }
        Ok(SnapshotMeta {
            n_terms: words[0],
            n_triples: words[1],
            rdf_type: words[2],
            n_stats: words[3],
        })
    }

    /// The per-term end offsets into the dictionary blob (zero-copy view).
    pub fn dict_ends(&self) -> Result<&[u64], SnapshotError> {
        self.section_u64s(SEC_DICT_ENDS, "DICT_ENDS")
    }

    /// The canonical term-encoding blob (zero-copy view; UTF-8 validated
    /// once, then served straight from the buffer).
    pub fn dict_blob(&self) -> Result<&str, SnapshotError> {
        let bytes = self.section(SEC_DICT_BLOB, "DICT_BLOB")?;
        let checked = self
            .blob_utf8
            .get_or_init(|| std::str::from_utf8(bytes).map(|_| ()).map_err(|e| e.to_string()));
        match checked {
            // SAFETY: the cached result proves exactly these bytes passed
            // `from_utf8`; the section table (and therefore the slice) is
            // immutable after parse.
            Ok(()) => Ok(unsafe { std::str::from_utf8_unchecked(bytes) }),
            Err(e) => Err(malformed(format!("DICT_BLOB is not UTF-8: {e}"))),
        }
    }

    /// The canonical encoding of term `i`, borrowed by offset out of the
    /// buffer — no allocation, no decode.
    pub fn term_text(&self, i: usize) -> Result<&str, SnapshotError> {
        let ends = self.dict_ends()?;
        let end = *ends.get(i).ok_or_else(|| malformed(format!("term {i} out of range")))?;
        let start = if i == 0 { 0 } else { ends[i - 1] };
        self.dict_blob()?
            .get(start as usize..end as usize)
            .ok_or_else(|| malformed(format!("term {i}: bad offsets [{start}, {end})")))
    }

    /// The raw triple column — `3 × n_triples` ids, reinterpreted in place.
    pub fn triples_raw(&self) -> Result<&[u32], SnapshotError> {
        self.section_u32s(SEC_TRIPLES, "TRIPLES")
    }

    /// Reads one CSR index back into the graph's hash-map form. `stride` is
    /// the number of u32 words per entry (2 for pair indexes, 1 for the
    /// type index).
    fn read_csr<V>(
        &self,
        kinds: [u32; 3],
        names: [&str; 3],
        stride: usize,
        n_terms: u64,
        decode: impl Fn(&[u32]) -> V,
    ) -> Result<FxHashMap<TermId, Vec<V>>, SnapshotError> {
        let keys = self.section_u32s(kinds[0], names[0])?;
        let offs = self.section_u32s(kinds[1], names[1])?;
        let vals = self.section_u32s(kinds[2], names[2])?;
        if offs.len() != keys.len() + 1 {
            return Err(malformed(format!(
                "{}: {} offsets for {} keys",
                names[1],
                offs.len(),
                keys.len()
            )));
        }
        if offs.first() != Some(&0) {
            return Err(malformed(format!("{}: offsets must start at 0", names[1])));
        }
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(malformed(format!("{}: keys not strictly increasing", names[0])));
        }
        if keys.iter().any(|&k| u64::from(k) >= n_terms) {
            return Err(malformed(format!("{}: key out of term range", names[0])));
        }
        if offs.windows(2).any(|w| w[0] > w[1]) {
            return Err(malformed(format!("{}: offsets not monotone", names[1])));
        }
        let entries = offs.last().copied().unwrap_or(0) as usize;
        if entries * stride != vals.len() {
            return Err(malformed(format!(
                "{}: {} values for {} entries of stride {stride}",
                names[2],
                vals.len(),
                entries
            )));
        }
        // Every stored value is a term id; a branchless max-scan keeps this
        // O(n) cheap while upholding the "corruption never panics later"
        // guarantee for the serving path too.
        if let Some(max) = vals.iter().copied().max() {
            if u64::from(max) >= n_terms {
                return Err(malformed(format!("{}: value {max} out of term range", names[2])));
            }
        }
        let mut map: FxHashMap<TermId, Vec<V>> = FxHashMap::default();
        map.reserve(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            let (a, b) = (offs[i] as usize * stride, offs[i + 1] as usize * stride);
            map.insert(TermId(k), vals[a..b].chunks_exact(stride).map(&decode).collect());
        }
        Ok(map)
    }

    /// Reconstitutes the full offline state: dictionary (term text borrowed
    /// by offset), graph (triples + indexes straight from the columns — no
    /// sorting, no re-interning), and the offline statistics records. The
    /// five independent reconstruction tasks (dictionary, triple column,
    /// three indexes) fan out over `threads` workers, with the thread
    /// budget split between that fan-out and the dictionary's internal
    /// chunk decode so the total worker count stays ≈ `threads`; results
    /// are matched back by kind, so the output is
    /// thread-count-independent.
    pub fn load(&self, threads: usize) -> Result<LoadedSnapshot, SnapshotError> {
        // Four of the five tasks are small; give the dictionary decode the
        // budget the outer fan-out does not occupy (at least one worker).
        let dict_threads = spade_parallel::resolve_threads(threads).saturating_sub(4).max(1);
        let meta = self.meta()?;
        let ends = self.dict_ends()?;
        if ends.len() as u64 != meta.n_terms {
            return Err(malformed(format!(
                "DICT_ENDS holds {} terms, META says {}",
                ends.len(),
                meta.n_terms
            )));
        }

        enum Part {
            Dict(Dictionary),
            Triples(Vec<Triple>),
            PropIndex(FxHashMap<TermId, Vec<(TermId, TermId)>>),
            SubjIndex(FxHashMap<TermId, Vec<(TermId, TermId)>>),
            TypeIndex(FxHashMap<TermId, Vec<TermId>>),
        }
        let built: Vec<Result<Part, SnapshotError>> =
            spade_parallel::map((0..5).collect(), threads, |task| match task {
                0 => Dictionary::from_parts(self.dict_blob()?, ends, dict_threads)
                    .map(Part::Dict)
                    .map_err(|e| malformed(format!("dictionary: {e}"))),
                1 => {
                    let raw = self.triples_raw()?;
                    if raw.len() as u64 != meta.n_triples.saturating_mul(3) {
                        return Err(malformed(format!(
                            "TRIPLES holds {} words, META says {} triples",
                            raw.len(),
                            meta.n_triples
                        )));
                    }
                    // SAFETY: `Triple` is `repr(C)` over three
                    // `repr(transparent)` u32 newtypes — size 12, align 4 —
                    // and `raw` is 4-aligned with length divisible by 3, so
                    // the column reinterprets in place and one memcpy owns
                    // it.
                    let view = unsafe {
                        std::slice::from_raw_parts(raw.as_ptr().cast::<Triple>(), raw.len() / 3)
                    };
                    Ok(Part::Triples(view.to_vec()))
                }
                2 => self
                    .read_csr(
                        [SEC_PROP_KEYS, SEC_PROP_OFFS, SEC_PROP_PAIRS],
                        ["PROP_KEYS", "PROP_OFFS", "PROP_PAIRS"],
                        2,
                        meta.n_terms,
                        |c| (TermId(c[0]), TermId(c[1])),
                    )
                    .map(Part::PropIndex),
                3 => self
                    .read_csr(
                        [SEC_SUBJ_KEYS, SEC_SUBJ_OFFS, SEC_SUBJ_PAIRS],
                        ["SUBJ_KEYS", "SUBJ_OFFS", "SUBJ_PAIRS"],
                        2,
                        meta.n_terms,
                        |c| (TermId(c[0]), TermId(c[1])),
                    )
                    .map(Part::SubjIndex),
                _ => self
                    .read_csr(
                        [SEC_TYPE_KEYS, SEC_TYPE_OFFS, SEC_TYPE_VALS],
                        ["TYPE_KEYS", "TYPE_OFFS", "TYPE_VALS"],
                        1,
                        meta.n_terms,
                        |c| TermId(c[0]),
                    )
                    .map(Part::TypeIndex),
            });
        // Unpack by variant, not by position, so a task-list edit can never
        // silently swap two indexes of the same shape.
        let (mut dict, mut triples, mut by_property, mut outgoing, mut type_extents) =
            (None, None, None, None, None);
        for part in built {
            match part? {
                Part::Dict(d) => dict = Some(d),
                Part::Triples(t) => triples = Some(t),
                Part::PropIndex(m) => by_property = Some(m),
                Part::SubjIndex(m) => outgoing = Some(m),
                Part::TypeIndex(m) => type_extents = Some(m),
            }
        }
        let (Some(dict), Some(triples), Some(by_property), Some(outgoing), Some(type_extents)) =
            (dict, triples, by_property, outgoing, type_extents)
        else {
            unreachable!("every reconstruction task ran exactly once")
        };

        let rdf_type = u32::try_from(meta.rdf_type)
            .map_err(|_| malformed(format!("rdf:type id {} overflows", meta.rdf_type)))?;
        let graph = Graph::from_indexed_parts(
            dict,
            TermId(rdf_type),
            triples,
            by_property,
            outgoing,
            type_extents,
        )
        .map_err(|e| malformed(e.to_string()))?;

        let words = self.section_u64s(SEC_STATS, "STATS")?;
        if words.len() % STATS_RECORD_WORDS != 0
            || (words.len() / STATS_RECORD_WORDS) as u64 != meta.n_stats
        {
            return Err(malformed(format!(
                "STATS holds {} words, META says {} records",
                words.len(),
                meta.n_stats
            )));
        }
        let mut stats = Vec::with_capacity(words.len() / STATS_RECORD_WORDS);
        for w in words.chunks_exact(STATS_RECORD_WORDS) {
            let record = PropertyStatsRecord::from_words(w)?;
            if u64::from(record.property.0) >= meta.n_terms {
                return Err(malformed(format!(
                    "stats record references unknown term {}",
                    record.property
                )));
            }
            stats.push(record);
        }
        Ok(LoadedSnapshot { graph, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_rdf::{vocab, Term};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let iri = |s: &str| Term::iri(format!("http://x/{s}"));
        g.insert(iri("a"), iri("p"), Term::lit("v1"));
        g.insert(iri("b"), Term::iri(vocab::RDF_TYPE), iri("CEO"));
        g.insert(iri("a"), iri("q"), iri("b"));
        g.insert(iri("a"), iri("p"), Term::int(42));
        g
    }

    fn sample_stats(g: &Graph) -> Vec<PropertyStatsRecord> {
        vec![PropertyStatsRecord {
            property: g.triples()[0].p,
            triples: 2,
            subjects: 1,
            distinct_values: 2,
            multi_valued_subjects: 1,
            numeric_values: 1,
            link_values: 0,
            text_values: 0,
            numeric_bounds: Some((42.0, 42.0)),
        }]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let stats = sample_stats(&g);
        let bytes = snapshot_bytes(&g, &stats);
        let snap = Snapshot::from_bytes(&bytes, 0).expect("valid image");
        let meta = snap.meta().unwrap();
        assert_eq!(meta.n_terms as usize, g.dict.len());
        assert_eq!(meta.n_triples as usize, g.len());
        for threads in [1, 2, 8] {
            let loaded = snap.load(threads).expect("loadable");
            assert_eq!(loaded.graph.triples(), g.triples());
            assert_eq!(loaded.graph.rdf_type_id(), g.rdf_type_id());
            for (id, term) in g.dict.iter() {
                assert_eq!(loaded.graph.dict.term(id), term);
            }
            for p in g.properties() {
                assert_eq!(loaded.graph.property_pairs(p), g.property_pairs(p));
            }
            for s in g.subjects() {
                assert_eq!(loaded.graph.outgoing(s), g.outgoing(s));
            }
            for c in g.classes() {
                assert_eq!(loaded.graph.type_extent_raw(c), g.type_extent_raw(c));
            }
            assert_eq!(loaded.stats, stats);
        }
    }

    #[test]
    fn writer_is_deterministic() {
        let g = sample_graph();
        let stats = sample_stats(&g);
        assert_eq!(snapshot_bytes(&g, &stats), snapshot_bytes(&g, &stats));
    }

    #[test]
    fn term_text_borrows_by_offset() {
        let g = sample_graph();
        let bytes = snapshot_bytes(&g, &[]);
        let snap = Snapshot::from_bytes(&bytes, 1).unwrap();
        // Term 0 is always rdf:type (interned at graph construction).
        assert_eq!(
            snap.term_text(0).unwrap(),
            format!("I{}", vocab::RDF_TYPE),
            "canonical encoding of rdf:type"
        );
        assert!(snap.term_text(g.dict.len()).is_err());
    }

    #[test]
    fn open_modes_serve_identical_views() {
        let g = sample_graph();
        let stats = sample_stats(&g);
        let dir = std::env::temp_dir().join(format!(
            "spade-store-openmode-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.spade");
        write_snapshot(&path, &g, &stats).unwrap();

        let mapped = Snapshot::open_with(&path, 1, OpenMode::Mmap).expect("mmap open");
        let read = Snapshot::open_with(&path, 1, OpenMode::Read).expect("read open");
        assert!(!read.is_mapped());
        assert_eq!(mapped.image_len(), read.image_len());
        if mapped.is_mapped() {
            // Releasing resident pages must be transparent: views still work.
            mapped.release_resident_pages();
        }
        assert_eq!(mapped.meta().unwrap(), read.meta().unwrap());
        assert_eq!(mapped.triples_raw().unwrap(), read.triples_raw().unwrap());
        for i in 0..g.dict.len() {
            assert_eq!(mapped.term_text(i).unwrap(), read.term_text(i).unwrap());
        }
        let a = mapped.load(1).expect("mapped load");
        let b = read.load(1).expect("read load");
        assert_eq!(a.graph.triples(), b.graph.triples());
        assert_eq!(a.stats, b.stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::new();
        let bytes = snapshot_bytes(&g, &[]);
        let loaded = Snapshot::from_bytes(&bytes, 1).unwrap().load(1).unwrap();
        assert!(loaded.graph.is_empty());
        assert_eq!(loaded.graph.dict.len(), 1); // rdf:type
        assert!(loaded.stats.is_empty());
    }
}
