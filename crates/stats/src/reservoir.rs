//! Reservoir sampling (Vitter's Algorithm R).
//!
//! Section 5.3: "We allocate empty reservoirs R₁, …, R_G, one per aggregate
//! group, each with a capacity equal to the sample size: this way we ensure
//! stratification. While reading each tuple, we determine its group, hence
//! also the reservoir, and either put the fact in or not with some
//! probability. If the reservoir is full, we discard one of the previously
//! inserted facts. This strategy is known as reservoir sampling and
//! guarantees a choice of a simple random sample [44]."

use rand::Rng;

/// A fixed-capacity uniform sample of a stream.
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir with room for `capacity` items.
    pub fn new(capacity: usize) -> Self {
        // Most reservoirs see far fewer items than their capacity (sparse
        // groups), so grow lazily instead of preallocating `capacity` slots.
        Reservoir { items: Vec::new(), capacity, seen: 0 }
    }

    /// Offers one stream element; it is retained with probability
    /// `capacity / seen` (Algorithm R).
    pub fn offer<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The sampled items (unordered).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Total number of elements offered so far — the (exact) stream size,
    /// used as the group-size estimate `c_i` of Appendix B.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no item has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity (the paper's per-group sample size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn holds_entire_small_stream() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.offer(i, &mut rng);
        }
        let mut items = r.items().to_vec();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn caps_at_capacity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut r = Reservoir::new(16);
        for i in 0..10_000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn zero_capacity_is_safe() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut r = Reservoir::new(0);
        for i in 0..100 {
            r.offer(i, &mut rng);
        }
        assert!(r.is_empty());
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn sample_is_approximately_uniform() {
        // Each of 100 stream elements should land in a 10-slot reservoir with
        // probability 1/10; over many trials the per-element inclusion
        // frequency must concentrate around 0.1.
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 20_000;
        let mut hits = [0u32; 100];
        for _ in 0..trials {
            let mut r = Reservoir::new(10);
            for i in 0..100usize {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                hits[i] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let freq = h as f64 / trials as f64;
            // 5-sigma band for a Binomial(20000, 0.1) proportion ≈ ±0.0106.
            assert!((freq - 0.1).abs() < 0.011, "element {i} sampled with frequency {freq}");
        }
    }

    #[test]
    fn mean_of_sample_estimates_stream_mean() {
        let mut rng = SmallRng::seed_from_u64(5);
        let stream: Vec<f64> = (0..5000).map(|i| (i % 97) as f64).collect();
        let true_mean = stream.iter().sum::<f64>() / stream.len() as f64;
        let mut estimates = Vec::new();
        for _ in 0..300 {
            let mut r = Reservoir::new(60);
            for &x in &stream {
                r.offer(x, &mut rng);
            }
            estimates.push(r.items().iter().sum::<f64>() / r.len() as f64);
        }
        let avg = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!((avg - true_mean).abs() < 1.5, "avg estimate {avg} vs {true_mean}");
    }
}
