//! Statistics substrate for Spade's interestingness scoring and early-stop
//! pruning (Sections 3, 5 and Appendices A–C of the paper).
//!
//! * [`moments`] — numerically stable online central moments;
//! * [`interestingness`] — the three built-in interestingness functions
//!   (variance, skewness, kurtosis) with their analytic gradients, needed by
//!   the Multivariate Delta Method;
//! * [`normal`] — standard normal CDF and quantile function (for the
//!   `z_{1−α}` critical values of Theorem 2);
//! * [`ci`] — the large-sample confidence interval around the estimated
//!   interestingness score (Theorem 2, Appendices B and C);
//! * [`reservoir`] — Vitter's reservoir sampling (Algorithm R), used for the
//!   stratified per-group samples of Section 5.3.

pub mod ci;
pub mod interestingness;
pub mod moments;
pub mod normal;
pub mod reservoir;

pub use ci::{GroupSample, InterestingnessCi, ScoreInterval};
pub use interestingness::Interestingness;
pub use moments::RunningMoments;
pub use normal::{normal_cdf, normal_quantile};
pub use reservoir::Reservoir;
