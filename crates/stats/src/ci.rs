//! Large-sample confidence intervals around the interestingness score.
//!
//! This is the statistical core of early-stop (Section 5.2). For an
//! aggregate `A` with groups `g₁…g_G` and true result `μ`, the score
//! `Ĥ_r(μ)` is estimated by `Ĥ_r(Ȳ)` on the per-group sample means, and
//! Theorem 2 bounds the error through the Multivariate Delta Method:
//!
//! ```text
//! √r · [Ĥ_r(Ȳ) − Ĥ_r(μ)]  →D  N(0, τ²),
//! τ² = Σ_s σ²_s · (∂Ĥ_r(μ)/∂y_s)²      (independent groups)
//! ```
//!
//! giving the half-width `ε_r = z_{1−α} · √(τ̂² / r)` with `τ̂²` the plug-in
//! estimate using per-group sample variances and the gradient evaluated at
//! `Ȳ`. We allow group-specific sample sizes `r_s` (reservoirs of sparse
//! groups may be partially filled), in which case each group contributes
//! `(∂Ĥ/∂y_s)² · σ̂²_s / r_s` to the squared half-width — this reduces to
//! the paper's formula when all `r_s = r`.
//!
//! Appendix B (sum): the group estimator becomes `S_s = c_s·Ȳ_s` with
//! `Var(S_s) = c_s²σ²_s/r_s`, where `c_s` is the group size counted during
//! data translation ("the count in the root node of the lattice is always
//! correct, whereas in the other lattice nodes ... it may be overestimated").
//!
//! Appendix C (min/max): point estimates are the sample extremes; the score
//! is bounded above via **Popoviciu's inequality** (`Var ≤ ¼(b−a)²`) using
//! the attribute's global bounds, and below via the **Szőkefalvi-Nagy**-style
//! bound (`range²/(2G)`), as prescribed by the paper. The lower bound is a
//! heuristic (the true extremes can move past the sampled ones), which is
//! why Table 4 reports accuracy empirically rather than guaranteeing it.

use crate::interestingness::Interestingness;
use crate::moments::RunningMoments;
use crate::normal::two_sided_z;

/// Which point estimator the aggregate function of the MDA requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// `avg(M)` — group value estimated by the sample mean (Section 5.2).
    Avg,
    /// `sum(M)` — `c_s · Ȳ_s` (Appendix B).
    Sum,
    /// `count` — group sizes are counted exactly during translation; the
    /// interval is degenerate (width 0) at the counted value.
    Count,
    /// `min(M)` — sample minimum + Popoviciu/Szőkefalvi-Nagy bounds (App. C).
    Min,
    /// `max(M)` — sample maximum + Popoviciu/Szőkefalvi-Nagy bounds (App. C).
    Max,
}

/// Per-group sampling state fed to the interval computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroupSample {
    /// Moments of the sampled (pre-aggregated) measure values in the group.
    pub moments: RunningMoments,
    /// Group size `c_s` observed during data translation (reservoir's
    /// `seen()` count).
    pub group_size: u64,
}

impl GroupSample {
    /// Builds a group sample from raw sampled values plus the stream size.
    pub fn from_values(values: &[f64], group_size: u64) -> Self {
        GroupSample { moments: RunningMoments::from_slice(values), group_size }
    }
}

/// A confidence interval `[lower, upper]` around the estimated score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreInterval {
    /// Point estimate `Ĥ_r(Ȳ)` (already folded to the non-negative score).
    pub estimate: f64,
    /// Lower bound `L_r` at the configured confidence.
    pub lower: f64,
    /// Upper bound `U_r`.
    pub upper: f64,
}

impl ScoreInterval {
    /// A width-zero interval.
    pub fn exact(value: f64) -> Self {
        ScoreInterval { estimate: value, lower: value, upper: value }
    }
}

/// Confidence-interval builder for one interestingness function.
#[derive(Clone, Copy, Debug)]
pub struct InterestingnessCi {
    /// The interestingness function `h`.
    pub h: Interestingness,
    /// Confidence level `1 − α`, e.g. `0.95`.
    pub confidence: f64,
}

impl InterestingnessCi {
    /// Creates a builder; panics if `confidence ∉ (0,1)`.
    pub fn new(h: Interestingness, confidence: f64) -> Self {
        assert!(confidence > 0.0 && confidence < 1.0);
        InterestingnessCi { h, confidence }
    }

    /// Computes the interval for an MDA whose aggregate function needs
    /// `estimator`, from the per-group samples. `global_bounds` are the
    /// attribute's offline `[min, max]` statistics, required for
    /// [`EstimatorKind::Min`]/[`EstimatorKind::Max`].
    pub fn interval(
        &self,
        estimator: EstimatorKind,
        groups: &[GroupSample],
        global_bounds: Option<(f64, f64)>,
    ) -> ScoreInterval {
        if groups.len() < 2 {
            return ScoreInterval::exact(0.0);
        }
        match estimator {
            EstimatorKind::Avg => self.delta_interval(groups, |g| {
                let r = g.moments.count().max(1) as f64;
                (g.moments.mean(), g.moments.variance_unbiased() / r)
            }),
            EstimatorKind::Sum => self.delta_interval(groups, |g| {
                let r = g.moments.count().max(1) as f64;
                let c = g.group_size as f64;
                (c * g.moments.mean(), c * c * g.moments.variance_unbiased() / r)
            }),
            EstimatorKind::Count => {
                let y: Vec<f64> = groups.iter().map(|g| g.group_size as f64).collect();
                ScoreInterval::exact(self.h.score(&y))
            }
            EstimatorKind::Min | EstimatorKind::Max => {
                self.extreme_interval(estimator, groups, global_bounds)
            }
        }
    }

    /// The Delta-Method interval: `point ± z·√(Σ g_s²·Var(estimator_s))`,
    /// folded to the non-negative score domain.
    fn delta_interval(
        &self,
        groups: &[GroupSample],
        point_and_var: impl Fn(&GroupSample) -> (f64, f64),
    ) -> ScoreInterval {
        let mut y = Vec::with_capacity(groups.len());
        let mut vars = Vec::with_capacity(groups.len());
        for g in groups {
            let (p, v) = point_and_var(g);
            y.push(p);
            vars.push(v);
        }
        let raw = self.h.raw(&y);
        let grad = self.h.gradient(&y);
        let tau2: f64 = grad.iter().zip(vars.iter()).map(|(g, v)| g * g * v).sum();
        let half = two_sided_z(self.confidence) * tau2.max(0.0).sqrt();
        fold_to_score(self.h, raw, half)
    }

    /// Appendix C: extremes with Popoviciu / Szőkefalvi-Nagy variance bounds.
    fn extreme_interval(
        &self,
        estimator: EstimatorKind,
        groups: &[GroupSample],
        global_bounds: Option<(f64, f64)>,
    ) -> ScoreInterval {
        let y: Vec<f64> = groups
            .iter()
            .map(|g| match estimator {
                EstimatorKind::Min => g.moments.min(),
                _ => g.moments.max(),
            })
            .filter(|v| v.is_finite())
            .collect();
        if y.len() < 2 {
            return ScoreInterval::exact(0.0);
        }
        let estimate = self.h.score(&y);
        let g_count = y.len() as f64;
        let observed_lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let observed_hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // The true group extreme can only move toward the attribute's global
        // bound: past the sample min downwards, past the sample max upwards.
        let spread = match (estimator, global_bounds) {
            (EstimatorKind::Min, Some((lo, _))) => observed_hi - lo.min(observed_lo),
            (EstimatorKind::Max, Some((_, hi))) => hi.max(observed_hi) - observed_lo,
            _ => observed_hi - observed_lo,
        };
        // Popoviciu: population Var(y) ≤ ¼ spread²; the score uses the
        // unbiased variance (Eq. 1), hence the G/(G−1) correction.
        let bessel = g_count / (g_count - 1.0);
        let upper = bessel * 0.25 * spread * spread;
        // Szőkefalvi-Nagy-style floor on the observed spread:
        // population Var ≥ range²/(2G) → unbiased ≥ range²/(2(G−1)).
        let range = observed_hi - observed_lo;
        let lower = (range * range / (2.0 * (g_count - 1.0))).min(estimate);
        ScoreInterval { estimate, lower, upper: upper.max(estimate) }
    }
}

/// Folds a signed-statistic interval `raw ± half` into the non-negative
/// score domain (|·| for skewness/kurtosis; variance is clamped at 0).
fn fold_to_score(h: Interestingness, raw: f64, half: f64) -> ScoreInterval {
    let (lo, hi) = (raw - half, raw + half);
    match h {
        Interestingness::Variance => {
            ScoreInterval { estimate: raw.max(0.0), lower: lo.max(0.0), upper: hi.max(0.0) }
        }
        Interestingness::Skewness | Interestingness::Kurtosis => {
            if lo >= 0.0 {
                ScoreInterval { estimate: raw.abs(), lower: lo, upper: hi }
            } else if hi <= 0.0 {
                ScoreInterval { estimate: raw.abs(), lower: -hi, upper: -lo }
            } else {
                ScoreInterval { estimate: raw.abs(), lower: 0.0, upper: (-lo).max(hi) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn group(values: &[f64]) -> GroupSample {
        GroupSample::from_values(values, values.len() as u64)
    }

    #[test]
    fn interval_brackets_estimate() {
        let groups: Vec<GroupSample> = (0..5)
            .map(|i| {
                let vals: Vec<f64> = (0..30).map(|j| (i * 10 + j % 7) as f64).collect();
                group(&vals)
            })
            .collect();
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let iv = ci.interval(EstimatorKind::Avg, &groups, None);
        assert!(iv.lower <= iv.estimate && iv.estimate <= iv.upper);
        assert!(iv.lower >= 0.0);
    }

    #[test]
    fn count_interval_is_exact() {
        let groups = vec![
            GroupSample::from_values(&[], 10),
            GroupSample::from_values(&[], 20),
            GroupSample::from_values(&[], 90),
        ];
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let iv = ci.interval(EstimatorKind::Count, &groups, None);
        let expected = Interestingness::Variance.score(&[10.0, 20.0, 90.0]);
        assert_eq!(iv, ScoreInterval::exact(expected));
    }

    #[test]
    fn more_samples_tighten_the_interval() {
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let mut rng = SmallRng::seed_from_u64(7);
        let widths: Vec<f64> = [10usize, 100, 1000]
            .iter()
            .map(|&r| {
                let groups: Vec<GroupSample> = (0..4)
                    .map(|i| {
                        let vals: Vec<f64> =
                            (0..r).map(|_| i as f64 * 5.0 + rng.gen::<f64>()).collect();
                        group(&vals)
                    })
                    .collect();
                let iv = ci.interval(EstimatorKind::Avg, &groups, None);
                iv.upper - iv.lower
            })
            .collect();
        assert!(widths[0] > widths[1] && widths[1] > widths[2], "{widths:?}");
    }

    #[test]
    fn sum_estimator_scales_with_group_size() {
        // Two groups with identical per-fact means but 10x different sizes
        // must produce very different sum estimates → high variance score.
        let g1 = GroupSample::from_values(&[1.0, 1.2, 0.8, 1.0], 1000);
        let g2 = GroupSample::from_values(&[1.0, 0.9, 1.1, 1.0], 100);
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let iv = ci.interval(EstimatorKind::Sum, &[g1, g2], None);
        // sums ≈ 1000 vs 100 → variance ≈ (900)²/2 = 405000.
        assert!(iv.estimate > 300_000.0, "estimate {}", iv.estimate);
    }

    #[test]
    fn extreme_bounds_use_popoviciu() {
        // Sample minima per group with attribute range [0, 100]:
        // upper bound = ¼·spread², spread = max(sample minima) − global lo.
        let g1 = GroupSample::from_values(&[5.0, 9.0], 50);
        let g2 = GroupSample::from_values(&[40.0, 60.0], 50);
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let iv = ci.interval(EstimatorKind::Min, &[g1, g2], Some((0.0, 100.0)));
        let spread: f64 = 40.0; // max sample-min (40) − global lo (0)
                                // G/(G−1)·¼·spread² = 2·0.25·1600 = 800
        assert!((iv.upper - 2.0 * 0.25 * spread * spread).abs() < 1e-9);
        // Szőkefalvi-Nagy floor: observed range 35, G=2 → 35²/2 = 612.5,
        // capped at the point estimate (unbiased variance of [5,40] = 612.5).
        assert!((iv.lower - 35.0f64 * 35.0 / 2.0).abs() < 1e-9);
        assert!(iv.lower <= iv.estimate && iv.estimate <= iv.upper);
    }

    #[test]
    fn skewness_interval_folds_to_nonnegative() {
        let groups: Vec<GroupSample> = [1.0, 1.0, 1.0, 20.0]
            .iter()
            .map(|&m| {
                let vals: Vec<f64> = (0..50).map(|j| m + (j % 5) as f64 * 0.01).collect();
                group(&vals)
            })
            .collect();
        let ci = InterestingnessCi::new(Interestingness::Skewness, 0.95);
        let iv = ci.interval(EstimatorKind::Avg, &groups, None);
        assert!(iv.lower >= 0.0);
        assert!(iv.estimate > 0.5); // strongly right-skewed group means
        assert!(iv.lower <= iv.estimate && iv.estimate <= iv.upper);
    }

    /// Empirical coverage check of Theorem 2: the nominal 95% interval must
    /// contain the true interestingness at a rate close to 95% over repeated
    /// sampling. We allow a generous band since the guarantee is asymptotic.
    #[test]
    fn coverage_close_to_nominal() {
        let mut rng = SmallRng::seed_from_u64(42);
        let true_means = [10.0f64, 12.0, 9.0, 15.0, 11.0];
        let sigma = 4.0;
        let truth = Interestingness::Variance.score(true_means.as_ref());
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let trials = 400;
        let r = 200; // large-sample regime
        let mut covered = 0;
        for _ in 0..trials {
            let groups: Vec<GroupSample> = true_means
                .iter()
                .map(|&mu| {
                    let vals: Vec<f64> = (0..r)
                        .map(|_| {
                            // Approximate N(mu, sigma) via CLT of 12 uniforms.
                            let u: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
                            mu + sigma * u
                        })
                        .collect();
                    group(&vals)
                })
                .collect();
            let iv = ci.interval(EstimatorKind::Avg, &groups, None);
            if iv.lower <= truth && truth <= iv.upper {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.85, "coverage {rate} too low");
    }

    #[test]
    fn fewer_than_two_groups_scores_zero() {
        let ci = InterestingnessCi::new(Interestingness::Variance, 0.95);
        let iv = ci.interval(EstimatorKind::Avg, &[group(&[1.0, 2.0])], None);
        assert_eq!(iv, ScoreInterval::exact(0.0));
    }
}
