//! Online central moments up to order four.
//!
//! The Aggregate Result Manager scans every aggregate result once (Section 3,
//! Step 4: "incrementally updates statistics ... in one pass over their
//! results"), so the moment accumulator must be single-pass. We use the
//! standard numerically stable update formulas (Pébay 2008), which extend
//! Welford's algorithm to third and fourth moments.

/// Single-pass accumulator of count, mean and 2nd–4th central moments.
#[derive(Clone, Copy, Debug)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

/// `Default` equals [`RunningMoments::new`]: an *empty* accumulator with
/// `min = +∞` / `max = −∞` sentinels (a derived all-zero default would
/// silently corrupt `min()` for positive-valued data).
impl Default for RunningMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMoments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every value of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Builds an accumulator over a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Self::new();
        m.extend(xs);
        m
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance `1/(n−1) Σ (x−x̄)²` — the paper's Eq. (1).
    pub fn variance_unbiased(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population variance `m₂ = 1/n Σ (x−x̄)²`.
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Third central moment `m₃ = 1/n Σ (x−x̄)³`.
    pub fn third_central(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m3 / self.n as f64
        }
    }

    /// Fourth central moment `m₄ = 1/n Σ (x−x̄)⁴`.
    pub fn fourth_central(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m4 / self.n as f64
        }
    }

    /// Moment-ratio skewness `m₃ / m₂^{3/2}` (0 for degenerate data).
    pub fn skewness(&self) -> f64 {
        let m2 = self.variance_population();
        if self.n < 3 || m2 <= f64::EPSILON {
            0.0
        } else {
            self.third_central() / m2.powf(1.5)
        }
    }

    /// Excess kurtosis `m₄ / m₂² − 3` (0 for degenerate data).
    pub fn kurtosis_excess(&self) -> f64 {
        let m2 = self.variance_population();
        if self.n < 4 || m2 <= f64::EPSILON {
            0.0
        } else {
            self.fourth_central() / (m2 * m2) - 3.0
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        self.mean = (na * self.mean + nb * other.mean) / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64, f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        (mean, m2, m3, m4)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = RunningMoments::from_slice(&xs);
        let (mean, m2, m3, m4) = naive(&xs);
        assert!(close(m.mean(), mean));
        assert!(close(m.variance_population(), m2));
        assert!(close(m.third_central(), m3));
        assert!(close(m.fourth_central(), m4));
        assert!(close(m.variance_unbiased(), m2 * 8.0 / 7.0));
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let m = RunningMoments::from_slice(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert!(m.skewness().abs() < 1e-12);
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        let m = RunningMoments::from_slice(&[1.0, 1.0, 1.0, 1.0, 100.0]);
        assert!(m.skewness() > 1.0);
    }

    #[test]
    fn uniform_kurtosis_is_negative_normalish_near_zero() {
        // Discrete uniform has excess kurtosis −1.2 in the limit.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let m = RunningMoments::from_slice(&xs);
        assert!((m.kurtosis_excess() + 1.2).abs() < 0.01);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let mut m = RunningMoments::new();
        assert_eq!(m.variance_unbiased(), 0.0);
        m.push(5.0);
        assert_eq!(m.variance_unbiased(), 0.0);
        assert_eq!(m.skewness(), 0.0);
        assert_eq!(m.kurtosis_excess(), 0.0);
        m.push(5.0);
        m.push(5.0);
        m.push(5.0);
        assert_eq!(m.variance_population(), 0.0);
        assert_eq!(m.skewness(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Vec<f64> = (0..91).map(|i| (i as f64).cos() * 3.0 + 2.0).collect();
        let mut left = RunningMoments::from_slice(&a);
        let right = RunningMoments::from_slice(&b);
        left.merge(&right);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let seq = RunningMoments::from_slice(&all);
        assert!(close(left.mean(), seq.mean()));
        assert!(close(left.variance_population(), seq.variance_population()));
        assert!(close(left.third_central(), seq.third_central()));
        assert!(close(left.fourth_central(), seq.fourth_central()));
        assert_eq!(left.count(), seq.count());
        assert_eq!(left.min(), seq.min());
        assert_eq!(left.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = RunningMoments::from_slice(&[1.0, 2.0, 3.0]);
        let mut b = a;
        b.merge(&RunningMoments::new());
        assert!(close(a.variance_unbiased(), b.variance_unbiased()));
        let mut empty = RunningMoments::new();
        empty.merge(&a);
        assert!(close(empty.mean(), a.mean()));
    }

    #[test]
    fn tracks_min_max() {
        let m = RunningMoments::from_slice(&[3.0, -1.0, 7.5, 2.0]);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 7.5);
    }
}
