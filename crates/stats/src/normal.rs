//! Standard normal distribution: CDF `Φ` and quantile `Φ⁻¹`.
//!
//! Theorem 2 standardizes the Delta-Method limit and takes "quantiles of the
//! standard normal distribution as the interval's ends"; `z_p` is the
//! `(p+1)/2` quantile of `Φ`. We implement `Φ` via the Abramowitz & Stegun
//! 7.1.26 `erf` approximation and `Φ⁻¹` via Acklam's rational approximation
//! (relative error < 1.15e−9), both dependency-free.

/// Cumulative distribution function of `N(0, 1)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (A&S 7.1.26, |error| ≤ 1.5e−7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Quantile function (inverse CDF) of `N(0, 1)` — Acklam's algorithm.
///
/// # Panics
/// Panics when `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided critical value `z` such that `P(|Z| ≤ z) = confidence`,
/// i.e. the `(confidence+1)/2` quantile used by Theorem 2.
pub fn two_sided_z(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    normal_quantile((confidence + 1.0) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.9986501).abs() < 1e-5);
    }

    #[test]
    fn quantile_reference_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.9995) - 3.290527).abs() < 1e-4);
        assert!((normal_quantile(1e-10) + 6.361341).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    fn two_sided_critical_values() {
        assert!((two_sided_z(0.95) - 1.959964).abs() < 1e-5);
        assert!((two_sided_z(0.90) - 1.644854).abs() < 1e-5);
        assert!((two_sided_z(0.99) - 2.575829).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn rejects_out_of_range() {
        normal_quantile(1.0);
    }
}
