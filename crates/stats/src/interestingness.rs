//! Interestingness functions over aggregate results.
//!
//! Section 3, Step 5: "Spade natively supports three interestingness
//! functions, from which the user can choose: (i) variance, (ii) skewness,
//! and (iii) kurtosis, where variance can detect deviation from uniform
//! aggregate values, whereas the latter two can detect deviation from a
//! normal distribution of aggregated values over numeric dimensions."
//!
//! The score must be "a positive real number" (Section 2); skewness and
//! excess kurtosis are signed, so those scores are taken in absolute value.
//!
//! Each function also exposes its analytic gradient `∂h/∂y_s`, the quantity
//! Appendix A derives, required by the Delta-Method confidence interval of
//! Theorem 2. The paper's Appendix A prints the skewness normalizer as
//! `[Ĥ_r(y)]^{2/3}`; the standard moment-ratio exponent is `−3/2`
//! (`m₃/m₂^{3/2}`), which is also what the appendix's derivative expansion
//! corresponds to, so we implement `−3/2` and note the appendix exponent as
//! a typo.

use crate::moments::RunningMoments;

/// A built-in interestingness function `h`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interestingness {
    /// Unbiased variance of the aggregated values (paper Eq. 1); detects
    /// deviation from uniformity (outlier groups).
    Variance,
    /// |moment-ratio skewness|; detects asymmetric deviation from normality.
    Skewness,
    /// |excess kurtosis|; detects heavy/light tails vs. normality.
    Kurtosis,
}

impl Interestingness {
    /// All built-in functions.
    pub const ALL: [Interestingness; 3] =
        [Interestingness::Variance, Interestingness::Skewness, Interestingness::Kurtosis];

    /// Scores a vector of aggregated values `{t₁.v, …, t_W.v}`.
    ///
    /// Returns 0 for degenerate inputs (fewer than two groups, or zero
    /// spread), which the paper's examples treat as uninteresting
    /// (Figure 8: "all aggregated values are uniformly equal to 1").
    pub fn score(self, values: &[f64]) -> f64 {
        let m = RunningMoments::from_slice(values);
        self.score_from_moments(&m)
    }

    /// Scores from pre-accumulated moments (the ARM's single-pass path).
    pub fn score_from_moments(self, m: &RunningMoments) -> f64 {
        match self {
            Interestingness::Variance => m.variance_unbiased(),
            Interestingness::Skewness => m.skewness().abs(),
            Interestingness::Kurtosis => m.kurtosis_excess().abs(),
        }
    }

    /// The *signed* raw statistic (used internally by the CI machinery,
    /// which builds an interval around the signed value before folding).
    pub fn raw(self, values: &[f64]) -> f64 {
        let m = RunningMoments::from_slice(values);
        match self {
            Interestingness::Variance => m.variance_unbiased(),
            Interestingness::Skewness => m.skewness(),
            Interestingness::Kurtosis => m.kurtosis_excess(),
        }
    }

    /// Analytic gradient `∂h/∂y_s` of the raw statistic at `values`.
    ///
    /// * variance: `2/(G−1)·(y_s − ȳ)`
    /// * skewness `I = m₃·m₂^{−3/2}`:
    ///   `∂I/∂y_s = (3/G)((y_s−ȳ)² − m₂)·m₂^{−3/2} + m₃·(−3/2)m₂^{−5/2}·(2/G)(y_s−ȳ)`
    /// * kurtosis `J = m₄·m₂^{−2} − 3`:
    ///   `∂J/∂y_s = (4/G)((y_s−ȳ)³ − m₃)·m₂^{−2} + m₄·(−2)m₂^{−3}·(2/G)(y_s−ȳ)`
    pub fn gradient(self, values: &[f64]) -> Vec<f64> {
        let g = values.len() as f64;
        if values.len() < 2 {
            return vec![0.0; values.len()];
        }
        let m = RunningMoments::from_slice(values);
        let mean = m.mean();
        match self {
            Interestingness::Variance => {
                values.iter().map(|&y| 2.0 / (g - 1.0) * (y - mean)).collect()
            }
            Interestingness::Skewness => {
                let m2 = m.variance_population();
                let m3 = m.third_central();
                if m2 <= f64::EPSILON {
                    return vec![0.0; values.len()];
                }
                values
                    .iter()
                    .map(|&y| {
                        let d = y - mean;
                        let dm3 = 3.0 / g * (d * d - m2);
                        let dm2 = 2.0 / g * d;
                        dm3 * m2.powf(-1.5) + m3 * (-1.5) * m2.powf(-2.5) * dm2
                    })
                    .collect()
            }
            Interestingness::Kurtosis => {
                let m2 = m.variance_population();
                let m3 = m.third_central();
                let m4 = m.fourth_central();
                if m2 <= f64::EPSILON {
                    return vec![0.0; values.len()];
                }
                values
                    .iter()
                    .map(|&y| {
                        let d = y - mean;
                        let dm4 = 4.0 / g * (d * d * d - m3);
                        let dm2 = 2.0 / g * d;
                        dm4 / (m2 * m2) + m4 * (-2.0) * m2.powi(-3) * dm2
                    })
                    .collect()
            }
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Interestingness::Variance => "variance",
            Interestingness::Skewness => "skewness",
            Interestingness::Kurtosis => "kurtosis",
        }
    }
}

impl std::fmt::Display for Interestingness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference to validate analytic gradients.
    fn numeric_gradient(h: Interestingness, values: &[f64]) -> Vec<f64> {
        let eps = 1e-6;
        (0..values.len())
            .map(|s| {
                let mut plus = values.to_vec();
                let mut minus = values.to_vec();
                plus[s] += eps;
                minus[s] -= eps;
                (h.raw(&plus) - h.raw(&minus)) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn variance_matches_eq1() {
        // Eq. (1): Ĥ(y) = 1/(G−1) Σ (y_i − ȳ)².
        let y = [1.0f64, 2.0, 3.0, 10.0];
        let mean = 4.0f64;
        let expected: f64 = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 3.0;
        assert!((Interestingness::Variance.score(&y) - expected).abs() < 1e-12);
    }

    #[test]
    fn uniform_values_score_zero() {
        // Figure 8's uninteresting aggregate: all values equal.
        for h in Interestingness::ALL {
            assert_eq!(h.score(&[1.0; 20]), 0.0, "{h}");
        }
    }

    #[test]
    fn outlier_increases_variance() {
        // Figure 1(b): Angola's sum(netWorth) outlier drives variance.
        let without = Interestingness::Variance.score(&[1.0, 1.1, 0.9, 1.0]);
        let with = Interestingness::Variance.score(&[1.0, 1.1, 0.9, 28.0]);
        assert!(with > 100.0 * without);
    }

    #[test]
    fn scores_are_nonnegative() {
        let left_skewed = [10.0, 10.0, 10.0, 10.0, 1.0];
        let light_tailed: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        for h in Interestingness::ALL {
            assert!(h.score(&left_skewed) >= 0.0);
            assert!(h.score(&light_tailed) >= 0.0);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let y = [2.0, 4.0, 4.5, 7.0, 11.0, 3.0];
        for h in Interestingness::ALL {
            let analytic = h.gradient(&y);
            let numeric = numeric_gradient(h, &y);
            for (a, n) in analytic.iter().zip(numeric.iter()) {
                assert!(
                    (a - n).abs() < 1e-4 * (1.0 + n.abs()),
                    "{h}: analytic {a} vs numeric {n}"
                );
            }
        }
    }

    #[test]
    fn variance_gradient_formula() {
        // ∂Ĥ/∂y_s = 2/(G−1) (y_s − ȳ), the expression recalled in Appendix A.
        let y = [1.0, 3.0, 5.0];
        let grad = Interestingness::Variance.gradient(&y);
        assert!((grad[0] - 2.0 / 2.0 * (1.0 - 3.0)).abs() < 1e-12);
        assert!((grad[1] - 0.0).abs() < 1e-12);
        assert!((grad[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_safe_on_degenerate_input() {
        for h in Interestingness::ALL {
            assert_eq!(h.gradient(&[5.0]), vec![0.0]);
            let g = h.gradient(&[2.0, 2.0, 2.0]);
            assert!(g.iter().all(|v| v.is_finite()));
        }
    }
}
