//! Property tests for the statistics substrate.

use proptest::prelude::*;
use spade_stats::ci::EstimatorKind;
use spade_stats::{GroupSample, Interestingness, InterestingnessCi, RunningMoments};

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// Online moments equal the two-pass definitions for arbitrary data.
    #[test]
    fn moments_match_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let m = RunningMoments::from_slice(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        prop_assert!(close(m.mean(), mean, 1e-9));
        prop_assert!(close(m.variance_population(), m2, 1e-7));
        prop_assert!(close(m.third_central(), m3, 1e-5));
        prop_assert!(close(m.fourth_central(), m4, 1e-5));
    }

    /// Merging a random split equals processing the whole slice.
    #[test]
    fn merge_is_split_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        cut in 0usize..200,
    ) {
        let cut = cut.min(xs.len());
        let mut left = RunningMoments::from_slice(&xs[..cut]);
        let right = RunningMoments::from_slice(&xs[cut..]);
        left.merge(&right);
        let whole = RunningMoments::from_slice(&xs);
        prop_assert!(close(left.variance_population(), whole.variance_population(), 1e-7));
        prop_assert!(close(left.fourth_central(), whole.fourth_central(), 1e-4));
        prop_assert_eq!(left.count(), whole.count());
    }

    /// Every CI brackets its own point estimate and stays non-negative.
    #[test]
    fn intervals_bracket_estimates(
        means in prop::collection::vec(-100f64..100.0, 2..12),
        spread in 0.1f64..20.0,
    ) {
        for h in Interestingness::ALL {
            let ci = InterestingnessCi::new(h, 0.95);
            let groups: Vec<GroupSample> = means
                .iter()
                .enumerate()
                .map(|(i, &mu)| {
                    let vals: Vec<f64> = (0..30)
                        .map(|j| mu + spread * (((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5))
                        .collect();
                    GroupSample::from_values(&vals, 30)
                })
                .collect();
            for est in [EstimatorKind::Avg, EstimatorKind::Sum, EstimatorKind::Count] {
                let iv = ci.interval(est, &groups, None);
                prop_assert!(iv.lower >= 0.0, "{h} {est:?}: lower {}", iv.lower);
                prop_assert!(
                    iv.lower <= iv.estimate + 1e-9 && iv.estimate <= iv.upper + 1e-9,
                    "{h} {est:?}: {iv:?}"
                );
            }
        }
    }

    /// Higher confidence never shrinks the interval.
    #[test]
    fn confidence_is_monotone(means in prop::collection::vec(-50f64..50.0, 3..8)) {
        let groups: Vec<GroupSample> = means
            .iter()
            .map(|&mu| {
                let vals: Vec<f64> = (0..40).map(|j| mu + (j % 7) as f64 * 0.3).collect();
                GroupSample::from_values(&vals, 40)
            })
            .collect();
        let narrow = InterestingnessCi::new(Interestingness::Variance, 0.80)
            .interval(EstimatorKind::Avg, &groups, None);
        let wide = InterestingnessCi::new(Interestingness::Variance, 0.99)
            .interval(EstimatorKind::Avg, &groups, None);
        prop_assert!(wide.upper - wide.lower >= narrow.upper - narrow.lower - 1e-9);
    }

    /// Φ⁻¹ inverts Φ across the whole practical range.
    #[test]
    fn quantile_inverts_cdf(p in 0.0005f64..0.9995) {
        let x = spade_stats::normal_quantile(p);
        prop_assert!(close(spade_stats::normal_cdf(x), p, 1e-4));
    }

    /// Scores are permutation-invariant (set semantics of Section 2).
    #[test]
    fn scores_permutation_invariant(mut xs in prop::collection::vec(-1e2f64..1e2, 3..50)) {
        for h in Interestingness::ALL {
            let a = h.score(&xs);
            xs.reverse();
            let b = h.score(&xs);
            prop_assert!(close(a, b, 1e-9), "{h}");
        }
    }
}
