//! The run container: sorted run-length encoding for clustered chunks.
//!
//! A [`RunContainer`] stores a sorted, non-overlapping, non-adjacent list
//! of inclusive `(start, end)` intervals covering the chunk's set bits,
//! plus a cached cardinality. Ranges are inclusive on both ends so the
//! full chunk is representable as the single run `(0, 65535)` without
//! overflowing `u16` arithmetic.
//!
//! Binary ops between run streams are interval merges — `O(runs_a +
//! runs_b)` regardless of cardinality, which is what makes runs win on
//! clustered data (a contiguous block of a million facts unions in a
//! handful of comparisons). The free functions at the bottom
//! ([`merge_runs`], [`intersect_runs`], [`subtract_runs`]) are shared
//! with the mixed-representation paths in [`crate::container`], which
//! adapt sorted arrays as streams of unit runs.

/// Sorted inclusive-interval run-length encoding of one 65536-value
/// chunk.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RunContainer {
    runs: Vec<(u16, u16)>,
    cardinality: u32,
}

fn runs_cardinality(runs: &[(u16, u16)]) -> u32 {
    runs.iter().map(|&(s, e)| e as u32 - s as u32 + 1).sum()
}

impl RunContainer {
    /// Builds from an already-normalized run list (sorted, disjoint,
    /// non-adjacent).
    pub(crate) fn from_runs(runs: Vec<(u16, u16)>) -> Self {
        debug_assert!(
            runs.windows(2).all(|w| (w[0].1 as u32) + 1 < w[1].0 as u32),
            "runs must be sorted, disjoint and non-adjacent"
        );
        debug_assert!(runs.iter().all(|&(s, e)| s <= e));
        let cardinality = runs_cardinality(&runs);
        RunContainer { runs, cardinality }
    }

    /// Builds from sorted deduplicated low bits.
    pub(crate) fn from_sorted_lows(lows: &[u16]) -> Self {
        let mut runs: Vec<(u16, u16)> = Vec::new();
        for &v in lows {
            match runs.last_mut() {
                Some(last) if last.1 as u32 + 1 == v as u32 => last.1 = v,
                _ => runs.push((v, v)),
            }
        }
        RunContainer { runs, cardinality: lows.len() as u32 }
    }

    /// The sorted inclusive intervals.
    pub fn runs(&self) -> &[(u16, u16)] {
        &self.runs
    }

    pub(crate) fn cardinality(&self) -> u32 {
        self.cardinality
    }

    pub(crate) fn n_runs(&self) -> u32 {
        self.runs.len() as u32
    }

    pub(crate) fn min(&self) -> Option<u16> {
        self.runs.first().map(|r| r.0)
    }

    pub(crate) fn max(&self) -> Option<u16> {
        self.runs.last().map(|r| r.1)
    }

    /// Index of the run containing `low`, if any.
    fn find(&self, low: u16) -> Option<usize> {
        let i = self.runs.partition_point(|r| r.0 <= low);
        (i > 0 && self.runs[i - 1].1 >= low).then(|| i - 1)
    }

    pub(crate) fn contains(&self, low: u16) -> bool {
        self.find(low).is_some()
    }

    pub(crate) fn insert(&mut self, low: u16) -> bool {
        let i = self.runs.partition_point(|r| r.0 <= low);
        if i > 0 && self.runs[i - 1].1 >= low {
            return false;
        }
        let prev_adj = i > 0 && self.runs[i - 1].1 as u32 + 1 == low as u32;
        let next_adj = i < self.runs.len() && low as u32 + 1 == self.runs[i].0 as u32;
        match (prev_adj, next_adj) {
            (true, true) => {
                self.runs[i - 1].1 = self.runs[i].1;
                self.runs.remove(i);
            }
            (true, false) => self.runs[i - 1].1 = low,
            (false, true) => self.runs[i].0 = low,
            (false, false) => self.runs.insert(i, (low, low)),
        }
        self.cardinality += 1;
        true
    }

    pub(crate) fn remove(&mut self, low: u16) -> bool {
        let Some(i) = self.find(low) else { return false };
        let (s, e) = self.runs[i];
        if s == e {
            self.runs.remove(i);
        } else if low == s {
            self.runs[i].0 = s + 1;
        } else if low == e {
            self.runs[i].1 = e - 1;
        } else {
            self.runs[i].1 = low - 1;
            self.runs.insert(i + 1, (low + 1, e));
        }
        self.cardinality -= 1;
        true
    }

    /// Number of stored values strictly below `low`.
    pub(crate) fn rank(&self, low: u16) -> u32 {
        let mut total = 0u32;
        for &(s, e) in &self.runs {
            if (e as u32) < low as u32 {
                total += e as u32 - s as u32 + 1;
            } else {
                if (s as u32) < low as u32 {
                    total += low as u32 - s as u32;
                }
                break;
            }
        }
        total
    }

    /// The `n`-th smallest stored value (0-based), if present.
    pub(crate) fn select(&self, mut n: u32) -> Option<u16> {
        for &(s, e) in &self.runs {
            let len = e as u32 - s as u32 + 1;
            if n < len {
                return Some((s as u32 + n) as u16);
            }
            n -= len;
        }
        None
    }

    /// Appends all values in order to `out`.
    pub(crate) fn to_lows(&self, out: &mut Vec<u16>) {
        for &(s, e) in &self.runs {
            out.extend(s..=e);
        }
    }
}

/// Union of two normalized run streams into `out` (cleared first).
pub(crate) fn merge_runs(a: &[(u16, u16)], b: &[(u16, u16)], out: &mut Vec<(u16, u16)>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    let mut cur: Option<(u16, u16)> = None;
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i].0 <= b[j].0) {
            let r = a[i];
            i += 1;
            r
        } else {
            let r = b[j];
            j += 1;
            r
        };
        match cur {
            None => cur = Some(next),
            Some(ref mut c) => {
                if next.0 as u32 <= c.1 as u32 + 1 {
                    c.1 = c.1.max(next.1);
                } else {
                    out.push(*c);
                    *c = next;
                }
            }
        }
    }
    if let Some(c) = cur {
        out.push(c);
    }
}

/// Intersection of two normalized run streams into `out` (cleared first).
pub(crate) fn intersect_runs(a: &[(u16, u16)], b: &[(u16, u16)], out: &mut Vec<(u16, u16)>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// `a \ b` for normalized run streams into `out` (cleared first).
pub(crate) fn subtract_runs(a: &[(u16, u16)], b: &[(u16, u16)], out: &mut Vec<(u16, u16)>) {
    out.clear();
    let mut j = 0usize;
    for &(s0, e0) in a {
        let mut s = s0 as u32;
        let e = e0 as u32;
        while j < b.len() && (b[j].1 as u32) < s {
            j += 1;
        }
        let mut jj = j;
        while s <= e {
            if jj >= b.len() || (b[jj].0 as u32) > e {
                out.push((s as u16, e as u16));
                break;
            }
            let (bs, be) = (b[jj].0 as u32, b[jj].1 as u32);
            if bs > s {
                out.push((s as u16, (bs - 1) as u16));
            }
            if be >= e {
                break;
            }
            s = be + 1;
            jj += 1;
        }
    }
}

/// `|a ∩ b|` for normalized run streams, no materialization.
pub(crate) fn intersect_runs_card(a: &[(u16, u16)], b: &[(u16, u16)]) -> u32 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut card = 0u32;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            card += hi as u32 - lo as u32 + 1;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    card
}

/// `array ∩ runs` into `out` (cleared first): one forward walk over both,
/// output is array-sized.
pub(crate) fn array_intersect_runs(a: &[u16], runs: &[(u16, u16)], out: &mut Vec<u16>) {
    out.clear();
    let mut j = 0usize;
    for &v in a {
        while j < runs.len() && runs[j].1 < v {
            j += 1;
        }
        if j == runs.len() {
            break;
        }
        if runs[j].0 <= v {
            out.push(v);
        }
    }
}

/// `|array ∩ runs|` without materialization.
pub(crate) fn array_intersect_runs_card(a: &[u16], runs: &[(u16, u16)]) -> u32 {
    let mut j = 0usize;
    let mut card = 0u32;
    for &v in a {
        while j < runs.len() && runs[j].1 < v {
            j += 1;
        }
        if j == runs.len() {
            break;
        }
        if runs[j].0 <= v {
            card += 1;
        }
    }
    card
}

/// `array \ runs` into `out` (cleared first).
pub(crate) fn array_subtract_runs(a: &[u16], runs: &[(u16, u16)], out: &mut Vec<u16>) {
    out.clear();
    let mut j = 0usize;
    for &v in a {
        while j < runs.len() && runs[j].1 < v {
            j += 1;
        }
        if j == runs.len() || runs[j].0 > v {
            out.push(v);
        }
    }
}

/// Adapts a sorted array to a normalized run stream (maximal runs, not
/// unit runs, so downstream interval merges stay tight).
pub(crate) fn lows_to_runs(lows: &[u16], out: &mut Vec<(u16, u16)>) {
    out.clear();
    for &v in lows {
        match out.last_mut() {
            Some(last) if last.1 as u32 + 1 == v as u32 => last.1 = v,
            _ => out.push((v, v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set_of(runs: &[(u16, u16)]) -> BTreeSet<u16> {
        runs.iter().flat_map(|&(s, e)| s..=e).collect()
    }

    #[test]
    fn insert_remove_maintains_normal_form() {
        let mut rc = RunContainer::default();
        let mut model = BTreeSet::new();
        // Deterministic pseudo-random walk over a small domain to force
        // lots of merges and splits.
        let mut x = 12345u32;
        for _ in 0..4000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let v = (x >> 16) as u16 % 512;
            if x & 1 == 0 {
                assert_eq!(rc.insert(v), model.insert(v));
            } else {
                assert_eq!(rc.remove(v), model.remove(&v));
            }
            assert_eq!(rc.cardinality() as usize, model.len());
        }
        assert_eq!(set_of(rc.runs()), model);
        // Normal form: sorted, disjoint, non-adjacent.
        for w in rc.runs().windows(2) {
            assert!((w[0].1 as u32) + 1 < w[1].0 as u32);
        }
        for &(s, e) in rc.runs() {
            assert!(s <= e);
        }
    }

    #[test]
    fn full_domain_run_does_not_overflow() {
        let rc = RunContainer::from_runs(vec![(0, u16::MAX)]);
        assert_eq!(rc.cardinality(), 65536);
        assert!(rc.contains(0) && rc.contains(u16::MAX));
        assert_eq!(rc.rank(u16::MAX), 65535);
        assert_eq!(rc.select(65535), Some(u16::MAX));
        assert_eq!(rc.select(65536), None);
        let mut one = RunContainer::from_runs(vec![(0, u16::MAX)]);
        assert!(!one.insert(u16::MAX));
        assert!(one.remove(u16::MAX));
        assert_eq!(one.max(), Some(u16::MAX - 1));
    }

    #[test]
    fn stream_ops_match_set_algebra() {
        type Runs = Vec<(u16, u16)>;
        let cases: Vec<(Runs, Runs)> = vec![
            (vec![(0, 10), (20, 30)], vec![(5, 25)]),
            (vec![(0, 65535)], vec![(100, 200), (300, 400)]),
            (vec![], vec![(1, 2)]),
            (vec![(5, 5), (7, 7), (9, 9)], vec![(0, 20)]),
            (vec![(0, 100)], vec![(101, 200)]),
            (vec![(10, 20), (40, 50), (60, 70)], vec![(15, 45), (65, 80)]),
        ];
        for (a, b) in cases {
            let (sa, sb) = (set_of(&a), set_of(&b));
            let mut out = Vec::new();
            merge_runs(&a, &b, &mut out);
            assert_eq!(set_of(&out), &sa | &sb, "union {a:?} {b:?}");
            intersect_runs(&a, &b, &mut out);
            assert_eq!(set_of(&out), &sa & &sb, "intersect {a:?} {b:?}");
            assert_eq!(intersect_runs_card(&a, &b), (&sa & &sb).len() as u32);
            subtract_runs(&a, &b, &mut out);
            assert_eq!(set_of(&out), &sa - &sb, "subtract {a:?} {b:?}");
            subtract_runs(&b, &a, &mut out);
            assert_eq!(set_of(&out), &sb - &sa, "subtract {b:?} {a:?}");
        }
    }

    #[test]
    fn array_run_mixed_ops_match_set_algebra() {
        let a: Vec<u16> = vec![0, 4, 5, 6, 19, 20, 21, 40, 65_000];
        let runs: Vec<(u16, u16)> = vec![(5, 9), (20, 30), (64_000, 65_535)];
        let sa: BTreeSet<u16> = a.iter().copied().collect();
        let sr = set_of(&runs);
        let mut out = Vec::new();
        array_intersect_runs(&a, &runs, &mut out);
        assert_eq!(out.iter().copied().collect::<BTreeSet<u16>>(), &sa & &sr);
        assert_eq!(array_intersect_runs_card(&a, &runs), (&sa & &sr).len() as u32);
        array_subtract_runs(&a, &runs, &mut out);
        assert_eq!(out.iter().copied().collect::<BTreeSet<u16>>(), &sa - &sr);
        let mut ar = Vec::new();
        lows_to_runs(&a, &mut ar);
        assert_eq!(set_of(&ar), sa);
        assert_eq!(ar.len(), 5); // maximal runs: 0, 4-6, 19-21, 40, 65000
    }

    #[test]
    fn rank_select_roundtrip() {
        let rc = RunContainer::from_runs(vec![(3, 5), (10, 10), (100, 103)]);
        let values: Vec<u16> = vec![3, 4, 5, 10, 100, 101, 102, 103];
        for (n, &v) in values.iter().enumerate() {
            assert_eq!(rc.select(n as u32), Some(v));
            assert_eq!(rc.rank(v), n as u32);
        }
        assert_eq!(rc.rank(0), 0);
        assert_eq!(rc.rank(7), 3);
        assert_eq!(rc.rank(u16::MAX), 8);
    }
}
