//! The three Roaring container kinds for one 16-bit chunk, and the
//! canonical-representation rule that picks between them.
//!
//! Every public container op ends by *canonicalizing*: the chunk is
//! stored in whichever representation is cheapest in bytes for its
//! current contents —
//!
//! | representation | bytes | wins when |
//! |---|---|---|
//! | sorted array | `2 × cardinality` | sparse scattered values |
//! | run list | `4 × runs` | clustered values (few intervals) |
//! | bitset | `8192` fixed | dense scattered values |
//!
//! with ties broken Array ≻ Run ≻ Bitset. Because the choice is a pure
//! function of the *set* (never of the op path that produced it), equal
//! sets always have identical representations: derived `PartialEq` is
//! exact set equality, and engine results stay bit-identical no matter
//! how a cell was assembled (plan invariance).
//!
//! The binary ops dispatch on the representation pair and call the
//! matching kernel from [`crate::kernels`] / [`crate::run`]; see the
//! crate docs for the full kernel table.

use crate::kernels;
use crate::run::{self, RunContainer};

/// Maximum cardinality a (canonical) array container can hold: 4096
/// values × 2 bytes = 8 KiB = the fixed bitset size.
pub const ARRAY_TO_BITSET_THRESHOLD: usize = 4096;

const BITSET_WORDS: usize = kernels::BITSET_WORDS;

/// Fixed container cost of the bitset representation, in bytes.
const BITSET_BYTES: u64 = (BITSET_WORDS * 8) as u64;

/// The representation the canonical rule picks for given stats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Repr {
    Array,
    Run,
    Bitset,
}

/// Cheapest representation for a chunk with `card` values in `runs`
/// runs; ties break Array ≻ Run ≻ Bitset.
fn best_repr(card: u32, runs: u32) -> Repr {
    let array_bytes = 2 * card as u64;
    let run_bytes = 4 * runs as u64;
    if array_bytes <= run_bytes && array_bytes <= BITSET_BYTES {
        Repr::Array
    } else if run_bytes <= BITSET_BYTES {
        Repr::Run
    } else {
        Repr::Bitset
    }
}

/// One chunk's worth (low 16 bits) of values.
#[derive(Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted array of low values; canonical while sparse and scattered.
    Array(Vec<u16>),
    /// Sorted inclusive intervals; canonical while clustered.
    Run(RunContainer),
    /// 65536-bit set with cached stats; canonical while dense and
    /// scattered.
    Bitset(Box<BitsetContainer>),
}

/// Fixed 8 KiB bit set plus cached cardinality and run count.
#[derive(Clone, PartialEq, Eq)]
pub struct BitsetContainer {
    words: [u64; BITSET_WORDS],
    cardinality: u32,
    runs: u32,
}

impl Default for Container {
    fn default() -> Self {
        Container::Array(Vec::new())
    }
}

impl BitsetContainer {
    fn new() -> Self {
        BitsetContainer { words: [0; BITSET_WORDS], cardinality: 0, runs: 0 }
    }

    /// The raw 64-bit words (for container-at-a-time decoding).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Recomputes the cached stats from the words, word-at-a-time.
    fn refresh_stats(&mut self) {
        let (card, runs) = kernels::words_stats(&self.words);
        self.cardinality = card;
        self.runs = runs;
    }

    /// Sets a bit, keeping both cached stats current in O(1) via the
    /// neighbor bits: joining two runs loses one, extending a run is
    /// neutral, an isolated bit adds one.
    #[inline]
    fn set(&mut self, low: u16) -> bool {
        let (w, b) = (low as usize >> 6, low & 63);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.cardinality += 1;
        let left = low > 0 && self.get(low - 1);
        let right = low < u16::MAX && self.get(low + 1);
        self.runs = self.runs + 1 - left as u32 - right as u32;
        true
    }

    /// Clears a bit, with the mirrored O(1) run-count update (splitting
    /// a run adds one).
    #[inline]
    fn unset(&mut self, low: u16) -> bool {
        let (w, b) = (low as usize >> 6, low & 63);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.cardinality -= 1;
        let left = low > 0 && self.get(low - 1);
        let right = low < u16::MAX && self.get(low + 1);
        self.runs = self.runs - 1 + left as u32 + right as u32;
        true
    }

    #[inline]
    fn get(&self, low: u16) -> bool {
        self.words[low as usize >> 6] & (1u64 << (low & 63)) != 0
    }

    fn to_array(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.cardinality as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push((wi * 64 + b as usize) as u16);
                w &= w - 1;
            }
        }
        out
    }
}

/// Canonical container from a bitset with current cached stats.
fn from_bitset(bs: Box<BitsetContainer>) -> Container {
    match best_repr(bs.cardinality, bs.runs) {
        Repr::Bitset => Container::Bitset(bs),
        Repr::Array => Container::Array(bs.to_array()),
        Repr::Run => {
            let mut runs = Vec::with_capacity(bs.runs as usize);
            kernels::words_to_runs(&bs.words, &mut runs);
            Container::Run(RunContainer::from_runs(runs))
        }
    }
}

/// Canonical container from sorted deduplicated low values (any length).
fn from_lows(lows: Vec<u16>) -> Container {
    let card = lows.len() as u32;
    let runs = kernels::array_runs(&lows);
    match best_repr(card, runs) {
        Repr::Array => Container::Array(lows),
        Repr::Run => Container::Run(RunContainer::from_sorted_lows(&lows)),
        Repr::Bitset => {
            let mut bs = Box::new(BitsetContainer::new());
            kernels::scatter(&lows, &mut bs.words);
            bs.cardinality = card;
            bs.runs = runs;
            Container::Bitset(bs)
        }
    }
}

/// Canonical container from a normalized run container.
fn from_run(rc: RunContainer) -> Container {
    match best_repr(rc.cardinality(), rc.n_runs()) {
        Repr::Run => Container::Run(rc),
        Repr::Array => {
            let mut lows = Vec::with_capacity(rc.cardinality() as usize);
            rc.to_lows(&mut lows);
            Container::Array(lows)
        }
        Repr::Bitset => {
            let mut bs = Box::new(BitsetContainer::new());
            for &(s, e) in rc.runs() {
                kernels::set_range(&mut bs.words, s, e);
            }
            bs.cardinality = rc.cardinality();
            bs.runs = rc.n_runs();
            Container::Bitset(bs)
        }
    }
}

impl Container {
    pub fn singleton(low: u16) -> Self {
        Container::Array(vec![low])
    }

    /// Builds the canonical container from sorted, deduplicated low
    /// values.
    pub fn from_sorted_lows(lows: &[u16]) -> Self {
        let card = lows.len() as u32;
        let runs = kernels::array_runs(lows);
        match best_repr(card, runs) {
            Repr::Array => Container::Array(lows.to_vec()),
            Repr::Run => Container::Run(RunContainer::from_sorted_lows(lows)),
            Repr::Bitset => {
                let mut bs = Box::new(BitsetContainer::new());
                kernels::scatter(lows, &mut bs.words);
                bs.cardinality = card;
                bs.runs = runs;
                Container::Bitset(bs)
            }
        }
    }

    /// Canonical container holding the full inclusive range `[s, e]` —
    /// `O(1)`, the building block of [`crate::Bitmap::full`].
    pub fn from_range(s: u16, e: u16) -> Self {
        debug_assert!(s <= e);
        from_run(RunContainer::from_runs(vec![(s, e)]))
    }

    /// Number of runs (maximal intervals of consecutive values).
    fn n_runs(&self) -> u32 {
        match self {
            Container::Array(values) => kernels::array_runs(values),
            Container::Run(rc) => rc.n_runs(),
            Container::Bitset(bs) => bs.runs,
        }
    }

    /// Re-establishes the canonical (cheapest) representation. Every
    /// public mutating op ends here.
    fn canonicalize(&mut self) {
        let target = best_repr(self.cardinality(), self.n_runs());
        let matches_target = matches!(
            (&*self, target),
            (Container::Array(_), Repr::Array)
                | (Container::Run(_), Repr::Run)
                | (Container::Bitset(_), Repr::Bitset)
        );
        if matches_target {
            return;
        }
        *self = match std::mem::take(self) {
            Container::Array(v) => from_lows(v),
            Container::Run(rc) => from_run(rc),
            Container::Bitset(bs) => from_bitset(bs),
        };
    }

    /// True when this container holds the cheapest of the three
    /// representations for its contents *and* all cached stats are
    /// consistent — the invariant every public op restores. Exposed for
    /// the property-test suite.
    pub fn is_canonical(&self) -> bool {
        match self {
            Container::Array(values) => {
                if !values.windows(2).all(|w| w[0] < w[1]) {
                    return false;
                }
            }
            Container::Run(rc) => {
                let runs = rc.runs();
                let normal = runs.iter().all(|&(s, e)| s <= e)
                    && runs.windows(2).all(|w| (w[0].1 as u32) + 1 < w[1].0 as u32);
                let card: u32 = runs.iter().map(|&(s, e)| e as u32 - s as u32 + 1).sum();
                if !normal || card != rc.cardinality() {
                    return false;
                }
            }
            Container::Bitset(bs) => {
                if kernels::words_stats(&bs.words) != (bs.cardinality, bs.runs) {
                    return false;
                }
            }
        }
        let target = best_repr(self.cardinality(), self.n_runs());
        matches!(
            (self, target),
            (Container::Array(_), Repr::Array)
                | (Container::Run(_), Repr::Run)
                | (Container::Bitset(_), Repr::Bitset)
        )
    }

    pub fn insert(&mut self, low: u16) -> bool {
        let added = match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    values.insert(pos, low);
                    true
                }
            },
            Container::Run(rc) => rc.insert(low),
            Container::Bitset(bs) => bs.set(low),
        };
        if added {
            self.canonicalize();
        }
        added
    }

    pub fn remove(&mut self, low: u16) -> bool {
        let removed = match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(pos) => {
                    values.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Run(rc) => rc.remove(low),
            Container::Bitset(bs) => bs.unset(low),
        };
        if removed {
            self.canonicalize();
        }
        removed
    }

    pub fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(values) => values.binary_search(&low).is_ok(),
            Container::Run(rc) => rc.contains(low),
            Container::Bitset(bs) => bs.get(low),
        }
    }

    pub fn cardinality(&self) -> u32 {
        match self {
            Container::Array(values) => values.len() as u32,
            Container::Run(rc) => rc.cardinality(),
            Container::Bitset(bs) => bs.cardinality,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    pub fn min(&self) -> Option<u16> {
        match self {
            Container::Array(values) => values.first().copied(),
            Container::Run(rc) => rc.min(),
            Container::Bitset(bs) => bs
                .words
                .iter()
                .enumerate()
                .find(|(_, &w)| w != 0)
                .map(|(i, w)| (i * 64 + w.trailing_zeros() as usize) as u16),
        }
    }

    pub fn max(&self) -> Option<u16> {
        match self {
            Container::Array(values) => values.last().copied(),
            Container::Run(rc) => rc.max(),
            Container::Bitset(bs) => bs
                .words
                .iter()
                .enumerate()
                .rev()
                .find(|(_, &w)| w != 0)
                .map(|(i, w)| (i * 64 + 63 - w.leading_zeros() as usize) as u16),
        }
    }

    /// K-way union of several containers in one pass — the fan-in path of
    /// cube-cell consolidation, where a child cell absorbs many parent
    /// cells at once. Equivalent to folding [`Container::union_with`]
    /// pairwise (canonicalization makes the representations identical
    /// too), but without the per-step reallocation and re-merge.
    pub fn union_many(parts: &[&Container]) -> Container {
        debug_assert!(!parts.is_empty());
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let all_arrays = parts.iter().all(|c| matches!(c, Container::Array(_)));
        let total: usize = parts.iter().map(|c| c.cardinality() as usize).sum();
        if all_arrays && total <= ARRAY_TO_BITSET_THRESHOLD {
            // All-array, provably small: concatenate + sort + dedup.
            let mut lows: Vec<u16> = Vec::with_capacity(total);
            for c in parts {
                if let Container::Array(v) = c {
                    lows.extend_from_slice(v);
                }
            }
            lows.sort_unstable();
            lows.dedup();
            return from_lows(lows);
        }
        // Accumulate through one bitset: scatter arrays, range-fill runs,
        // word-OR bitsets; one stats pass at the end.
        let mut bs = Box::new(BitsetContainer::new());
        for c in parts {
            match c {
                Container::Bitset(b) => {
                    for (w, &word) in b.words.iter().enumerate() {
                        bs.words[w] |= word;
                    }
                }
                Container::Array(v) => kernels::scatter(v, &mut bs.words),
                Container::Run(r) => {
                    for &(s, e) in r.runs() {
                        kernels::set_range(&mut bs.words, s, e);
                    }
                }
            }
        }
        bs.refresh_stats();
        from_bitset(bs)
    }

    pub fn union_with(&mut self, other: &Container) {
        *self = match (std::mem::take(self), other) {
            (Container::Bitset(mut a), Container::Bitset(b)) => {
                let (card, runs) = kernels::union_words(&mut a.words, &b.words);
                a.cardinality = card;
                a.runs = runs;
                from_bitset(a)
            }
            (Container::Bitset(mut a), Container::Array(b)) => {
                for &low in b {
                    a.set(low);
                }
                from_bitset(a)
            }
            (Container::Bitset(mut a), Container::Run(r)) => {
                for &(s, e) in r.runs() {
                    kernels::set_range(&mut a.words, s, e);
                }
                a.refresh_stats();
                from_bitset(a)
            }
            (Container::Array(a), Container::Bitset(b)) => {
                let mut bs = b.clone();
                for &low in &a {
                    bs.set(low);
                }
                from_bitset(bs)
            }
            (Container::Run(rc), Container::Bitset(b)) => {
                let mut bs = b.clone();
                for &(s, e) in rc.runs() {
                    kernels::set_range(&mut bs.words, s, e);
                }
                bs.refresh_stats();
                from_bitset(bs)
            }
            (Container::Array(a), Container::Array(b)) => {
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
                from_lows(merged)
            }
            (Container::Array(a), Container::Run(r)) => {
                let mut ar = Vec::new();
                run::lows_to_runs(&a, &mut ar);
                let mut out = Vec::new();
                run::merge_runs(&ar, r.runs(), &mut out);
                from_run(RunContainer::from_runs(out))
            }
            (Container::Run(rc), Container::Array(b)) => {
                let mut br = Vec::new();
                run::lows_to_runs(b, &mut br);
                let mut out = Vec::new();
                run::merge_runs(rc.runs(), &br, &mut out);
                from_run(RunContainer::from_runs(out))
            }
            (Container::Run(a), Container::Run(b)) => {
                let mut out = Vec::new();
                run::merge_runs(a.runs(), b.runs(), &mut out);
                from_run(RunContainer::from_runs(out))
            }
        };
    }

    pub fn intersect(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Bitset(a), Container::Bitset(b)) => {
                let mut out = a.clone();
                let (card, runs) = kernels::intersect_words(&mut out.words, &b.words);
                out.cardinality = card;
                out.runs = runs;
                from_bitset(out)
            }
            (Container::Array(a), Container::Bitset(b))
            | (Container::Bitset(b), Container::Array(a)) => {
                from_lows(a.iter().copied().filter(|&v| b.get(v)).collect())
            }
            (Container::Run(r), Container::Bitset(b))
            | (Container::Bitset(b), Container::Run(r)) => {
                let mut out = Box::new(BitsetContainer::new());
                for &(s, e) in r.runs() {
                    kernels::copy_range(&b.words, &mut out.words, s, e);
                }
                out.refresh_stats();
                from_bitset(out)
            }
            (Container::Array(a), Container::Array(b)) => {
                let mut out = Vec::new();
                kernels::intersect_arrays(a, b, &mut out);
                from_lows(out)
            }
            (Container::Array(a), Container::Run(r))
            | (Container::Run(r), Container::Array(a)) => {
                let mut out = Vec::new();
                run::array_intersect_runs(a, r.runs(), &mut out);
                from_lows(out)
            }
            (Container::Run(a), Container::Run(b)) => {
                let mut out = Vec::new();
                run::intersect_runs(a.runs(), b.runs(), &mut out);
                from_run(RunContainer::from_runs(out))
            }
        }
    }

    /// In-place intersection; recycles this container's allocation on
    /// the array and bitset fast paths.
    pub fn intersect_with(&mut self, other: &Container) {
        match (&mut *self, other) {
            (Container::Bitset(a), Container::Bitset(b)) => {
                let (card, runs) = kernels::intersect_words(&mut a.words, &b.words);
                a.cardinality = card;
                a.runs = runs;
            }
            (Container::Array(a), Container::Bitset(b)) => a.retain(|&v| b.get(v)),
            (Container::Array(a), Container::Array(b)) => {
                let mut w = 0usize;
                let mut j = 0usize;
                for i in 0..a.len() {
                    let v = a[i];
                    j = kernels::gallop(b, j, v);
                    if j == b.len() {
                        break;
                    }
                    if b[j] == v {
                        a[w] = v;
                        w += 1;
                        j += 1;
                    }
                }
                a.truncate(w);
            }
            (Container::Array(a), Container::Run(r)) => {
                let runs = r.runs();
                let mut w = 0usize;
                let mut j = 0usize;
                for i in 0..a.len() {
                    let v = a[i];
                    while j < runs.len() && runs[j].1 < v {
                        j += 1;
                    }
                    if j == runs.len() {
                        break;
                    }
                    if runs[j].0 <= v {
                        a[w] = v;
                        w += 1;
                    }
                }
                a.truncate(w);
            }
            _ => {
                *self = self.intersect(other);
                return;
            }
        }
        self.canonicalize();
    }

    pub fn intersect_len(&self, other: &Container) -> u32 {
        match (self, other) {
            (Container::Bitset(a), Container::Bitset(b)) => {
                kernels::intersect_words_card(&a.words, &b.words)
            }
            (Container::Array(a), Container::Bitset(b))
            | (Container::Bitset(b), Container::Array(a)) => {
                a.iter().filter(|&&v| b.get(v)).count() as u32
            }
            (Container::Run(r), Container::Bitset(b))
            | (Container::Bitset(b), Container::Run(r)) => {
                r.runs().iter().map(|&(s, e)| kernels::range_card(&b.words, s, e)).sum()
            }
            (Container::Array(a), Container::Array(b)) => kernels::intersect_arrays_card(a, b),
            (Container::Array(a), Container::Run(r))
            | (Container::Run(r), Container::Array(a)) => {
                run::array_intersect_runs_card(a, r.runs())
            }
            (Container::Run(a), Container::Run(b)) => {
                run::intersect_runs_card(a.runs(), b.runs())
            }
        }
    }

    pub fn and_not(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let mut out = Vec::new();
                kernels::difference_arrays(a, b, &mut out);
                from_lows(out)
            }
            (Container::Array(a), Container::Bitset(b)) => {
                from_lows(a.iter().copied().filter(|&v| !b.get(v)).collect())
            }
            (Container::Array(a), Container::Run(r)) => {
                let mut out = Vec::new();
                run::array_subtract_runs(a, r.runs(), &mut out);
                from_lows(out)
            }
            (Container::Run(a), Container::Run(b)) => {
                let mut out = Vec::new();
                run::subtract_runs(a.runs(), b.runs(), &mut out);
                from_run(RunContainer::from_runs(out))
            }
            (Container::Run(a), Container::Array(b)) => {
                let mut br = Vec::new();
                run::lows_to_runs(b, &mut br);
                let mut out = Vec::new();
                run::subtract_runs(a.runs(), &br, &mut out);
                from_run(RunContainer::from_runs(out))
            }
            (Container::Run(a), Container::Bitset(b)) => {
                let mut out = Box::new(BitsetContainer::new());
                for &(s, e) in a.runs() {
                    kernels::set_range(&mut out.words, s, e);
                }
                let (card, runs) = kernels::difference_words(&mut out.words, &b.words);
                out.cardinality = card;
                out.runs = runs;
                from_bitset(out)
            }
            (Container::Bitset(a), Container::Bitset(b)) => {
                let mut out = a.clone();
                let (card, runs) = kernels::difference_words(&mut out.words, &b.words);
                out.cardinality = card;
                out.runs = runs;
                from_bitset(out)
            }
            (Container::Bitset(a), Container::Array(b)) => {
                let mut out = a.clone();
                for &low in b {
                    out.unset(low);
                }
                from_bitset(out)
            }
            (Container::Bitset(a), Container::Run(r)) => {
                let mut mask = Box::new([0u64; BITSET_WORDS]);
                for &(s, e) in r.runs() {
                    kernels::set_range(&mut mask, s, e);
                }
                let mut out = a.clone();
                let (card, runs) = kernels::difference_words(&mut out.words, &mask);
                out.cardinality = card;
                out.runs = runs;
                from_bitset(out)
            }
        }
    }

    /// Number of values strictly smaller than `low`.
    pub fn rank(&self, low: u16) -> u32 {
        match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(pos) | Err(pos) => pos as u32,
            },
            Container::Run(rc) => rc.rank(low),
            Container::Bitset(bs) => {
                let (w, b) = (low as usize / 64, low as usize % 64);
                let mut total: u32 = bs.words[..w].iter().map(|x| x.count_ones()).sum();
                if b > 0 {
                    total += (bs.words[w] & ((1u64 << b) - 1)).count_ones();
                }
                total
            }
        }
    }

    /// The `n`-th smallest value within this container.
    pub fn select(&self, n: u16) -> Option<u16> {
        match self {
            Container::Array(values) => values.get(n as usize).copied(),
            Container::Run(rc) => rc.select(n as u32),
            Container::Bitset(bs) => {
                let mut remaining = n as u32;
                for (wi, &word) in bs.words.iter().enumerate() {
                    let ones = word.count_ones();
                    if remaining < ones {
                        let mut w = word;
                        for _ in 0..remaining {
                            w &= w - 1;
                        }
                        return Some((wi * 64 + w.trailing_zeros() as usize) as u16);
                    }
                    remaining -= ones;
                }
                None
            }
        }
    }

    pub fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(values) => values.len() * 2,
            Container::Run(rc) => rc.runs().len() * 4,
            Container::Bitset(_) => BITSET_WORDS * 8 + 8,
        }
    }

    pub fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(values) => ContainerIter::Array(values.iter()),
            Container::Run(rc) => ContainerIter::Run {
                runs: rc.runs(),
                idx: 0,
                next: rc.runs().first().map_or(0, |r| r.0 as u32),
            },
            Container::Bitset(bs) => ContainerIter::Bitset { bs, word: 0, bits: bs.words[0] },
        }
    }
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Container::Array(v) => write!(f, "Array(card={})", v.len()),
            Container::Run(rc) => {
                write!(f, "Run(card={}, runs={})", rc.cardinality(), rc.n_runs())
            }
            Container::Bitset(bs) => {
                write!(f, "Bitset(card={}, runs={})", bs.cardinality, bs.runs)
            }
        }
    }
}

/// Ascending iterator over one container's low values.
pub enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Run { runs: &'a [(u16, u16)], idx: usize, next: u32 },
    Bitset { bs: &'a BitsetContainer, word: usize, bits: u64 },
}

impl<'a> Iterator for ContainerIter<'a> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(iter) => iter.next().copied(),
            ContainerIter::Run { runs, idx, next } => {
                if *idx >= runs.len() {
                    return None;
                }
                let v = *next as u16;
                if *next >= runs[*idx].1 as u32 {
                    *idx += 1;
                    if *idx < runs.len() {
                        *next = runs[*idx].0 as u32;
                    }
                } else {
                    *next += 1;
                }
                Some(v)
            }
            ContainerIter::Bitset { bs, word, bits } => loop {
                if *bits != 0 {
                    let b = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some((*word * 64 + b as usize) as u16);
                }
                if *word + 1 >= BITSET_WORDS {
                    return None;
                }
                *word += 1;
                *bits = bs.words[*word];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scattered values (stride 2) — run-hostile, so representation is
    /// driven purely by cardinality.
    fn scattered(n: usize) -> Vec<u16> {
        (0..n).map(|i| (i * 2) as u16).collect()
    }

    #[test]
    fn canonical_rule_picks_cheapest() {
        // Sparse scattered → array.
        let c = Container::from_sorted_lows(&scattered(100));
        assert!(matches!(c, Container::Array(_)) && c.is_canonical());
        // Dense scattered → bitset (cardinality over 4096, runs over 2048).
        let c = Container::from_sorted_lows(&scattered(5000));
        assert!(matches!(c, Container::Bitset(_)) && c.is_canonical());
        // Clustered → run, regardless of cardinality.
        let c = Container::from_sorted_lows(&(0..6000).collect::<Vec<u16>>());
        assert!(matches!(c, Container::Run(_)) && c.is_canonical());
        let c = Container::from_sorted_lows(&(10..16).collect::<Vec<u16>>());
        assert!(matches!(c, Container::Run(_)) && c.is_canonical());
        // Tiny sets stay arrays (tie-break favors Array over Run).
        let c = Container::from_sorted_lows(&[7, 8]);
        assert!(matches!(c, Container::Array(_)) && c.is_canonical());
    }

    #[test]
    fn threshold_conversion_both_ways() {
        let mut c = Container::default();
        for v in scattered(ARRAY_TO_BITSET_THRESHOLD + 1) {
            c.insert(v);
            assert!(c.is_canonical());
        }
        assert!(matches!(c, Container::Bitset(_)));
        c.remove(0);
        assert!(matches!(c, Container::Array(_)) && c.is_canonical());
        assert_eq!(c.cardinality(), ARRAY_TO_BITSET_THRESHOLD as u32);
    }

    #[test]
    fn contiguous_inserts_become_runs() {
        let mut c = Container::default();
        for v in 0..5000u16 {
            c.insert(v);
        }
        assert!(matches!(c, Container::Run(_)) && c.is_canonical());
        assert_eq!(c.cardinality(), 5000);
        // Punching scattered holes re-fragments it back toward a bitset.
        for v in (0..5000u16).step_by(2) {
            c.remove(v);
            assert!(c.is_canonical());
        }
        assert_eq!(c.cardinality(), 2500);
        assert!(matches!(c, Container::Array(_)));
    }

    #[test]
    fn bitset_rank_select() {
        let lows = scattered(6000);
        let c = Container::from_sorted_lows(&lows);
        assert!(matches!(c, Container::Bitset(_)));
        assert_eq!(c.rank(100), 50);
        assert_eq!(c.select(100), Some(200));
        assert_eq!(c.select(5999), Some(11_998));
        assert_eq!(c.select(6000), None);
        assert_eq!(c.min(), Some(0));
        assert_eq!(c.max(), Some(11_998));
    }

    #[test]
    fn run_rank_select_iter() {
        let c = Container::from_sorted_lows(&(100..7000).collect::<Vec<u16>>());
        assert!(matches!(c, Container::Run(_)));
        assert_eq!(c.rank(100), 0);
        assert_eq!(c.rank(150), 50);
        assert_eq!(c.select(0), Some(100));
        assert_eq!(c.select(6899), Some(6999));
        assert_eq!(c.select(6900), None);
        let decoded: Vec<u16> = c.iter().collect();
        assert_eq!(decoded, (100..7000).collect::<Vec<u16>>());
    }

    #[test]
    fn mixed_representation_union() {
        let sparse = Container::from_sorted_lows(&[1, 3, 5]);
        let dense_lows: Vec<u16> = (1000..6000).collect();
        let dense = Container::from_sorted_lows(&dense_lows);
        assert!(matches!(dense, Container::Run(_)));
        let mut a = sparse.clone();
        a.union_with(&dense);
        assert_eq!(a.cardinality(), 3 + 5000);
        let mut b = dense;
        b.union_with(&sparse);
        assert_eq!(b.cardinality(), 3 + 5000);
        assert_eq!(a, b); // canonical: same set ⇒ same representation
        assert_eq!(a.intersect_len(&b), 5003);

        let scat = Container::from_sorted_lows(&scattered(5000));
        let mut c = scat.clone();
        c.union_with(&sparse);
        assert_eq!(c.cardinality(), 5003); // all of {1, 3, 5} are odd, scattered is even
        assert!(c.is_canonical());
    }

    #[test]
    fn and_not_all_representations() {
        let a = Container::from_sorted_lows(&(0..5000).collect::<Vec<u16>>());
        let b = Container::from_sorted_lows(&(2500..7500).collect::<Vec<u16>>());
        assert_eq!(a.and_not(&b).cardinality(), 2500);
        assert_eq!(b.and_not(&a).cardinality(), 2500);
        let s = Container::from_sorted_lows(&[0, 1, 2]);
        assert_eq!(a.and_not(&s).cardinality(), 4997);
        assert_eq!(s.and_not(&a).cardinality(), 0);
        let bs = Container::from_sorted_lows(&scattered(5000));
        assert_eq!(a.and_not(&bs).cardinality(), 2500);
        assert_eq!(bs.and_not(&a).cardinality(), 2500);
        assert!(bs.and_not(&a).is_canonical());
    }

    #[test]
    fn intersect_with_matches_intersect() {
        let shapes: Vec<Container> = vec![
            Container::from_sorted_lows(&[5, 9, 1000, 40_000]),
            Container::from_sorted_lows(&(0..5000).collect::<Vec<u16>>()),
            Container::from_sorted_lows(&scattered(5000)),
            Container::from_sorted_lows(&scattered(300)),
        ];
        for x in &shapes {
            for y in &shapes {
                let expect = x.intersect(y);
                let mut got = x.clone();
                got.intersect_with(y);
                assert!(got.is_canonical());
                assert!(got == expect, "intersect_with diverged");
            }
        }
    }
}
