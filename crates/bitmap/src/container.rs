//! The two Roaring container kinds for one 16-bit chunk.
//!
//! A chunk switches from the sorted-array representation to the 8 KiB bitset
//! once it holds more than [`ARRAY_TO_BITSET_THRESHOLD`] values, and back when
//! it shrinks below it — the break-even point where 2 bytes/value equals the
//! fixed bitset cost (65536 bits).

/// Canonical Roaring threshold: 4096 values × 2 bytes = 8 KiB = bitset size.
pub const ARRAY_TO_BITSET_THRESHOLD: usize = 4096;

const BITSET_WORDS: usize = 1024;

/// One chunk's worth (low 16 bits) of values.
#[derive(Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted array of low values; used while sparse.
    Array(Vec<u16>),
    /// 65536-bit set with an explicit cardinality; used while dense.
    Bitset(Box<BitsetContainer>),
}

/// Fixed 8 KiB bit set plus cached cardinality.
#[derive(Clone, PartialEq, Eq)]
pub struct BitsetContainer {
    words: [u64; BITSET_WORDS],
    cardinality: u32,
}

impl Default for Container {
    fn default() -> Self {
        Container::Array(Vec::new())
    }
}

impl BitsetContainer {
    fn new() -> Self {
        BitsetContainer { words: [0; BITSET_WORDS], cardinality: 0 }
    }

    /// The raw 64-bit words (for container-at-a-time decoding).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    fn set(&mut self, low: u16) -> bool {
        let (w, b) = (low as usize / 64, low as usize % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        if !was {
            self.cardinality += 1;
        }
        !was
    }

    #[inline]
    fn unset(&mut self, low: u16) -> bool {
        let (w, b) = (low as usize / 64, low as usize % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        if was {
            self.cardinality -= 1;
        }
        was
    }

    #[inline]
    fn get(&self, low: u16) -> bool {
        let (w, b) = (low as usize / 64, low as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    fn to_array(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.cardinality as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push((wi * 64 + b as usize) as u16);
                w &= w - 1;
            }
        }
        out
    }
}

impl Container {
    pub fn singleton(low: u16) -> Self {
        Container::Array(vec![low])
    }

    /// Builds from sorted, deduplicated low values.
    pub fn from_sorted_lows(lows: &[u16]) -> Self {
        if lows.len() > ARRAY_TO_BITSET_THRESHOLD {
            let mut bs = BitsetContainer::new();
            for &low in lows {
                bs.set(low);
            }
            Container::Bitset(Box::new(bs))
        } else {
            Container::Array(lows.to_vec())
        }
    }

    pub fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    values.insert(pos, low);
                    if values.len() > ARRAY_TO_BITSET_THRESHOLD {
                        let mut bs = BitsetContainer::new();
                        for &v in values.iter() {
                            bs.set(v);
                        }
                        *self = Container::Bitset(Box::new(bs));
                    }
                    true
                }
            },
            Container::Bitset(bs) => bs.set(low),
        }
    }

    pub fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(pos) => {
                    values.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitset(bs) => {
                let removed = bs.unset(low);
                if removed && (bs.cardinality as usize) <= ARRAY_TO_BITSET_THRESHOLD {
                    *self = Container::Array(bs.to_array());
                }
                removed
            }
        }
    }

    pub fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(values) => values.binary_search(&low).is_ok(),
            Container::Bitset(bs) => bs.get(low),
        }
    }

    pub fn cardinality(&self) -> u32 {
        match self {
            Container::Array(values) => values.len() as u32,
            Container::Bitset(bs) => bs.cardinality,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    pub fn min(&self) -> Option<u16> {
        match self {
            Container::Array(values) => values.first().copied(),
            Container::Bitset(bs) => bs.to_array().first().copied(),
        }
    }

    pub fn max(&self) -> Option<u16> {
        match self {
            Container::Array(values) => values.last().copied(),
            Container::Bitset(bs) => bs.to_array().last().copied(),
        }
    }

    /// K-way union of several containers in one pass — the fan-in path of
    /// cube-cell consolidation, where a child cell absorbs many parent
    /// cells at once. Equivalent to folding [`Container::union_with`]
    /// pairwise, but without the per-step reallocation and re-merge.
    pub fn union_many(parts: &[&Container]) -> Container {
        debug_assert!(!parts.is_empty());
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let any_bitset = parts.iter().any(|c| matches!(c, Container::Bitset(_)));
        let total: usize = parts.iter().map(|c| c.cardinality() as usize).sum();
        if !any_bitset && total <= ARRAY_TO_BITSET_THRESHOLD {
            // All-array, provably small: concatenate + sort + dedup.
            let mut lows: Vec<u16> = Vec::with_capacity(total);
            for c in parts {
                if let Container::Array(v) = c {
                    lows.extend_from_slice(v);
                }
            }
            lows.sort_unstable();
            lows.dedup();
            return Container::Array(lows);
        }
        // Accumulate through one bitset.
        let mut bs = BitsetContainer::new();
        for c in parts {
            match c {
                Container::Bitset(b) => {
                    for (w, &word) in b.words.iter().enumerate() {
                        bs.words[w] |= word;
                    }
                }
                Container::Array(v) => {
                    for &low in v {
                        bs.words[low as usize / 64] |= 1u64 << (low as usize % 64);
                    }
                }
            }
        }
        bs.cardinality = bs.words.iter().map(|w| w.count_ones()).sum();
        // Mirror `union_with`'s representation choice: any bitset input
        // keeps a bitset; all-array results convert back when small.
        if !any_bitset && (bs.cardinality as usize) <= ARRAY_TO_BITSET_THRESHOLD {
            Container::Array(bs.to_array())
        } else {
            Container::Bitset(Box::new(bs))
        }
    }

    pub fn union_with(&mut self, other: &Container) {
        match (&mut *self, other) {
            (Container::Bitset(a), Container::Bitset(b)) => {
                let mut card = 0u32;
                for (wa, wb) in a.words.iter_mut().zip(b.words.iter()) {
                    *wa |= *wb;
                    card += wa.count_ones();
                }
                a.cardinality = card;
            }
            (Container::Bitset(a), Container::Array(b)) => {
                for &low in b {
                    a.set(low);
                }
            }
            (Container::Array(_), Container::Bitset(b)) => {
                let mut bs = (**b).clone();
                if let Container::Array(a) = self {
                    for &low in a.iter() {
                        bs.set(low);
                    }
                }
                *self = Container::Bitset(Box::new(bs));
            }
            (Container::Array(a), Container::Array(b)) => {
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
                if merged.len() > ARRAY_TO_BITSET_THRESHOLD {
                    let mut bs = BitsetContainer::new();
                    for &v in &merged {
                        bs.set(v);
                    }
                    *self = Container::Bitset(Box::new(bs));
                } else {
                    *a = merged;
                }
            }
        }
    }

    pub fn intersect(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Bitset(a), Container::Bitset(b)) => {
                let mut out = BitsetContainer::new();
                let mut card = 0u32;
                for (wo, (wa, wb)) in
                    out.words.iter_mut().zip(a.words.iter().zip(b.words.iter()))
                {
                    *wo = wa & wb;
                    card += wo.count_ones();
                }
                out.cardinality = card;
                if (card as usize) <= ARRAY_TO_BITSET_THRESHOLD {
                    Container::Array(out.to_array())
                } else {
                    Container::Bitset(Box::new(out))
                }
            }
            (Container::Array(a), b @ Container::Bitset(_)) => {
                Container::Array(a.iter().copied().filter(|&v| b.contains(v)).collect())
            }
            (a @ Container::Bitset(_), Container::Array(b)) => {
                Container::Array(b.iter().copied().filter(|&v| a.contains(v)).collect())
            }
            (Container::Array(a), Container::Array(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                Container::Array(out)
            }
        }
    }

    pub fn intersect_len(&self, other: &Container) -> u32 {
        match (self, other) {
            (Container::Bitset(a), Container::Bitset(b)) => {
                a.words.iter().zip(b.words.iter()).map(|(x, y)| (x & y).count_ones()).sum()
            }
            (Container::Array(a), b @ Container::Bitset(_)) => {
                a.iter().filter(|&&v| b.contains(v)).count() as u32
            }
            (a @ Container::Bitset(_), Container::Array(b)) => {
                b.iter().filter(|&&v| a.contains(v)).count() as u32
            }
            (Container::Array(_), Container::Array(_)) => self.intersect(other).cardinality(),
        }
    }

    pub fn and_not(&self, other: &Container) -> Container {
        match self {
            Container::Array(a) => {
                Container::Array(a.iter().copied().filter(|&v| !other.contains(v)).collect())
            }
            Container::Bitset(a) => {
                let mut out = BitsetContainer::new();
                match other {
                    Container::Bitset(b) => {
                        let mut card = 0u32;
                        for (wo, (wa, wb)) in
                            out.words.iter_mut().zip(a.words.iter().zip(b.words.iter()))
                        {
                            *wo = wa & !wb;
                            card += wo.count_ones();
                        }
                        out.cardinality = card;
                    }
                    Container::Array(b) => {
                        out.words = a.words;
                        out.cardinality = a.cardinality;
                        for &low in b {
                            out.unset(low);
                        }
                    }
                }
                if (out.cardinality as usize) <= ARRAY_TO_BITSET_THRESHOLD {
                    Container::Array(out.to_array())
                } else {
                    Container::Bitset(Box::new(out))
                }
            }
        }
    }

    /// Number of values strictly smaller than `low`.
    pub fn rank(&self, low: u16) -> u32 {
        match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(pos) | Err(pos) => pos as u32,
            },
            Container::Bitset(bs) => {
                let (w, b) = (low as usize / 64, low as usize % 64);
                let mut total: u32 = bs.words[..w].iter().map(|x| x.count_ones()).sum();
                if b > 0 {
                    total += (bs.words[w] & ((1u64 << b) - 1)).count_ones();
                }
                total
            }
        }
    }

    /// The `n`-th smallest value within this container.
    pub fn select(&self, n: u16) -> Option<u16> {
        match self {
            Container::Array(values) => values.get(n as usize).copied(),
            Container::Bitset(bs) => {
                let mut remaining = n as u32;
                for (wi, &word) in bs.words.iter().enumerate() {
                    let ones = word.count_ones();
                    if remaining < ones {
                        let mut w = word;
                        for _ in 0..remaining {
                            w &= w - 1;
                        }
                        return Some((wi * 64 + w.trailing_zeros() as usize) as u16);
                    }
                    remaining -= ones;
                }
                None
            }
        }
    }

    pub fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(values) => values.len() * 2,
            Container::Bitset(_) => BITSET_WORDS * 8 + 4,
        }
    }

    pub fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(values) => ContainerIter::Array(values.iter()),
            Container::Bitset(bs) => ContainerIter::Bitset { bs, word: 0, bits: bs.words[0] },
        }
    }
}

/// Ascending iterator over one container's low values.
pub enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bitset { bs: &'a BitsetContainer, word: usize, bits: u64 },
}

impl<'a> Iterator for ContainerIter<'a> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(iter) => iter.next().copied(),
            ContainerIter::Bitset { bs, word, bits } => loop {
                if *bits != 0 {
                    let b = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some((*word * 64 + b as usize) as u16);
                }
                if *word + 1 >= BITSET_WORDS {
                    return None;
                }
                *word += 1;
                *bits = bs.words[*word];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_conversion_both_ways() {
        let mut c = Container::default();
        for v in 0..=ARRAY_TO_BITSET_THRESHOLD as u16 {
            c.insert(v);
        }
        assert!(matches!(c, Container::Bitset(_)));
        c.remove(0);
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.cardinality(), ARRAY_TO_BITSET_THRESHOLD as u32);
    }

    #[test]
    fn bitset_rank_select() {
        let lows: Vec<u16> = (0..6000).map(|i| i as u16).collect();
        let c = Container::from_sorted_lows(&lows);
        assert!(matches!(c, Container::Bitset(_)));
        assert_eq!(c.rank(100), 100);
        assert_eq!(c.select(100), Some(100));
        assert_eq!(c.select(5999), Some(5999));
        assert_eq!(c.select(6000), None);
    }

    #[test]
    fn mixed_representation_union() {
        let sparse = Container::from_sorted_lows(&[1, 3, 5]);
        let dense_lows: Vec<u16> = (1000..6000).collect();
        let dense = Container::from_sorted_lows(&dense_lows);
        let mut a = sparse.clone();
        a.union_with(&dense);
        assert_eq!(a.cardinality(), 3 + 5000);
        let mut b = dense;
        b.union_with(&sparse);
        assert_eq!(b.cardinality(), 3 + 5000);
        assert_eq!(a.intersect_len(&b), 5003);
    }

    #[test]
    fn and_not_all_representations() {
        let a = Container::from_sorted_lows(&(0..5000).collect::<Vec<u16>>());
        let b = Container::from_sorted_lows(&(2500..7500).collect::<Vec<u16>>());
        assert_eq!(a.and_not(&b).cardinality(), 2500);
        assert_eq!(b.and_not(&a).cardinality(), 2500);
        let s = Container::from_sorted_lows(&[0, 1, 2]);
        assert_eq!(a.and_not(&s).cardinality(), 4997);
        assert_eq!(s.and_not(&a).cardinality(), 0);
    }
}
