//! Roaring-style compressed bitmaps.
//!
//! MVDCube (the paper's Section 4.3) stores, in every cube cell, the *set of
//! candidate facts* that fall into that cell, encoded as a Roaring Bitmap
//! [Lemire et al., 2016]. Bitmaps are unioned (`OR`) as dimensions are
//! projected away down the MMST, which is exactly what consolidates a fact
//! that occupies several parent cells into a single child-cell membership —
//! the correctness core of the algorithm.
//!
//! This crate is a from-scratch implementation of the three Roaring
//! container kinds, keyed by the high 16 bits of the 32-bit value:
//!
//! * an **array container** (sorted `Vec<u16>`, `2·card` bytes) for sparse
//!   scattered chunks,
//! * a **run container** (sorted inclusive intervals, `4·runs` bytes) for
//!   clustered chunks, and
//! * a **bitset container** (`[u64; 1024]`, fixed 8 KiB) for dense
//!   scattered chunks.
//!
//! After every mutating op a chunk is stored in whichever representation
//! is *cheapest in bytes* for its contents (ties: Array ≻ Run ≻ Bitset).
//! Because that choice depends only on the set — never on the op sequence
//! that produced it — equal bitmaps always have identical representations,
//! so derived equality is exact set equality and the engine's
//! plan-invariance guarantee survives any mix of container kinds.
//!
//! Binary ops run container-at-a-time; the kernel that fires depends on
//! the operand-representation pair:
//!
//! | self \ other | Array                            | Run                        | Bitset                         |
//! |--------------|----------------------------------|----------------------------|--------------------------------|
//! | **Array**    | two-pointer merge, or *galloping* (exponential search) when sizes are skewed ≥16× | one forward walk, intervals as bounds | per-element bit probe          |
//! | **Run**      | (symmetric)                      | interval merge, `O(runs)`  | range-masked word ops          |
//! | **Bitset**   | bit scatter / probe              | range fill / range popcount | word-at-a-time `u64` loops with fused cardinality+run counting |
//!
//! The word-at-a-time loops ([`crate::kernels`] internally) are plain
//! fixed-length `u64` passes with no per-bit branches, shaped for
//! autovectorization; bulk bitset ops recompute cardinality *and* run
//! count in the same pass so the canonical-representation decision is
//! free. In-place variants ([`Bitmap::union_with`],
//! [`Bitmap::intersect_with`], [`Bitmap::union_with_all`] k-way fan-in)
//! recycle allocations across the engine's merge cascade.
//!
//! The public type [`Bitmap`] offers the operations Spade needs: insert,
//! contains, union, intersection, difference, iteration in increasing
//! order, cardinality, rank/select, and the worst-case size bound used in
//! the paper's memory analysis.

mod container;
mod kernels;
mod run;

pub use container::Container;
pub use run::RunContainer;

use container::ARRAY_TO_BITSET_THRESHOLD;

/// A compressed bitmap over `u32` values.
///
/// Chunks (keyed by the high 16 bits) are kept sorted, each holding a
/// [`Container`] for the low 16 bits.
///
/// ```
/// use spade_bitmap::Bitmap;
/// let mut bm = Bitmap::new();
/// bm.insert(3);
/// bm.insert(100_000);
/// assert!(bm.contains(3));
/// assert_eq!(bm.cardinality(), 2);
/// assert_eq!(bm.iter().collect::<Vec<_>>(), vec![3, 100_000]);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    /// Sorted high-16-bit keys, parallel to `containers`.
    keys: Vec<u16>,
    containers: Vec<Container>,
}

#[inline]
fn split(value: u32) -> (u16, u16) {
    ((value >> 16) as u16, (value & 0xFFFF) as u16)
}

#[inline]
fn join(key: u16, low: u16) -> u32 {
    ((key as u32) << 16) | low as u32
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap holding `0..n`, the common "all facts" set —
    /// `O(chunks)`: every chunk is a single run container.
    pub fn full(n: u32) -> Self {
        let mut bm = Self::new();
        if n == 0 {
            return bm;
        }
        let full_chunks = (n >> 16) as usize;
        for key in 0..full_chunks {
            bm.keys.push(key as u16);
            bm.containers.push(Container::from_range(0, u16::MAX));
        }
        let rem = n & 0xFFFF;
        if rem > 0 {
            bm.keys.push(full_chunks as u16);
            bm.containers.push(Container::from_range(0, (rem - 1) as u16));
        }
        bm
    }

    /// Builds a bitmap from an iterator of values (any order, duplicates ok).
    /// Also available through the `FromIterator` trait; the inherent method
    /// keeps call sites short (`Bitmap::from_iter(..)`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = u32>>(values: I) -> Self {
        let mut bm = Self::new();
        for v in values {
            bm.insert(v);
        }
        bm
    }

    /// Builds from a sorted, deduplicated slice. Faster than repeated insert.
    pub fn from_sorted(values: &[u32]) -> Self {
        let mut scratch = Vec::new();
        Self::from_sorted_iter_in(values.iter().copied(), &mut scratch)
    }

    /// Builds from a strictly ascending iterator of values without
    /// collecting them first.
    pub fn from_sorted_iter<I: IntoIterator<Item = u32>>(values: I) -> Self {
        let mut scratch = Vec::new();
        Self::from_sorted_iter_in(values, &mut scratch)
    }

    /// Hot-path variant of [`Bitmap::from_sorted_iter`] that reuses a
    /// caller-owned low-bits scratch buffer, so a loop constructing many
    /// bitmaps (e.g. one per cube cell) allocates the buffer once.
    pub fn from_sorted_iter_in<I: IntoIterator<Item = u32>>(
        values: I,
        scratch: &mut Vec<u16>,
    ) -> Self {
        let mut bm = Self::new();
        scratch.clear();
        let mut cur_key: Option<u16> = None;
        let mut last: Option<u32> = None;
        for v in values {
            debug_assert!(last.is_none_or(|p| p < v), "input must be strictly sorted");
            last = Some(v);
            let (key, low) = split(v);
            if cur_key != Some(key) {
                if let Some(k) = cur_key {
                    bm.keys.push(k);
                    bm.containers.push(Container::from_sorted_lows(scratch));
                }
                scratch.clear();
                cur_key = Some(key);
            }
            scratch.push(low);
        }
        if let Some(k) = cur_key {
            bm.keys.push(k);
            bm.containers.push(Container::from_sorted_lows(scratch));
        }
        bm
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.keys.binary_search(&key) {
            Ok(pos) => self.containers[pos].insert(low),
            Err(pos) => {
                self.keys.insert(pos, key);
                self.containers.insert(pos, Container::singleton(low));
                true
            }
        }
    }

    /// Removes `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                let removed = self.containers[pos].remove(low);
                if removed && self.containers[pos].is_empty() {
                    self.keys.remove(pos);
                    self.containers.remove(pos);
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.keys.binary_search(&key) {
            Ok(pos) => self.containers[pos].contains(low),
            Err(_) => false,
        }
    }

    /// Number of set values.
    pub fn cardinality(&self) -> u64 {
        self.containers.iter().map(|c| c.cardinality() as u64).sum()
    }

    /// `true` when no value is set.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Removes all values, keeping allocations in the chunk index.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.containers.clear();
    }

    /// Smallest set value, if any.
    pub fn min(&self) -> Option<u32> {
        let key = *self.keys.first()?;
        Some(join(key, self.containers.first()?.min()?))
    }

    /// Largest set value, if any.
    pub fn max(&self) -> Option<u32> {
        let key = *self.keys.last()?;
        Some(join(key, self.containers.last()?.max()?))
    }

    /// In-place union: `self |= other`. This is the hot operation of
    /// MVDCube's bitmap propagation (Algorithm 1, line 9).
    pub fn union_with(&mut self, other: &Bitmap) {
        let mut out_keys = Vec::with_capacity(self.keys.len() + other.keys.len());
        let mut out_containers = Vec::with_capacity(out_keys.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => {
                    out_keys.push(self.keys[i]);
                    out_containers.push(std::mem::take(&mut self.containers[i]));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out_keys.push(other.keys[j]);
                    out_containers.push(other.containers[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let mut c = std::mem::take(&mut self.containers[i]);
                    c.union_with(&other.containers[j]);
                    out_keys.push(self.keys[i]);
                    out_containers.push(c);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.keys.len() {
            out_keys.push(self.keys[i]);
            out_containers.push(std::mem::take(&mut self.containers[i]));
            i += 1;
        }
        while j < other.keys.len() {
            out_keys.push(other.keys[j]);
            out_containers.push(other.containers[j].clone());
            j += 1;
        }
        self.keys = out_keys;
        self.containers = out_containers;
    }

    /// Unions several bitmaps into `self` in one k-way pass. Equivalent to
    /// calling [`Bitmap::union_with`] for each, but each chunk is merged
    /// once instead of re-merged (and re-allocated) per source — the
    /// cube engine's fan-in path, where one child cell absorbs every
    /// parent cell projecting onto it.
    pub fn union_with_all(&mut self, others: &[&Bitmap]) {
        match others {
            [] => return,
            [one] => return self.union_with(one),
            _ => {}
        }
        /// Where a chunk comes from: `self` (owned, movable) or a source
        /// bitmap (borrowed).
        enum Src<'a> {
            Own(usize),
            Other(&'a Container),
        }
        let own_keys = std::mem::take(&mut self.keys);
        let mut own_slots: Vec<Option<Container>> =
            std::mem::take(&mut self.containers).into_iter().map(Some).collect();
        let mut refs: Vec<(u16, Src<'_>)> =
            own_keys.iter().enumerate().map(|(i, &k)| (k, Src::Own(i))).collect();
        for other in others {
            refs.extend(
                other.keys.iter().copied().zip(other.containers.iter().map(Src::Other)),
            );
        }
        refs.sort_by_key(|(k, _)| *k);
        let mut i = 0;
        while i < refs.len() {
            let key = refs[i].0;
            let run_len = refs[i..].iter().take_while(|(k, _)| *k == key).count();
            let container = if run_len == 1 {
                // A chunk no one else shares: move our own, clone a source's.
                match &refs[i].1 {
                    Src::Own(idx) => own_slots[*idx].take().expect("own chunk taken once"),
                    Src::Other(c) => (*c).clone(),
                }
            } else {
                let group: Vec<&Container> = refs[i..i + run_len]
                    .iter()
                    .map(|(_, s)| match s {
                        Src::Own(idx) => own_slots[*idx].as_ref().expect("own chunk present"),
                        Src::Other(c) => *c,
                    })
                    .collect();
                Container::union_many(&group)
            };
            self.keys.push(key);
            self.containers.push(container);
            i += run_len;
        }
    }

    /// Owned union.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Owned intersection.
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let c = self.containers[i].intersect(&other.containers[j]);
                    if !c.is_empty() {
                        out.keys.push(self.keys[i]);
                        out.containers.push(c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// In-place intersection: `self &= other`, recycling this bitmap's
    /// chunk index and container allocations where the representation
    /// pair allows.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        let mut w = 0usize;
        let mut j = 0usize;
        for i in 0..self.keys.len() {
            let key = self.keys[i];
            while j < other.keys.len() && other.keys[j] < key {
                j += 1;
            }
            if j < other.keys.len() && other.keys[j] == key {
                let mut c = std::mem::take(&mut self.containers[i]);
                c.intersect_with(&other.containers[j]);
                if !c.is_empty() {
                    self.keys[w] = key;
                    self.containers[w] = c;
                    w += 1;
                }
            }
        }
        self.keys.truncate(w);
        self.containers.truncate(w);
    }

    /// Cardinality of the intersection without materializing it. Used by the
    /// maximal-frequent-itemset miner for support counting.
    pub fn intersect_len(&self, other: &Bitmap) -> u64 {
        let mut total = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += self.containers[i].intersect_len(&other.containers[j]) as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        total
    }

    /// Owned difference `self \ other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let mut j = 0;
        for (i, &key) in self.keys.iter().enumerate() {
            while j < other.keys.len() && other.keys[j] < key {
                j += 1;
            }
            if j < other.keys.len() && other.keys[j] == key {
                let c = self.containers[i].and_not(&other.containers[j]);
                if !c.is_empty() {
                    out.keys.push(key);
                    out.containers.push(c);
                }
            } else {
                out.keys.push(key);
                out.containers.push(self.containers[i].clone());
            }
        }
        out
    }

    /// `true` if the two bitmaps share no value.
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        self.intersect_len(other) == 0
    }

    /// `true` if every value of `self` is in `other`.
    pub fn is_subset(&self, other: &Bitmap) -> bool {
        self.intersect_len(other) == self.cardinality()
    }

    /// Iterates the set values in increasing order.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter { bm: self, chunk: 0, inner: None }
    }

    /// Number of values strictly smaller than `value`.
    pub fn rank(&self, value: u32) -> u64 {
        let (key, low) = split(value);
        let mut total = 0u64;
        for (i, &k) in self.keys.iter().enumerate() {
            if k < key {
                total += self.containers[i].cardinality() as u64;
            } else if k == key {
                total += self.containers[i].rank(low) as u64;
                break;
            } else {
                break;
            }
        }
        total
    }

    /// The `n`-th smallest value (0-based), if cardinality > n.
    pub fn select(&self, mut n: u64) -> Option<u32> {
        for (i, c) in self.containers.iter().enumerate() {
            let card = c.cardinality() as u64;
            if n < card {
                return Some(join(self.keys[i], c.select(n as u16)?));
            }
            n -= card;
        }
        None
    }

    /// Worst-case byte size bound from the paper's memory analysis (Sec. 4.3):
    /// `M_RB = 2·Z + 9·(u/65535 + 1) + 8` for `Z` integers in `[0, u)`.
    pub fn size_bound_bytes(cardinality: u64, universe: u64) -> u64 {
        2 * cardinality + 9 * (universe / 65535 + 1) + 8
    }

    /// Actual heap bytes used by container payloads (diagnostic).
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * 2 + self.containers.iter().map(|c| c.heap_bytes()).sum::<usize>()
    }

    /// Number of chunks currently using the dense bitset representation.
    pub fn bitset_containers(&self) -> usize {
        self.containers.iter().filter(|c| matches!(c, Container::Bitset(_))).count()
    }

    /// Number of chunks currently using the run (interval) representation.
    pub fn run_containers(&self) -> usize {
        self.containers.iter().filter(|c| matches!(c, Container::Run(_))).count()
    }

    /// The maximum cardinality of a (canonical) array container (4096).
    pub const fn dense_threshold() -> usize {
        ARRAY_TO_BITSET_THRESHOLD
    }

    /// Structural-invariant check (used by the property-test suite):
    /// keys strictly sorted, no empty chunks, and every container in its
    /// canonical (cheapest) representation with consistent cached stats.
    pub fn is_canonical(&self) -> bool {
        self.keys.len() == self.containers.len()
            && self.keys.windows(2).all(|w| w[0] < w[1])
            && self.containers.iter().all(|c| !c.is_empty() && c.is_canonical())
    }

    /// Collects the values into a `Vec` (ascending).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Appends all values (ascending) to `out` without clearing it —
    /// container-at-a-time, much faster than the value-at-a-time iterator
    /// on hot paths that can reuse one scratch buffer.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.cardinality() as usize);
        for (&key, container) in self.keys.iter().zip(&self.containers) {
            let high = (key as u32) << 16;
            match container {
                Container::Array(values) => {
                    out.extend(values.iter().map(|&low| high | low as u32));
                }
                Container::Run(rc) => {
                    for &(s, e) in rc.runs() {
                        out.extend((s as u32..=e as u32).map(|low| high | low));
                    }
                }
                Container::Bitset(bs) => {
                    for (w, &word) in bs.words().iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let b = bits.trailing_zeros();
                            out.push(high | ((w as u32) << 6) | b);
                            bits &= bits - 1;
                        }
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let card = self.cardinality();
        if card <= 16 {
            write!(f, "Bitmap{:?}", self.to_vec())
        } else {
            write!(f, "Bitmap{{card={}, min={:?}, max={:?}}}", card, self.min(), self.max())
        }
    }
}

impl FromIterator<u32> for Bitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Bitmap::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = u32;
    type IntoIter = BitmapIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending iterator over a [`Bitmap`].
pub struct BitmapIter<'a> {
    bm: &'a Bitmap,
    chunk: usize,
    inner: Option<container::ContainerIter<'a>>,
}

impl<'a> Iterator for BitmapIter<'a> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if let Some(inner) = &mut self.inner {
                if let Some(low) = inner.next() {
                    return Some(join(self.bm.keys[self.chunk - 1], low));
                }
                self.inner = None;
            }
            if self.chunk >= self.bm.containers.len() {
                return None;
            }
            self.inner = Some(self.bm.containers[self.chunk].iter());
            self.chunk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bm = Bitmap::new();
        assert!(bm.insert(42));
        assert!(!bm.insert(42));
        assert!(bm.contains(42));
        assert!(!bm.contains(41));
        assert!(bm.remove(42));
        assert!(!bm.remove(42));
        assert!(bm.is_empty());
    }

    #[test]
    fn cross_chunk_values() {
        let mut bm = Bitmap::new();
        for v in [0u32, 65_535, 65_536, 1 << 20, u32::MAX] {
            bm.insert(v);
        }
        assert_eq!(bm.cardinality(), 5);
        assert_eq!(bm.to_vec(), vec![0, 65_535, 65_536, 1 << 20, u32::MAX]);
        assert_eq!(bm.min(), Some(0));
        assert_eq!(bm.max(), Some(u32::MAX));
    }

    #[test]
    fn dense_conversion_roundtrip() {
        // Scattered (stride-2) values: run-hostile, so density alone
        // drives the representation.
        let mut bm = Bitmap::new();
        for v in (0..20_000u32).step_by(2) {
            bm.insert(v);
        }
        assert_eq!(bm.bitset_containers(), 1);
        assert_eq!(bm.cardinality(), 10_000);
        for v in (0..20_000).step_by(14) {
            assert!(bm.contains(v));
        }
        // Shrink below threshold again: representation converts back.
        for v in (200..20_000u32).step_by(2) {
            bm.remove(v);
        }
        assert_eq!(bm.cardinality(), 100);
        assert_eq!(bm.bitset_containers(), 0);
        assert!(bm.is_canonical());
    }

    #[test]
    fn contiguous_values_use_run_containers() {
        // The same cardinality clustered into one interval is a run
        // container — 4 bytes instead of 8 KiB.
        let bm = Bitmap::from_sorted_iter(0..10_000u32);
        assert_eq!(bm.run_containers(), 1);
        assert_eq!(bm.bitset_containers(), 0);
        assert_eq!(bm.cardinality(), 10_000);
        assert!(bm.heap_bytes() < 64);
        assert_eq!(bm.to_vec(), (0..10_000u32).collect::<Vec<_>>());
        assert!(bm.is_canonical());
    }

    #[test]
    fn union_models_fact_consolidation() {
        // The Lemma-1 scenario: one fact (id 7) sits in two parent cells;
        // OR-ing the parent bitmaps into the child keeps it a single member.
        let a = Bitmap::from_iter([7u32]);
        let b = Bitmap::from_iter([7u32]);
        let child = a.union(&b);
        assert_eq!(child.cardinality(), 1);
    }

    #[test]
    fn union_disjoint_and_overlapping() {
        let a = Bitmap::from_iter([1u32, 5, 100_000]);
        let b = Bitmap::from_iter([2u32, 5, 200_000]);
        let u = a.union(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 5, 100_000, 200_000]);
    }

    #[test]
    fn intersect_and_difference() {
        let a = Bitmap::from_iter(0..100u32);
        let b = Bitmap::from_iter(50..150u32);
        assert_eq!(a.intersect(&b).cardinality(), 50);
        assert_eq!(a.intersect_len(&b), 50);
        assert_eq!(a.and_not(&b).to_vec(), (0..50).collect::<Vec<_>>());
        assert!(a.intersect(&b).is_subset(&a));
    }

    #[test]
    fn rank_select_are_inverse() {
        let values = [3u32, 17, 65_536, 65_540, 1_000_000];
        let bm = Bitmap::from_sorted(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(bm.rank(v), i as u64);
            assert_eq!(bm.select(i as u64), Some(v));
        }
        assert_eq!(bm.select(5), None);
        assert_eq!(bm.rank(u32::MAX), 5);
    }

    #[test]
    fn from_sorted_matches_inserts() {
        let values: Vec<u32> = (0..5000).map(|i| i * 13).collect();
        let a = Bitmap::from_sorted(&values);
        let b = Bitmap::from_iter(values.iter().copied());
        assert_eq!(a, b);
    }

    #[test]
    fn paper_size_bound_formula() {
        // Beyond a fixed overhead for the universe size, RBs never use more
        // than 2 bytes per integer (Sec. 4.3).
        assert_eq!(Bitmap::size_bound_bytes(0, 65_534), 17);
        assert_eq!(Bitmap::size_bound_bytes(1000, 65_534), 2017);
        let b = Bitmap::size_bound_bytes(1_000_000, 1 << 30);
        assert!(b < 2 * 1_000_000 + 9 * ((1u64 << 30) / 65_535 + 2) + 8);
    }

    #[test]
    fn full_covers_range() {
        let bm = Bitmap::full(70_000);
        assert_eq!(bm.cardinality(), 70_000);
        assert!(bm.contains(0) && bm.contains(69_999) && !bm.contains(70_000));
    }

    #[test]
    fn iterator_is_sorted_across_chunks() {
        let mut bm = Bitmap::new();
        let mut values = vec![];
        for i in 0..2000u32 {
            let v = i.wrapping_mul(2_654_435_761) % 500_000;
            bm.insert(v);
            values.push(v);
        }
        values.sort_unstable();
        values.dedup();
        assert_eq!(bm.to_vec(), values);
    }
}

#[cfg(test)]
mod kway_tests {
    use super::*;

    /// Reference: fold pairwise `union_with` over the same inputs.
    fn pairwise(base: &Bitmap, others: &[&Bitmap]) -> Bitmap {
        let mut out = base.clone();
        for o in others {
            out.union_with(o);
        }
        out
    }

    fn bm(values: &[u32]) -> Bitmap {
        Bitmap::from_iter(values.iter().copied())
    }

    #[test]
    fn union_with_all_matches_pairwise_folds() {
        let cases: Vec<(Bitmap, Vec<Bitmap>)> = vec![
            // Overlapping single-chunk arrays.
            (bm(&[1, 5, 9]), vec![bm(&[2, 5]), bm(&[9, 10, 11]), bm(&[0])]),
            // Chunks unique to self, to one source, and shared.
            (bm(&[3, 70_000]), vec![bm(&[200_000, 200_001]), bm(&[70_001, 3])]),
            // Empty self, empty source.
            (Bitmap::new(), vec![bm(&[8, 9]), Bitmap::new(), bm(&[8])]),
            // Dense: cross the array→bitset threshold during the union.
            (
                Bitmap::from_iter(0..3000u32),
                vec![Bitmap::from_iter(2000..5000u32), Bitmap::from_iter(4000..4096u32)],
            ),
            // A source that is already a bitset container.
            (bm(&[1]), vec![Bitmap::from_iter(0..6000u32)]),
        ];
        for (i, (base, sources)) in cases.iter().enumerate() {
            let refs: Vec<&Bitmap> = sources.iter().collect();
            let mut kway = base.clone();
            kway.union_with_all(&refs);
            let folded = pairwise(base, &refs);
            assert_eq!(kway.to_vec(), folded.to_vec(), "case {i}: values");
            assert_eq!(kway.cardinality(), folded.cardinality(), "case {i}: cardinality");
            // Same representation choice as the pairwise path, so
            // downstream memory accounting and equality agree.
            assert_eq!(
                kway.bitset_containers(),
                folded.bitset_containers(),
                "case {i}: representation"
            );
            assert_eq!(kway, folded, "case {i}: full equality");
        }
    }

    #[test]
    fn union_with_all_trivial_arities() {
        let mut a = bm(&[1, 2]);
        a.union_with_all(&[]);
        assert_eq!(a.to_vec(), vec![1, 2]);
        let b = bm(&[2, 3]);
        a.union_with_all(&[&b]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn union_many_representation_thresholds() {
        // All-array, small, scattered: stays an array container.
        let small_a = Container::from_sorted_lows(&[1, 3, 5]);
        let small_b = Container::from_sorted_lows(&[5, 8]);
        let merged = Container::union_many(&[&small_a, &small_b]);
        assert!(matches!(merged, Container::Array(_)));
        assert_eq!(merged.cardinality(), 4);

        // All-array but summed length above the threshold with actual
        // cardinality below it: converts back to an array.
        let lows: Vec<u16> = (0..8000u16).step_by(2).collect();
        let dup = Container::from_sorted_lows(&lows);
        let dup2 = Container::from_sorted_lows(&lows);
        let merged = Container::union_many(&[&dup, &dup2]);
        assert!(matches!(merged, Container::Array(_)), "dedup below threshold");
        assert_eq!(merged.cardinality(), 4000);

        // Scattered above the threshold for real: becomes a bitset.
        let lo: Vec<u16> = (0..6000u16).step_by(2).collect();
        let hi: Vec<u16> = (5000..11_000u16).step_by(2).collect();
        let merged = Container::union_many(&[
            &Container::from_sorted_lows(&lo),
            &Container::from_sorted_lows(&hi),
        ]);
        assert!(matches!(merged, Container::Bitset(_)));
        assert_eq!(merged.cardinality(), 5500);

        // Clustered above the threshold: the run representation wins.
        let lo: Vec<u16> = (0..3000u16).collect();
        let hi: Vec<u16> = (2500..6000u16).collect();
        let merged = Container::union_many(&[
            &Container::from_sorted_lows(&lo),
            &Container::from_sorted_lows(&hi),
        ]);
        assert!(matches!(merged, Container::Run(_)));
        assert_eq!(merged.cardinality(), 6000);
        assert!(merged.is_canonical());
    }

    #[test]
    fn decode_into_appends_and_matches_iter() {
        // Mixed array + bitset chunks.
        let mut bm = Bitmap::from_iter((0..5000u32).chain([70_000, 200_123]));
        bm.remove(1234);
        let via_iter: Vec<u32> = bm.iter().collect();
        let mut out = vec![999u32]; // must append, not clear
        bm.decode_into(&mut out);
        assert_eq!(out[0], 999);
        assert_eq!(&out[1..], &via_iter[..]);
        assert_eq!(bm.to_vec(), via_iter);
    }
}
