//! The branch-free inner loops behind every container binary op.
//!
//! Two families live here:
//!
//! * **word-at-a-time bitset kernels** — straight-line `u64` loops over the
//!   fixed 1024-word payload (OR/AND/ANDNOT plus fused cardinality and
//!   run counting). No per-bit branches, no data-dependent control flow:
//!   each loop is a single pass the compiler autovectorizes.
//! * **galloping array kernels** — intersection and difference for sorted
//!   `u16` arrays. When the operand sizes are skewed (ratio ≥
//!   [`GALLOP_RATIO`]) the kernel walks the small side and
//!   exponential-searches the large side (`O(s·log(l/s))` instead of
//!   `O(s+l)`); balanced operands take the classic two-pointer merge.
//!
//! All kernels are pure set arithmetic — representation choice (which
//! container kind holds the result) happens in [`crate::container`] from
//! the `(cardinality, runs)` stats these kernels return.

/// Words in one bitset container payload (65536 bits).
pub(crate) const BITSET_WORDS: usize = 1024;

/// Operand-size ratio beyond which array kernels switch from the linear
/// two-pointer merge to galloping (exponential search in the large side).
pub(crate) const GALLOP_RATIO: usize = 16;

/// Cardinality and run count of a word block, one pass each.
///
/// A run *ends* at bit `b` when `b` is set and `b+1` is clear; counting
/// ends counts runs. Within a word that is `popcount(w & !(w >> 1))` —
/// bit 63 always counts and is corrected against the next word's bit 0.
pub(crate) fn words_stats(words: &[u64; BITSET_WORDS]) -> (u32, u32) {
    let mut card = 0u32;
    for &w in words.iter() {
        card += w.count_ones();
    }
    let mut runs = 0u32;
    for i in 0..BITSET_WORDS - 1 {
        let w = words[i];
        runs += (w & !(w >> 1)).count_ones();
        runs -= ((w >> 63) & words[i + 1]) as u32 & 1;
    }
    let last = words[BITSET_WORDS - 1];
    runs += (last & !(last >> 1)).count_ones();
    (card, runs)
}

/// `a |= b`, word at a time; returns the result's `(cardinality, runs)`.
pub(crate) fn union_words(a: &mut [u64; BITSET_WORDS], b: &[u64; BITSET_WORDS]) -> (u32, u32) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x |= *y;
    }
    words_stats(a)
}

/// `a &= b`, word at a time; returns the result's `(cardinality, runs)`.
pub(crate) fn intersect_words(
    a: &mut [u64; BITSET_WORDS],
    b: &[u64; BITSET_WORDS],
) -> (u32, u32) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x &= *y;
    }
    words_stats(a)
}

/// `a &= !b`, word at a time; returns the result's `(cardinality, runs)`.
pub(crate) fn difference_words(
    a: &mut [u64; BITSET_WORDS],
    b: &[u64; BITSET_WORDS],
) -> (u32, u32) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x &= !*y;
    }
    words_stats(a)
}

/// `|a ∩ b|` without materializing anything.
pub(crate) fn intersect_words_card(a: &[u64; BITSET_WORDS], b: &[u64; BITSET_WORDS]) -> u32 {
    let mut card = 0u32;
    for (x, y) in a.iter().zip(b.iter()) {
        card += (x & y).count_ones();
    }
    card
}

/// Sets every array value's bit.
pub(crate) fn scatter(lows: &[u16], words: &mut [u64; BITSET_WORDS]) {
    for &low in lows {
        words[low as usize >> 6] |= 1u64 << (low & 63);
    }
}

/// Sets every bit of the inclusive range `[s, e]`, word-masked (no per-bit
/// loop).
pub(crate) fn set_range(words: &mut [u64; BITSET_WORDS], s: u16, e: u16) {
    let (sw, sb) = (s as usize >> 6, s & 63);
    let (ew, eb) = (e as usize >> 6, e & 63);
    let smask = !0u64 << sb;
    let emask = !0u64 >> (63 - eb);
    if sw == ew {
        words[sw] |= smask & emask;
    } else {
        words[sw] |= smask;
        for w in &mut words[sw + 1..ew] {
            *w = !0;
        }
        words[ew] |= emask;
    }
}

/// `dst |= src & mask([s, e])` — copies one inclusive range of bits,
/// word-masked.
pub(crate) fn copy_range(
    src: &[u64; BITSET_WORDS],
    dst: &mut [u64; BITSET_WORDS],
    s: u16,
    e: u16,
) {
    let (sw, sb) = (s as usize >> 6, s & 63);
    let (ew, eb) = (e as usize >> 6, e & 63);
    let smask = !0u64 << sb;
    let emask = !0u64 >> (63 - eb);
    if sw == ew {
        dst[sw] |= src[sw] & smask & emask;
    } else {
        dst[sw] |= src[sw] & smask;
        for w in sw + 1..ew {
            dst[w] |= src[w];
        }
        dst[ew] |= src[ew] & emask;
    }
}

/// Popcount of one inclusive bit range.
pub(crate) fn range_card(words: &[u64; BITSET_WORDS], s: u16, e: u16) -> u32 {
    let (sw, sb) = (s as usize >> 6, s & 63);
    let (ew, eb) = (e as usize >> 6, e & 63);
    let smask = !0u64 << sb;
    let emask = !0u64 >> (63 - eb);
    if sw == ew {
        return (words[sw] & smask & emask).count_ones();
    }
    let mut card = (words[sw] & smask).count_ones() + (words[ew] & emask).count_ones();
    for w in &words[sw + 1..ew] {
        card += w.count_ones();
    }
    card
}

/// Extracts the normalized run list of a word block into `out` (cleared
/// first), skipping clear stretches a word at a time via
/// `trailing_zeros` on the word and its complement.
pub(crate) fn words_to_runs(words: &[u64; BITSET_WORDS], out: &mut Vec<(u16, u16)>) {
    out.clear();
    let mut pos = 0usize;
    'outer: while pos < 65536 {
        // Next set bit at or after `pos`.
        let mut w = pos >> 6;
        let mut word = words[w] & (!0u64 << (pos & 63));
        while word == 0 {
            w += 1;
            if w == BITSET_WORDS {
                break 'outer;
            }
            word = words[w];
        }
        let start = (w << 6) + word.trailing_zeros() as usize;
        // Next clear bit after `start`.
        let mut w2 = start >> 6;
        let mut inv = !words[w2] & (!0u64 << (start & 63));
        loop {
            if inv != 0 {
                let end = (w2 << 6) + inv.trailing_zeros() as usize - 1;
                out.push((start as u16, end as u16));
                pos = end + 2;
                break;
            }
            w2 += 1;
            if w2 == BITSET_WORDS {
                out.push((start as u16, u16::MAX));
                break 'outer;
            }
            inv = !words[w2];
        }
    }
}

/// Number of runs in a sorted deduplicated array.
pub(crate) fn array_runs(values: &[u16]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mut runs = 1u32;
    for w in values.windows(2) {
        runs += (w[1] != w[0].wrapping_add(1)) as u32;
    }
    runs
}

/// Index of the first element `≥ target` in `h[from..]`, by exponential
/// probe + binary search of the overshot bracket. `O(log distance)` —
/// the building block of the skewed-operand kernels.
pub(crate) fn gallop(h: &[u16], from: usize, target: u16) -> usize {
    if from >= h.len() || h[from] >= target {
        return from;
    }
    // Invariant: h[lo] < target.
    let mut lo = from;
    let mut step = 1usize;
    loop {
        let hi = lo + step;
        if hi >= h.len() {
            return lo + 1 + h[lo + 1..].partition_point(|&x| x < target);
        }
        if h[hi] >= target {
            return lo + 1 + h[lo + 1..hi].partition_point(|&x| x < target);
        }
        lo = hi;
        step <<= 1;
    }
}

/// `a ∩ b` into `out` (appended). Galloping when skewed, two-pointer
/// otherwise.
pub(crate) fn intersect_arrays(a: &[u16], b: &[u16], out: &mut Vec<u16>) {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.is_empty() {
        return;
    }
    if l.len() / s.len() >= GALLOP_RATIO {
        let mut pos = 0usize;
        for &v in s {
            pos = gallop(l, pos, v);
            if pos == l.len() {
                break;
            }
            if l[pos] == v {
                out.push(v);
                pos += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < s.len() && j < l.len() {
            match s[i].cmp(&l[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(s[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// `|a ∩ b|` for sorted arrays, same skew dispatch as
/// [`intersect_arrays`].
pub(crate) fn intersect_arrays_card(a: &[u16], b: &[u16]) -> u32 {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.is_empty() {
        return 0;
    }
    let mut count = 0u32;
    if l.len() / s.len() >= GALLOP_RATIO {
        let mut pos = 0usize;
        for &v in s {
            pos = gallop(l, pos, v);
            if pos == l.len() {
                break;
            }
            if l[pos] == v {
                count += 1;
                pos += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < s.len() && j < l.len() {
            match s[i].cmp(&l[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// `a \ b` into `out` (appended). Gallops over `b` when it dwarfs `a`.
pub(crate) fn difference_arrays(a: &[u16], b: &[u16], out: &mut Vec<u16>) {
    if b.is_empty() {
        out.extend_from_slice(a);
        return;
    }
    if !a.is_empty() && b.len() / a.len() >= GALLOP_RATIO {
        let mut pos = 0usize;
        for &v in a {
            pos = gallop(b, pos, v);
            if pos == b.len() || b[pos] != v {
                out.push(v);
            }
        }
    } else {
        let mut j = 0usize;
        for &v in a {
            while j < b.len() && b[j] < v {
                j += 1;
            }
            if j == b.len() || b[j] != v {
                out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(bits: &[u16]) -> Box<[u64; BITSET_WORDS]> {
        let mut w = Box::new([0u64; BITSET_WORDS]);
        scatter(bits, &mut w);
        w
    }

    #[test]
    fn stats_count_cardinality_and_runs() {
        let w = boxed(&[0, 1, 2, 10, 63, 64, 65, 200]);
        // runs: 0-2, 10, 63-65 (crosses the word boundary), 200.
        assert_eq!(words_stats(&w), (8, 4));
        let empty = Box::new([0u64; BITSET_WORDS]);
        assert_eq!(words_stats(&empty), (0, 0));
        let mut full = Box::new([0u64; BITSET_WORDS]);
        set_range(&mut full, 0, u16::MAX);
        assert_eq!(words_stats(&full), (65536, 1));
    }

    #[test]
    fn set_range_word_boundaries() {
        for (s, e) in [(0u16, 0u16), (63, 64), (5, 200), (65_530, 65_535), (64, 127)] {
            let mut w = Box::new([0u64; BITSET_WORDS]);
            set_range(&mut w, s, e);
            let expect: Vec<u16> = (s..=e).collect();
            let direct = boxed(&expect);
            assert_eq!(*w, *direct, "range [{s}, {e}]");
        }
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let h: Vec<u16> = (0..100).map(|i| i * 7).collect();
        for target in [0u16, 1, 7, 350, 692, 693, 694, 1000] {
            let expect = h.partition_point(|&x| x < target);
            for from in [0usize, 3, 50, 99] {
                if from <= expect {
                    assert_eq!(gallop(&h, from, target), expect, "target {target} from {from}");
                }
            }
        }
        assert_eq!(gallop(&[], 0, 5), 0);
    }

    #[test]
    fn skewed_and_balanced_paths_agree() {
        let small: Vec<u16> = vec![3, 100, 101, 4000, 40_000];
        let large: Vec<u16> = (0..8000).map(|i| i * 5).collect();
        let naive_inter: Vec<u16> =
            small.iter().copied().filter(|v| large.binary_search(v).is_ok()).collect();
        let naive_diff: Vec<u16> =
            small.iter().copied().filter(|v| large.binary_search(v).is_err()).collect();

        let mut out = Vec::new();
        intersect_arrays(&small, &large, &mut out);
        assert_eq!(out, naive_inter);
        out.clear();
        intersect_arrays(&large, &small, &mut out);
        assert_eq!(out, naive_inter);
        assert_eq!(intersect_arrays_card(&small, &large), naive_inter.len() as u32);

        out.clear();
        difference_arrays(&small, &large, &mut out);
        assert_eq!(out, naive_diff);
    }
}
