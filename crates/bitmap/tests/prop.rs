//! Property tests: the bitmap must agree with a `BTreeSet<u32>` reference
//! model under every supported operation.

use proptest::prelude::*;
use spade_bitmap::Bitmap;
use std::collections::BTreeSet;

fn values() -> impl Strategy<Value = Vec<u32>> {
    // Mix of small dense values (exercising bitset containers via clustering)
    // and scattered large values (exercising many chunks).
    prop::collection::vec(prop_oneof![0u32..10_000, 60_000u32..70_000, any::<u32>()], 0..600)
}

proptest! {
    #[test]
    fn matches_btreeset_model(a in values(), b in values()) {
        let set_a: BTreeSet<u32> = a.iter().copied().collect();
        let set_b: BTreeSet<u32> = b.iter().copied().collect();
        let bm_a = Bitmap::from_iter(a.iter().copied());
        let bm_b = Bitmap::from_iter(b.iter().copied());

        prop_assert_eq!(bm_a.cardinality(), set_a.len() as u64);
        prop_assert_eq!(bm_a.to_vec(), set_a.iter().copied().collect::<Vec<_>>());

        let union: Vec<u32> = set_a.union(&set_b).copied().collect();
        prop_assert_eq!(bm_a.union(&bm_b).to_vec(), union);

        let inter: Vec<u32> = set_a.intersection(&set_b).copied().collect();
        prop_assert_eq!(bm_a.intersect(&bm_b).to_vec(), inter.clone());
        prop_assert_eq!(bm_a.intersect_len(&bm_b), inter.len() as u64);

        let diff: Vec<u32> = set_a.difference(&set_b).copied().collect();
        prop_assert_eq!(bm_a.and_not(&bm_b).to_vec(), diff);

        prop_assert_eq!(bm_a.is_disjoint(&bm_b), set_a.is_disjoint(&set_b));
        prop_assert_eq!(bm_a.is_subset(&bm_b), set_a.is_subset(&set_b));
        prop_assert_eq!(bm_a.min(), set_a.iter().next().copied());
        prop_assert_eq!(bm_a.max(), set_a.iter().next_back().copied());
    }

    #[test]
    fn insert_remove_sequences(ops in prop::collection::vec((any::<bool>(), 0u32..50_000), 0..800)) {
        let mut bm = Bitmap::new();
        let mut model = BTreeSet::new();
        for (is_insert, v) in ops {
            if is_insert {
                prop_assert_eq!(bm.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(bm.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(bm.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn rank_select_consistency(vals in values()) {
        let bm = Bitmap::from_iter(vals.iter().copied());
        let sorted = bm.to_vec();
        for (i, &v) in sorted.iter().enumerate() {
            prop_assert_eq!(bm.rank(v), i as u64);
            prop_assert_eq!(bm.select(i as u64), Some(v));
        }
        prop_assert_eq!(bm.select(sorted.len() as u64), None);
    }

    #[test]
    fn union_is_commutative_associative(a in values(), b in values(), c in values()) {
        let (ba, bb, bc) = (
            Bitmap::from_iter(a.iter().copied()),
            Bitmap::from_iter(b.iter().copied()),
            Bitmap::from_iter(c.iter().copied()),
        );
        prop_assert_eq!(ba.union(&bb), bb.union(&ba));
        prop_assert_eq!(ba.union(&bb).union(&bc), ba.union(&bb.union(&bc)));
        // Idempotence — unioning a parent cell into a child twice must not
        // change the member set (fact consolidation safety).
        prop_assert_eq!(ba.union(&ba), ba);
    }
}
