//! Property tests: the bitmap must agree with a `BTreeSet<u32>` reference
//! model under every supported operation — including the run container,
//! the in-place variants, and the k-way fan-in — and after every mutating
//! op each chunk must sit in its canonical (cheapest) representation
//! ([`Bitmap::is_canonical`]).

use proptest::prelude::*;
use spade_bitmap::Bitmap;
use std::collections::BTreeSet;

fn values() -> impl Strategy<Value = Vec<u32>> {
    // Mix of small dense values (exercising bitset containers via clustering)
    // and scattered large values (exercising many chunks).
    prop::collection::vec(prop_oneof![0u32..10_000, 60_000u32..70_000, any::<u32>()], 0..600)
}

/// Contiguous blocks — the run-container-friendly shape. Each `(start,
/// len)` pair contributes the range `start..start+len`; blocks may
/// overlap, merge, and straddle chunk boundaries.
fn blocks() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec((0u32..200_000, 1u32..3_000), 0..8).prop_map(|ranges| {
        ranges.into_iter().flat_map(|(start, len)| start..start.saturating_add(len)).collect()
    })
}

/// Either shape, so every binary-op test sees array×run×bitset operand
/// mixes.
fn mixed() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        values().boxed(),
        blocks().boxed(),
        (values(), blocks())
            .prop_map(|(mut v, b)| {
                v.extend(b);
                v
            })
            .boxed(),
    ]
}

fn model_of(vals: &[u32]) -> BTreeSet<u32> {
    vals.iter().copied().collect()
}

proptest! {
    #[test]
    fn matches_btreeset_model(a in mixed(), b in mixed()) {
        let set_a = model_of(&a);
        let set_b = model_of(&b);
        let bm_a = Bitmap::from_iter(a.iter().copied());
        let bm_b = Bitmap::from_iter(b.iter().copied());
        prop_assert!(bm_a.is_canonical());

        prop_assert_eq!(bm_a.cardinality(), set_a.len() as u64);
        prop_assert_eq!(bm_a.to_vec(), set_a.iter().copied().collect::<Vec<_>>());

        let union: Vec<u32> = set_a.union(&set_b).copied().collect();
        let u = bm_a.union(&bm_b);
        prop_assert!(u.is_canonical());
        prop_assert_eq!(u.to_vec(), union);

        let inter: Vec<u32> = set_a.intersection(&set_b).copied().collect();
        let i = bm_a.intersect(&bm_b);
        prop_assert!(i.is_canonical());
        prop_assert_eq!(i.to_vec(), inter.clone());
        prop_assert_eq!(bm_a.intersect_len(&bm_b), inter.len() as u64);

        let diff: Vec<u32> = set_a.difference(&set_b).copied().collect();
        let d = bm_a.and_not(&bm_b);
        prop_assert!(d.is_canonical());
        prop_assert_eq!(d.to_vec(), diff);

        prop_assert_eq!(bm_a.is_disjoint(&bm_b), set_a.is_disjoint(&set_b));
        prop_assert_eq!(bm_a.is_subset(&bm_b), set_a.is_subset(&set_b));
        prop_assert_eq!(bm_a.min(), set_a.iter().next().copied());
        prop_assert_eq!(bm_a.max(), set_a.iter().next_back().copied());
    }

    #[test]
    fn in_place_ops_match_owned(a in mixed(), b in mixed()) {
        let bm_a = Bitmap::from_iter(a.iter().copied());
        let bm_b = Bitmap::from_iter(b.iter().copied());

        let mut u = bm_a.clone();
        u.union_with(&bm_b);
        prop_assert!(u.is_canonical());
        // Canonicality makes this full structural equality, not just
        // same-set equality.
        prop_assert_eq!(&u, &bm_a.union(&bm_b));

        let mut i = bm_a.clone();
        i.intersect_with(&bm_b);
        prop_assert!(i.is_canonical());
        prop_assert_eq!(&i, &bm_a.intersect(&bm_b));
    }

    #[test]
    fn kway_union_matches_fold(base in mixed(), sources in prop::collection::vec(mixed(), 0..5)) {
        let bm_base = Bitmap::from_iter(base.iter().copied());
        let bms: Vec<Bitmap> =
            sources.iter().map(|s| Bitmap::from_iter(s.iter().copied())).collect();
        let refs: Vec<&Bitmap> = bms.iter().collect();

        let mut kway = bm_base.clone();
        kway.union_with_all(&refs);
        prop_assert!(kway.is_canonical());

        let mut folded = bm_base;
        for r in &refs {
            folded.union_with(r);
        }
        prop_assert_eq!(&kway, &folded);

        let mut model = model_of(&base);
        for s in &sources {
            model.extend(s.iter().copied());
        }
        prop_assert_eq!(kway.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn insert_remove_sequences(ops in prop::collection::vec((any::<bool>(), 0u32..50_000), 0..800)) {
        let mut bm = Bitmap::new();
        let mut model = BTreeSet::new();
        for (is_insert, v) in ops {
            if is_insert {
                prop_assert_eq!(bm.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(bm.remove(v), model.remove(&v));
            }
        }
        prop_assert!(bm.is_canonical());
        prop_assert_eq!(bm.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn contiguous_insert_remove_walk(seed in any::<u64>()) {
        // A biased walk that tends to extend / punch runs, driving chunks
        // through Array → Run → Bitset transitions in both directions.
        let mut bm = Bitmap::new();
        let mut model = BTreeSet::new();
        let mut x = seed | 1;
        let mut cursor = 0u32;
        for _ in 0..1200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match (x >> 60) & 7 {
                0..=3 => {
                    // extend a run forward
                    cursor = cursor.wrapping_add(1) % 150_000;
                    prop_assert_eq!(bm.insert(cursor), model.insert(cursor));
                }
                4 | 5 => {
                    // jump somewhere new
                    cursor = (x as u32) % 150_000;
                    prop_assert_eq!(bm.insert(cursor), model.insert(cursor));
                }
                _ => {
                    let v = (x as u32) % 150_000;
                    prop_assert_eq!(bm.remove(v), model.remove(&v));
                }
            }
            }
        prop_assert!(bm.is_canonical());
        prop_assert_eq!(bm.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn construction_paths_agree(vals in mixed()) {
        let via_insert = Bitmap::from_iter(vals.iter().copied());
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let via_sorted = Bitmap::from_sorted(&sorted);
        let via_iter = Bitmap::from_sorted_iter(sorted.iter().copied());
        let mut scratch = Vec::new();
        let via_scratch = Bitmap::from_sorted_iter_in(sorted.iter().copied(), &mut scratch);
        // Canonical representation is a pure function of the set, so all
        // four construction paths yield structurally identical bitmaps.
        prop_assert!(via_insert.is_canonical());
        prop_assert_eq!(&via_insert, &via_sorted);
        prop_assert_eq!(&via_insert, &via_iter);
        prop_assert_eq!(&via_insert, &via_scratch);
        // And decode round-trips.
        let mut out = Vec::new();
        via_insert.decode_into(&mut out);
        prop_assert_eq!(out, sorted);
    }

    #[test]
    fn rank_select_consistency(vals in mixed()) {
        let bm = Bitmap::from_iter(vals.iter().copied());
        let sorted = bm.to_vec();
        for (i, &v) in sorted.iter().enumerate() {
            prop_assert_eq!(bm.rank(v), i as u64);
            prop_assert_eq!(bm.select(i as u64), Some(v));
        }
        prop_assert_eq!(bm.select(sorted.len() as u64), None);
    }

    #[test]
    fn union_is_commutative_associative(a in mixed(), b in mixed(), c in mixed()) {
        let (ba, bb, bc) = (
            Bitmap::from_iter(a.iter().copied()),
            Bitmap::from_iter(b.iter().copied()),
            Bitmap::from_iter(c.iter().copied()),
        );
        prop_assert_eq!(ba.union(&bb), bb.union(&ba));
        prop_assert_eq!(ba.union(&bb).union(&bc), ba.union(&bb.union(&bc)));
        // Idempotence — unioning a parent cell into a child twice must not
        // change the member set (fact consolidation safety).
        prop_assert_eq!(ba.union(&ba), ba);
    }
}
