//! Chaos suite: the failure-mode half of the wire spec, driven through the
//! `spade_parallel::fault` injection hooks.
//!
//! Asserted here, end to end:
//!
//! * an injected **panic** costs one 500 and the daemon keeps answering;
//! * an evaluation **stalled past its deadline** is cancelled cooperatively
//!   and answered 504 within 2× the timeout;
//! * under saturation, **admission control sheds** with 503 + `Retry-After`
//!   and zero connection resets, and the retrying client recovers;
//! * cancellation leaves **plan invariance** intact: budgeted and
//!   unbudgeted runs are byte-identical, before and after a cancellation;
//! * a **slow-loris** peer is cut off by the read deadline (408), not by
//!   the much larger idle timeout.
//!
//! The fault spec is process-global, so every test that arms it (or runs
//! the engine while another test might) serializes on one mutex and clears
//! the spec through a drop guard — a failing assertion cannot leak faults
//! into the next test.

use spade_core::{Budget, CancelReason, OfflineState, RequestConfig, Spade, SpadeConfig};
use spade_serve::client::{Client, RetryPolicy};
use spade_serve::http::Limits;
use spade_serve::server::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn base_config() -> SpadeConfig {
    SpadeConfig { k: 5, min_support: 0.3, min_cfs_size: 20, max_cfs: 6, ..Default::default() }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spade_chaos_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_snapshot(dir: &Path, scale: usize, seed: u64) -> PathBuf {
    let g = spade_datagen::realistic::ceos(&spade_datagen::RealisticConfig { scale, seed });
    let nt = spade_rdf::write_ntriples(&g);
    let path = dir.join("corpus.spade");
    Spade::new(base_config()).snapshot_ntriples(&nt, &path).expect("snapshot written");
    path
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        threads: 4,
        cache_bytes: 0, // every explore must actually evaluate
        ..Default::default()
    }
}

/// Clears the process-global fault spec even when the test panics.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        spade_parallel::fault::set_spec(None);
    }
}

/// Serializes fault-sensitive tests and arms `spec` (or just the lock when
/// `None` — for tests that must not observe someone else's faults).
fn arm(spec: Option<&str>) -> FaultGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    spade_parallel::fault::set_spec(spec);
    FaultGuard(guard)
}

fn metric_value(metrics_body: &str, name: &str) -> Option<u64> {
    metrics_body
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn injected_panic_costs_one_500_and_the_daemon_keeps_serving() {
    let _fault = arm(Some("serve.explore=panic"));
    let dir = temp_dir("panic");
    let path = write_snapshot(&dir, 60, 3);
    let server = Server::start(serve_config(), base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    let r = spade_serve::client::post(addr, "/explore", b"").expect("explore answered");
    assert_eq!(r.status, 500, "injected panic must surface as 500: {}", r.text());
    assert!(
        r.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")),
        "a post-panic connection must not be reused"
    );

    // The daemon is still alive and healthy on a fresh connection.
    let h = spade_serve::client::get(addr, "/healthz").expect("healthz answered");
    assert_eq!(h.status, 200);

    let m = spade_serve::client::get(addr, "/metrics").expect("metrics answered").text();
    assert_eq!(metric_value(&m, "spade_serve_panics_total"), Some(1), "metrics:\n{m}");

    // Disarm: the very same request now succeeds.
    spade_parallel::fault::set_spec(None);
    let ok = spade_serve::client::post(addr, "/explore", b"").expect("explore answered");
    assert_eq!(ok.status, 200, "{}", ok.text());

    assert!(server.shutdown(Duration::from_secs(10)), "clean drain after a panic");
}

#[test]
fn deadline_exceeded_returns_504_within_twice_the_timeout() {
    let _fault = arm(Some("cfs=stall:10000"));
    let dir = temp_dir("deadline");
    let path = write_snapshot(&dir, 60, 4);
    let timeout = Duration::from_millis(500);
    let config = ServeConfig { request_timeout: Some(timeout), ..serve_config() };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    let started = Instant::now();
    let r = spade_serve::client::post(addr, "/explore", b"").expect("explore answered");
    let elapsed = started.elapsed();
    assert_eq!(r.status, 504, "stalled evaluation must time out: {}", r.text());
    assert!(
        elapsed < 2 * timeout,
        "cancellation must unwind within 2x the timeout, took {elapsed:?}"
    );

    let m = spade_serve::client::get(addr, "/metrics").expect("metrics answered").text();
    assert_eq!(metric_value(&m, "spade_serve_timeouts_total"), Some(1), "metrics:\n{m}");
    assert!(
        metric_value(&m, "spade_serve_cancel_latency_seconds_count").is_some(),
        "cancellation latency must be exported:\n{m}"
    );

    // Disarm: the same request with the same deadline now succeeds.
    spade_parallel::fault::set_spec(None);
    let ok = spade_serve::client::post(addr, "/explore", b"").expect("explore answered");
    assert_eq!(ok.status, 200, "{}", ok.text());

    assert!(server.shutdown(Duration::from_secs(10)), "clean drain after timeouts");
}

#[test]
fn stalled_translation_is_cancelled_within_twice_the_timeout() {
    // Same deadline contract as the cfs stall, but the fault fires inside
    // the parallel data-translation stage — the budget threaded through
    // `translate_budgeted` must unwind it cooperatively.
    let _fault = arm(Some("translate=stall:10000"));
    let dir = temp_dir("translate_deadline");
    let path = write_snapshot(&dir, 60, 9);
    let timeout = Duration::from_millis(500);
    let config = ServeConfig { request_timeout: Some(timeout), ..serve_config() };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    let started = Instant::now();
    let r = spade_serve::client::post(addr, "/explore", b"").expect("explore answered");
    let elapsed = started.elapsed();
    assert_eq!(r.status, 504, "stalled translation must time out: {}", r.text());
    assert!(
        elapsed < 2 * timeout,
        "cancellation during translate must unwind within 2x the timeout, took {elapsed:?}"
    );

    let m = spade_serve::client::get(addr, "/metrics").expect("metrics answered").text();
    assert_eq!(metric_value(&m, "spade_serve_timeouts_total"), Some(1), "metrics:\n{m}");

    // No partial state: disarmed, the identical request evaluates cleanly
    // on the same serving state and the daemon stays healthy.
    spade_parallel::fault::set_spec(None);
    let ok = spade_serve::client::post(addr, "/explore", b"").expect("explore answered");
    assert_eq!(ok.status, 200, "{}", ok.text());
    let h = spade_serve::client::get(addr, "/healthz").expect("healthz answered");
    assert_eq!(h.status, 200);

    assert!(server.shutdown(Duration::from_secs(10)), "clean drain after translate stall");
}

#[test]
fn saturation_sheds_with_503_and_zero_connection_resets() {
    // Stall each admitted evaluation long enough that concurrent requests
    // overlap; capacity admits exactly one request's estimated cost.
    let _fault = arm(Some("cfs=stall:400"));
    let dir = temp_dir("shed");
    let path = write_snapshot(&dir, 60, 5);
    let state = OfflineState::open(&path, 2).expect("snapshot opens");
    let one_request = spade_serve::admission::estimate_cost(
        &state,
        &base_config(),
        &RequestConfig::default(),
    );
    drop(state);

    let config = ServeConfig { admission_capacity: one_request, ..serve_config() };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    // A few rounds in case scheduling serializes the first volley entirely.
    let mut statuses: Vec<u16> = Vec::new();
    let mut saw_retry_after = false;
    for _round in 0..3 {
        let round: Vec<(u16, Option<String>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = Client::new(addr).no_retry();
                        // Every send must complete cleanly: sheds are
                        // responses, never connection resets.
                        let r = client.post("/explore", b"").expect("no reset under shed");
                        (r.status, r.header("retry-after").map(str::to_owned))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (status, retry_after) in round {
            if status == 503 {
                assert_eq!(retry_after.as_deref(), Some("1"), "503 must carry Retry-After");
                saw_retry_after = true;
            }
            statuses.push(status);
        }
        if saw_retry_after {
            break;
        }
    }
    assert!(statuses.iter().all(|s| *s == 200 || *s == 503), "only 200/503: {statuses:?}");
    assert!(statuses.contains(&200), "at least one request admitted: {statuses:?}");
    assert!(saw_retry_after, "concurrent over-capacity load must shed: {statuses:?}");

    let m = spade_serve::client::get(addr, "/metrics").expect("metrics answered").text();
    assert!(
        metric_value(&m, "spade_serve_shed_total").is_some_and(|v| v >= 1),
        "sheds must be counted:\n{m}"
    );

    // The retrying client backs off past the stall window and recovers.
    let policy = RetryPolicy {
        max_retries: 4,
        base_delay: Duration::from_millis(100),
        max_total_delay: Duration::from_secs(8),
    };
    let recovered = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let policy = policy.clone();
                scope.spawn(move || {
                    let mut client = Client::new(addr).with_retry(policy);
                    client.post("/explore", b"").expect("retrying client completes").status
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect::<Vec<u16>>()
    });
    assert!(
        recovered.iter().all(|s| *s == 200),
        "backoff must outlast the stall window: {recovered:?}"
    );

    assert!(server.shutdown(Duration::from_secs(10)), "clean drain after shedding");
}

#[test]
fn auto_capacity_converges_and_shed_rate_drops() {
    // Every evaluation stalls 150 ms so concurrent volleys overlap. With
    // `--admission-capacity auto` the capacity is seeded at one request's
    // static estimate — so the first phase sheds like the fixed-capacity
    // test above — and then retargets from the observed profile; the
    // latency (~150 ms) sits far under the 5 s SLO, so the headroom factor
    // opens the valve and later phases shed less.
    let _fault = arm(Some("cfs=stall:150"));
    let dir = temp_dir("auto");
    let path = write_snapshot(&dir, 60, 8);
    let state = OfflineState::open(&path, 2).expect("snapshot opens");
    let seed_capacity = spade_serve::admission::estimate_cost(
        &state,
        &base_config(),
        &RequestConfig::default(),
    );
    drop(state);

    let config = ServeConfig {
        admission_auto: true,
        latency_slo: Some(Duration::from_secs(5)),
        ..serve_config()
    };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    // The seeded capacity is the one-request estimate (not the fixed
    // default), before any observation.
    let m = spade_serve::client::get(addr, "/metrics").expect("metrics").text();
    assert_eq!(
        metric_value(&m, "spade_serve_admission_capacity"),
        Some(seed_capacity),
        "auto seeds capacity from the static estimate:\n{m}"
    );

    let shed_count = || {
        let m = spade_serve::client::get(addr, "/metrics").expect("metrics").text();
        metric_value(&m, "spade_serve_shed_total").expect("shed_total exported")
    };
    let volley = || {
        let statuses: Vec<u16> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = Client::new(addr).no_retry();
                        // Sheds are responses, never connection resets.
                        let r = client.post("/explore", b"").expect("no reset under auto");
                        r.status
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        assert!(statuses.iter().all(|s| *s == 200 || *s == 503), "only 200/503: {statuses:?}");
        assert!(statuses.contains(&200), "every volley admits work: {statuses:?}");
    };

    // Phase 1: five volleys against the one-request seed — enough cold
    // completions (≥ 5 > the 4-sample floor) to arm the retarget loop.
    let mut sheds = Vec::new();
    let mut before = shed_count();
    for _ in 0..5 {
        volley();
    }
    let after = shed_count();
    sheds.push(after - before);
    before = after;
    // Phases 2 and 3: the retargeted capacity admits whole volleys.
    for _ in 0..2 {
        for _ in 0..5 {
            volley();
        }
        let after = shed_count();
        sheds.push(after - before);
        before = after;
    }

    assert!(sheds[0] >= 1, "the seeded capacity must shed overlapping volleys: {sheds:?}");
    assert!(
        sheds[2] < sheds[0],
        "the shed rate must drop once the profile retargets capacity: {sheds:?}"
    );

    // The loop observably opened the valve: capacity grew past the seed.
    let m = spade_serve::client::get(addr, "/metrics").expect("metrics").text();
    let converged = metric_value(&m, "spade_serve_admission_capacity").expect("capacity");
    assert!(
        converged > seed_capacity,
        "capacity must grow under a generous SLO: {converged} vs seed {seed_capacity}"
    );

    // The ledger's SLO accounting agrees: 150 ms runs never breach a 5 s
    // objective.
    assert_eq!(
        metric_value(&m, "spade_serve_slo_breach_total{graph=\"corpus\"}"),
        Some(0),
        "no breaches under a 5 s SLO:\n{m}"
    );

    assert!(server.shutdown(Duration::from_secs(10)), "clean drain after convergence");
}

#[test]
fn cancellation_preserves_plan_invariance() {
    // Holds the fault lock unarmed so no concurrent test's faults can
    // perturb the oracle runs.
    let _fault = arm(None);
    let dir = temp_dir("invariance");
    let path = write_snapshot(&dir, 60, 6);
    let state = OfflineState::open(&path, 2).expect("snapshot opens");
    let engine = Spade::new(base_config());
    let request = RequestConfig::default();

    let plain = engine.run_on(&state, &request).to_json(false);
    let generous = Budget::with_deadline(Duration::from_secs(300));
    let budgeted = engine
        .run_on_budgeted(&state, &request, &generous)
        .expect("generous deadline cannot cancel")
        .to_json(false);
    assert_eq!(plain, budgeted, "an unfired budget must not change a single byte");

    let expired = Budget::with_deadline(Duration::ZERO);
    let cancelled = engine.run_on_budgeted(&state, &request, &expired);
    let err = cancelled.expect_err("an already-expired deadline must cancel");
    assert_eq!(err.reason, CancelReason::DeadlineExceeded);

    // A cancellation leaves no residue: the same state answers identically.
    let after = engine
        .run_on_budgeted(&state, &request, &Budget::unlimited())
        .expect("unlimited budget cannot cancel")
        .to_json(false);
    assert_eq!(plain, after, "a cancelled run must leave the serving state untouched");

    // Explicit cancellation (the cancel() path, not the clock) also works.
    let flagged = Budget::unlimited();
    flagged.cancel();
    let err = engine
        .run_on_budgeted(&state, &request, &flagged)
        .expect_err("a cancelled flag must cancel");
    assert_eq!(err.reason, CancelReason::Cancelled);
}

#[test]
fn slow_loris_is_cut_by_the_read_deadline_not_the_idle_timeout() {
    let _fault = arm(None);
    let dir = temp_dir("loris");
    let path = write_snapshot(&dir, 60, 7);
    let config = ServeConfig {
        limits: Limits { read_deadline: Duration::from_millis(400), ..Limits::default() },
        idle_timeout: Duration::from_secs(300), // must NOT be what saves us
        ..serve_config()
    };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    // Trickle a valid request head one byte at a time, slower than the
    // deadline allows but faster than any idle tick.
    let mut response = Vec::new();
    for b in b"GET /healthz HTTP/1.1\r\n\r\n" {
        if stream.write_all(&[*b]).is_err() {
            break; // server already gave up on us — expected
        }
        std::thread::sleep(Duration::from_millis(100));
        if started.elapsed() > Duration::from_secs(20) {
            break;
        }
    }
    let _ = stream.read_to_end(&mut response);
    let elapsed = started.elapsed();
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "trickled request must be answered 408, got: {text:?}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "the read deadline, not the idle timeout, must cut the trickle: {elapsed:?}"
    );

    assert!(server.shutdown(Duration::from_secs(10)), "clean drain after a slow-loris");
}
