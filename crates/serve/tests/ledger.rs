//! Ledger determinism: the analytics ledger is derived from deterministic
//! quantities only (canonical key hashes, admission estimates, shard work
//! counters, cache outcomes), so the same request sequence produces the
//! same per-graph record set and the same cost quantiles at **any**
//! evaluation thread budget. Timing fields (latency, stage micros,
//! wall-clock stamps) are the only nondeterministic parts and are excluded
//! from the comparison.

use spade_core::{Spade, SpadeConfig};
use spade_serve::client::Client;
use spade_serve::server::{ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn base_config() -> SpadeConfig {
    SpadeConfig { k: 5, min_support: 0.3, min_cfs_size: 20, max_cfs: 6, ..Default::default() }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spade_ledger_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_snapshot(dir: &Path, file: &str, scale: usize, seed: u64) -> PathBuf {
    let g = spade_datagen::realistic::ceos(&spade_datagen::RealisticConfig { scale, seed });
    let nt = spade_rdf::write_ntriples(&g);
    let path = dir.join(file);
    Spade::new(base_config()).snapshot_ntriples(&nt, &path).expect("snapshot written");
    path
}

/// The deterministic projection of one ledger record: everything except
/// the timing fields.
fn projection(entry: &spade_core::json::Json) -> String {
    let get_str = |k: &str| entry.get(k).and_then(|v| v.as_str()).expect(k).to_owned();
    let get_num = |k: &str| entry.get(k).and_then(|v| v.as_usize()).expect(k);
    format!(
        "{}|g{}|{}|{}|{}|{}|est{}|act{}|c{}|f{}",
        get_str("graph"),
        get_num("generation"),
        get_str("route"),
        get_str("key_hash"),
        get_str("cache"),
        get_str("class"),
        get_num("estimated_cost"),
        get_num("actual_cost"),
        get_num("cells"),
        get_num("facts"),
    )
}

#[test]
fn record_sets_and_cost_quantiles_are_thread_invariant() {
    let dir = temp_dir("threads");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);

    // The fixed sequence: four distinct cold evaluations with two exact
    // repeats interleaved (cache hits), issued serially so the profile
    // fold order is identical across runs.
    let sequence: [&[u8]; 6] =
        [b"", br#"{"k": 2}"#, b"", br#"{"k": 1}"#, br#"{"k": 2}"#, br#"{"min_support": 0.5}"#];

    let mut outcomes: Vec<(usize, Vec<String>, String)> = Vec::new();
    for threads in [1usize, 2, 8] {
        // One worker: the per-request evaluation budget is exactly
        // `threads`, the knob under test.
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            threads,
            cache_bytes: 1 << 20,
            ..Default::default()
        };
        let server = Server::start(config, base_config(), &path).expect("server starts");
        let addr = server.local_addr();
        let mut client = Client::new(addr);
        for body in sequence {
            assert_eq!(client.post("/explore", body).expect("explore").status, 200);
        }
        let queries = client.get("/debug/queries").expect("debug/queries");
        assert_eq!(queries.status, 200);
        let doc = spade_core::json::parse(&queries.text()).expect("ledger JSON");
        assert_eq!(doc.get("recorded_total").and_then(|v| v.as_usize()), Some(sequence.len()));

        let entries = doc.get("entries").and_then(|e| e.as_array()).expect("entries");
        assert_eq!(entries.len(), sequence.len());
        // Order-insensitive comparison: sort the deterministic projections.
        let mut projections: Vec<String> = entries.iter().map(projection).collect();
        projections.sort();

        // Cost quantiles and EWMAs fold deterministic work counters in a
        // fixed order, so they must match *exactly* across thread budgets
        // (latency fields are wall-clock and excluded).
        let profiles = doc.get("cost_profiles").and_then(|p| p.as_array()).expect("profiles");
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        let cost_summary = format!(
            "req={} ewma={} est_ewma={} p50={} p95={} p99={}",
            p.get("requests").and_then(|v| v.as_usize()).expect("requests"),
            p.get("cost_ewma").and_then(|v| v.as_f64()).expect("cost_ewma"),
            p.get("est_cost_ewma").and_then(|v| v.as_f64()).expect("est_cost_ewma"),
            p.get("cost_p50").and_then(|v| v.as_f64()).expect("cost_p50"),
            p.get("cost_p95").and_then(|v| v.as_f64()).expect("cost_p95"),
            p.get("cost_p99").and_then(|v| v.as_f64()).expect("cost_p99"),
        );
        outcomes.push((threads, projections, cost_summary));

        assert!(server.shutdown(Duration::from_secs(10)), "drained in time");
    }

    for pair in outcomes.windows(2) {
        let (t_a, proj_a, cost_a) = &pair[0];
        let (t_b, proj_b, cost_b) = &pair[1];
        assert_eq!(
            proj_a, proj_b,
            "per-graph record sets differ between threads={t_a} and threads={t_b}"
        );
        assert_eq!(
            cost_a, cost_b,
            "cost quantile summaries differ between threads={t_a} and threads={t_b}"
        );
    }
    // The comparison is not vacuous: the set holds hits and misses, and
    // measured work is non-zero.
    let (_, projections, cost) = &outcomes[0];
    assert!(projections.iter().any(|p| p.contains("|hit|")), "{projections:?}");
    assert!(projections.iter().any(|p| p.contains("|miss|")), "{projections:?}");
    assert!(!cost.contains("p50=0 "), "cold requests measured real work: {cost}");

    std::fs::remove_dir_all(&dir).ok();
}
