//! Multi-graph catalog loopback suite: one daemon serving N snapshots
//! must answer each graph **byte-identically** to a dedicated one-graph
//! server over the same file (the catalog adds routing and memory
//! management, never changes answers), and a tiny `--graph-memory-budget`
//! must actually evict cold graphs — and transparently reopen them at a
//! bumped generation on the next request.

use spade_core::{Spade, SpadeConfig};
use spade_serve::client::{self, Client};
use spade_serve::server::{ServeConfig, ServeError, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn base_config() -> SpadeConfig {
    SpadeConfig { k: 5, min_support: 0.3, min_cfs_size: 20, max_cfs: 6, ..Default::default() }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spade_catalog_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_snapshot(dir: &Path, file: &str, scale: usize, seed: u64) -> PathBuf {
    let g = spade_datagen::realistic::ceos(&spade_datagen::RealisticConfig { scale, seed });
    let nt = spade_rdf::write_ntriples(&g);
    let path = dir.join(file);
    Spade::new(base_config()).snapshot_ntriples(&nt, &path).expect("snapshot written");
    path
}

fn serve_config(cache_bytes: usize, graph_memory_budget: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        threads: 4,
        cache_bytes,
        graph_memory_budget,
        ..Default::default()
    }
}

fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Two graphs behind one daemon answer exactly what two dedicated
/// one-graph servers would, under concurrent cross-graph traffic; legacy
/// routes hit the default graph.
#[test]
fn two_graphs_match_their_single_graph_oracles() {
    let dir = temp_dir("oracles");
    // Different seeds: the two corpora (and their reports) genuinely differ.
    let alpha = write_snapshot(&dir, "alpha.spade", 100, 11);
    let beta = write_snapshot(&dir, "beta.spade", 90, 23);

    let oracle_alpha =
        Spade::new(base_config()).run_snapshot(&alpha).expect("alpha oracle").to_json(false);
    let oracle_beta =
        Spade::new(base_config()).run_snapshot(&beta).expect("beta oracle").to_json(false);
    assert_ne!(oracle_alpha, oracle_beta, "the two corpora must differ for a real test");

    // Cache disabled: every request evaluates for real.
    let server = Server::start_catalog(
        serve_config(0, 0),
        base_config(),
        vec![("alpha".to_owned(), alpha.clone()), ("beta".to_owned(), beta.clone())],
        "alpha",
    )
    .expect("catalog server starts");
    let addr = server.local_addr();

    let bodies: Vec<(String, u16, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    // Interleave graphs within each connection.
                    let route = if i % 2 == 0 {
                        ["/graphs/alpha/explore", "/graphs/beta/explore"]
                    } else {
                        ["/graphs/beta/explore", "/graphs/alpha/explore"]
                    };
                    let mut out = Vec::new();
                    for r in route {
                        let resp = client.post(r, b"").expect("explore");
                        out.push((r.to_owned(), resp.status, resp.body));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(bodies.len(), 8);
    for (route, status, body) in &bodies {
        assert_eq!(*status, 200, "{route}");
        let expected = if route.contains("alpha") { &oracle_alpha } else { &oracle_beta };
        assert_eq!(
            std::str::from_utf8(body).expect("UTF-8 body"),
            expected,
            "{route}: catalog body equals the one-graph oracle, byte for byte"
        );
    }

    // Legacy unprefixed routes are bound to the default graph (alpha).
    let legacy = client::post(addr, "/explore", b"").expect("legacy explore");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.text(), oracle_alpha);

    // /graphs lists both, with the default marked.
    let index = client::get(addr, "/graphs").expect("graphs index");
    let doc = spade_core::json::parse(&index.text()).expect("graphs is JSON");
    assert_eq!(doc.get("default").and_then(|d| d.as_str()), Some("alpha"));
    let listed = doc.get("graphs").and_then(|g| g.as_array()).expect("graphs array");
    assert_eq!(listed.len(), 2);

    // Unknown graphs and wrong methods are typed errors, not fallthrough.
    let missing = client::post(addr, "/graphs/nope/explore", b"").expect("missing graph");
    assert_eq!(missing.status, 404);
    let wrong = client::get(addr, "/graphs/alpha/explore").expect("wrong method");
    assert_eq!(wrong.status, 405);

    // Per-graph series appear in /metrics with graph labels.
    let m = client::get(addr, "/metrics").expect("metrics").text();
    assert!(m.contains("spade_serve_graph_explore_total{graph=\"alpha\"}"), "{m}");
    assert!(m.contains("spade_serve_graph_explore_total{graph=\"beta\"}"), "{m}");
    assert!(m.contains("spade_serve_graph_generation{graph=\"beta\"} 1"), "{m}");
    assert_eq!(metric_value(&m, "spade_serve_graphs_loaded"), Some(2), "{m}");

    assert!(server.shutdown(Duration::from_secs(10)), "drained in time");
    std::fs::remove_dir_all(&dir).ok();
}

/// A byte budget far below one graph's resident estimate forces the
/// catalog to evict whichever graph is not being served; the evicted
/// graph transparently reopens (bumped generation, same bytes) on its
/// next request.
#[test]
fn tiny_budget_evicts_and_transparently_reopens() {
    let dir = temp_dir("budget");
    let alpha = write_snapshot(&dir, "alpha.spade", 100, 11);
    let beta = write_snapshot(&dir, "beta.spade", 90, 23);
    let oracle_beta =
        Spade::new(base_config()).run_snapshot(&beta).expect("beta oracle").to_json(false);

    // Budget of one byte: any two loaded graphs are over it, so touching
    // one always evicts the other. The cache is enabled to prove that a
    // reopened graph (bumped generation) still answers identical bytes.
    let server = Server::start_catalog(
        serve_config(1 << 20, 1),
        base_config(),
        vec![("alpha".to_owned(), alpha.clone()), ("beta".to_owned(), beta.clone())],
        "alpha",
    )
    .expect("catalog server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    // Touch beta: loads it (gen 1) and evicts alpha (loaded eagerly).
    let first = client.post("/graphs/beta/explore", b"").expect("beta explore");
    assert_eq!(first.status, 200);
    assert_eq!(first.text(), oracle_beta);

    // Touch alpha: transparently reopens it at gen 2 and evicts beta.
    let back = client.post("/graphs/alpha/explore", b"").expect("alpha explore");
    assert_eq!(back.status, 200);

    // And beta again: reopened at gen 2, byte-identical to its oracle
    // (the generation is in the cache key, so this cannot be a stale hit).
    let again = client.post("/graphs/beta/explore", b"").expect("beta explore again");
    assert_eq!(again.status, 200);
    assert_eq!(again.text(), oracle_beta, "reopened graph serves identical bytes");

    let stats = client::get(addr, "/stats").expect("stats");
    let doc = spade_core::json::parse(&stats.text()).expect("stats is JSON");
    let catalog = doc.get("catalog").expect("catalog object");
    let evictions =
        catalog.get("evictions_total").and_then(|v| v.as_usize()).expect("evictions_total");
    assert!(evictions >= 2, "each cross-graph touch evicts: {evictions}");
    assert_eq!(catalog.get("loaded").and_then(|v| v.as_usize()), Some(1), "budget holds one");

    // Reopens bump generations monotonically; /metrics agrees.
    let m = client::get(addr, "/metrics").expect("metrics").text();
    assert!(m.contains("spade_serve_graph_generation{graph=\"beta\"} 2"), "{m}");
    assert_eq!(metric_value(&m, "spade_serve_graphs_loaded"), Some(1), "{m}");
    assert_eq!(metric_value(&m, "spade_serve_graph_memory_budget_bytes"), Some(1), "{m}");

    assert!(server.shutdown(Duration::from_secs(10)), "drained in time");
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-graph reload: reloading one graph bumps only its generation and
/// retires only its cache partition; the other graph's cached entries
/// keep hitting.
#[test]
fn reload_is_per_graph() {
    let dir = temp_dir("reload");
    let alpha = write_snapshot(&dir, "alpha.spade", 100, 11);
    let beta = write_snapshot(&dir, "beta.spade", 90, 23);

    let server = Server::start_catalog(
        serve_config(1 << 20, 0),
        base_config(),
        vec![("alpha".to_owned(), alpha.clone()), ("beta".to_owned(), beta.clone())],
        "alpha",
    )
    .expect("catalog server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    // Warm both graphs' caches.
    let a1 = client.post("/graphs/alpha/explore", b"").expect("alpha");
    let b1 = client.post("/graphs/beta/explore", b"").expect("beta");
    assert_eq!((a1.status, b1.status), (200, 200));

    // Reload beta only.
    let r = client.post("/graphs/beta/reload", b"").expect("beta reload");
    assert_eq!(r.status, 200, "{}", r.text());
    let doc = spade_core::json::parse(&r.text()).expect("reload is JSON");
    assert_eq!(doc.get("graph").and_then(|g| g.as_str()), Some("beta"));
    assert_eq!(doc.get("generation").and_then(|g| g.as_usize()), Some(2));

    // Alpha's cache partition survived the beta reload; beta's was retired.
    let a2 = client.post("/graphs/alpha/explore", b"").expect("alpha again");
    assert_eq!(a2.header("x-cache").map(str::to_owned), Some("hit".to_owned()));
    assert_eq!(a2.body, a1.body);
    let b2 = client.post("/graphs/beta/explore", b"").expect("beta again");
    assert_eq!(b2.header("x-cache").map(str::to_owned), Some("miss".to_owned()));
    assert_eq!(b2.body, b1.body, "new generation, identical bytes");

    // Healthz still reports the default graph at generation 1.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert!(health.text().contains("\"generation\":1"), "{}", health.text());
    assert!(health.text().contains("\"graph\":\"alpha\""), "{}", health.text());

    assert!(server.shutdown(Duration::from_secs(10)), "drained in time");
    std::fs::remove_dir_all(&dir).ok();
}

/// Catalog misconfigurations fail startup with the typed error, and a
/// broken default snapshot still refuses to start (the one-graph
/// contract), while a broken *non-default* graph starts fine and answers
/// 503 on first touch without disturbing the healthy graph.
#[test]
fn startup_and_lazy_open_failure_modes() {
    let dir = temp_dir("failures");
    let good = write_snapshot(&dir, "good.spade", 80, 7);
    let broken = dir.join("broken.spade");
    std::fs::write(&broken, b"not a snapshot").expect("write broken file");

    // Unknown default graph.
    let err = match Server::start_catalog(
        serve_config(0, 0),
        base_config(),
        vec![("good".to_owned(), good.clone())],
        "nope",
    ) {
        Err(err) => err,
        Ok(_) => panic!("unknown default must fail"),
    };
    assert!(matches!(err, ServeError::Catalog(_)), "{err}");

    // A broken default fails startup eagerly.
    let err = match Server::start_catalog(
        serve_config(0, 0),
        base_config(),
        vec![("broken".to_owned(), broken.clone())],
        "broken",
    ) {
        Err(err) => err,
        Ok(_) => panic!("broken default must fail startup"),
    };
    assert!(matches!(err, ServeError::Snapshot(_)), "{err}");

    // A broken non-default graph: startup succeeds, the healthy graph
    // serves, and touching the broken one is a 503 (not a panic, not a
    // daemon exit).
    let server = Server::start_catalog(
        serve_config(0, 0),
        base_config(),
        vec![("good".to_owned(), good.clone()), ("broken".to_owned(), broken.clone())],
        "good",
    )
    .expect("healthy default starts");
    let addr = server.local_addr();
    let ok = client::post(addr, "/graphs/good/explore", b"").expect("good explore");
    assert_eq!(ok.status, 200);
    let bad = client::post(addr, "/graphs/broken/explore", b"").expect("broken explore");
    assert_eq!(bad.status, 503, "{}", bad.text());
    let ok2 = client::post(addr, "/graphs/good/explore", b"").expect("good still serves");
    assert_eq!(ok2.status, 200);

    assert!(server.shutdown(Duration::from_secs(10)), "drained in time");
    std::fs::remove_dir_all(&dir).ok();
}
