//! Loopback integration suite: the serve layer extension of the
//! determinism story, plus every error path the wire spec promises.
//!
//! The heart is `concurrent_explore_is_deterministic_and_matches_serial`:
//! N identical concurrent requests (cache disabled, so every one actually
//! evaluates) must return **byte-identical** bodies, equal to what the
//! serial `Spade::run_snapshot` path computes for the same snapshot — the
//! server adds concurrency, never changes answers.

use spade_core::{Spade, SpadeConfig};
use spade_serve::client::{self, Client};
use spade_serve::http::Limits;
use spade_serve::server::{ServeConfig, ServeError, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn base_config() -> SpadeConfig {
    SpadeConfig { k: 5, min_support: 0.3, min_cfs_size: 20, max_cfs: 6, ..Default::default() }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spade_serve_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes a snapshot of a small simulated corpus and returns its path.
fn write_snapshot(dir: &Path, file: &str, scale: usize, seed: u64) -> PathBuf {
    let g = spade_datagen::realistic::ceos(&spade_datagen::RealisticConfig { scale, seed });
    let nt = spade_rdf::write_ntriples(&g);
    let path = dir.join(file);
    Spade::new(base_config()).snapshot_ntriples(&nt, &path).expect("snapshot written");
    path
}

fn serve_config(cache_bytes: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        threads: 4,
        cache_bytes,
        ..Default::default()
    }
}

#[test]
fn concurrent_explore_is_deterministic_and_matches_serial() {
    let dir = temp_dir("determinism");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);

    // The serial oracle: the pre-split single-shot path over the same file.
    let expected = Spade::new(base_config())
        .run_snapshot(&path)
        .expect("serial run_snapshot")
        .to_json(false);

    // Cache disabled: every request must evaluate for real.
    let server = Server::start(serve_config(0), base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    let bodies: Vec<(u16, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut out = Vec::new();
                    for _ in 0..2 {
                        let r = client.post("/explore", b"").expect("explore");
                        out.push((r.status, r.body));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(bodies.len(), 16);
    for (status, body) in &bodies {
        assert_eq!(*status, 200);
        assert_eq!(
            std::str::from_utf8(body).expect("UTF-8 body"),
            expected,
            "every concurrent body equals the serial oracle, byte for byte"
        );
    }
    // The oracle has real content (not a vacuous equality).
    assert!(expected.contains("\"top\":[{"), "oracle has top aggregates: {expected}");

    // The auxiliary routes answer while traffic flows.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));
    let stats = client::get(addr, "/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let stats_doc = spade_core::json::parse(&stats.text()).expect("stats is JSON");
    assert_eq!(
        stats_doc.get("server").and_then(|s| s.get("workers")).and_then(|v| v.as_usize()),
        Some(4)
    );
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("spade_serve_explore_total 16"));

    assert!(server.shutdown(Duration::from_secs(10)), "drained in time");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn request_overrides_and_cache_hits_are_exact() {
    let dir = temp_dir("cache");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);
    let server =
        Server::start(serve_config(1 << 20), base_config(), &path).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    let first = client.post("/explore", br#"{"k": 2}"#).expect("first");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let second = client.post("/explore", br#"{"k": 2}"#).expect("second");
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hits are exact bytes");

    // Thread overrides share the cache entry (results are thread-invariant).
    let threaded = client.post("/explore", br#"{"k": 2, "threads": 3}"#).expect("threaded");
    assert_eq!(threaded.header("x-cache"), Some("hit"));
    assert_eq!(threaded.body, first.body);

    // A different request misses and differs.
    let other = client.post("/explore", br#"{"k": 1}"#).expect("other");
    assert_eq!(other.header("x-cache"), Some("miss"));
    assert_ne!(other.body, first.body);

    // Filters actually filter.
    let filtered = client
        .post("/explore", br#"{"measure_filter": ["netWorth"], "cfs_filter": ["type:CEO"]}"#)
        .expect("filtered");
    assert_eq!(filtered.status, 200);
    let doc = spade_core::json::parse(&filtered.text()).expect("filtered JSON");
    let top = doc.get("top").and_then(|t| t.as_array()).expect("top array");
    assert!(!top.is_empty());
    for entry in top {
        let cfs = entry.get("cfs").and_then(|v| v.as_str()).expect("cfs");
        assert!(cfs.contains("type:CEO"), "cfs filter honored: {cfs}");
        let mda = entry.get("mda").and_then(|v| v.as_str()).expect("mda");
        assert!(mda.contains("netWorth") || mda == "count(*)", "measure filter honored: {mda}");
    }

    let stats = client.get("/stats").expect("stats");
    let doc = spade_core::json::parse(&stats.text()).expect("stats JSON");
    let hits = doc.get("cache").and_then(|c| c.get("hits")).and_then(|v| v.as_usize());
    assert!(hits >= Some(2), "stats counted the hits: {hits:?}");

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_under_load_never_drops_requests() {
    let dir = temp_dir("reload");
    let path_a = write_snapshot(&dir, "a.spade", 100, 11);
    let path_b = write_snapshot(&dir, "b.spade", 120, 23);
    let expected_a =
        Spade::new(base_config()).run_snapshot(&path_a).expect("serial a").to_json(false);
    let expected_b =
        Spade::new(base_config()).run_snapshot(&path_b).expect("serial b").to_json(false);
    assert_ne!(expected_a, expected_b, "the two corpora must differ");

    // Cache disabled so requests in flight during the swap really evaluate.
    let server = Server::start(serve_config(0), base_config(), &path_a).expect("server starts");
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let outcome: (Vec<String>, u16) = std::thread::scope(|scope| {
        let loaders: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut bodies = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                        let r = client.post("/explore", b"").expect("explore under reload");
                        assert_eq!(r.status, 200, "no request fails during reload");
                        bodies.push(r.text());
                    }
                    bodies
                })
            })
            .collect();
        // Let traffic build up, swap snapshots mid-flight, let it settle.
        std::thread::sleep(Duration::from_millis(300));
        let body = format!(
            "{{\"path\": {}}}",
            spade_core::json::quote(path_b.to_str().expect("utf-8 path"),)
        );
        let reload = client::post(addr, "/reload", body.as_bytes()).expect("reload");
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let bodies = loaders.into_iter().flat_map(|h| h.join().expect("loader")).collect();
        (bodies, reload.status)
    });
    let (bodies, reload_status) = outcome;
    assert_eq!(reload_status, 200);
    assert!(!bodies.is_empty());
    // Every overlapping body belongs to exactly one generation — nothing
    // fails, nothing is a torn mix. (How many land on each side of the
    // swap is timing; the post-reload checks below pin the new state.)
    for body in &bodies {
        assert!(
            *body == expected_a || *body == expected_b,
            "a body matched neither generation: {body}"
        );
    }

    // The generation advanced and new requests serve B.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert!(health.text().contains("\"generation\":2"), "{}", health.text());
    let after = client::post(addr, "/explore", b"").expect("post-reload explore");
    assert_eq!(after.text(), expected_b);

    // A failed reload keeps the current generation serving.
    let bogus = dir.join("missing.spade");
    let body =
        format!("{{\"path\": {}}}", spade_core::json::quote(bogus.to_str().expect("utf-8")));
    let failed = client::post(addr, "/reload", body.as_bytes()).expect("failed reload");
    assert_eq!(failed.status, 409);
    assert!(failed.text().contains("keeping generation"));
    let still = client::post(addr, "/explore", b"").expect("explore after failed reload");
    assert_eq!(still.text(), expected_b);
    let health = client::get(addr, "/healthz").expect("healthz after failed reload");
    assert!(health.text().contains("\"generation\":2"));

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_paths_match_the_wire_spec() {
    let dir = temp_dir("errors");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);

    // A bad snapshot path fails startup with a typed error.
    match Server::start(serve_config(0), base_config(), dir.join("nope.spade")) {
        Err(ServeError::Snapshot(_)) => {}
        other => panic!("expected Snapshot error, got {other:?}", other = other.err()),
    }

    let config = ServeConfig {
        limits: Limits { max_head_bytes: 2048, max_body_bytes: 256, ..Limits::default() },
        ..serve_config(0)
    };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    // Malformed HTTP framing → 400 over the raw socket.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"definitely not http\r\n\r\n").expect("write garbage");
    let mut response = String::new();
    raw.read_to_string(&mut response).expect("read 400");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

    // Oversized body → 413.
    let big = vec![b' '; 1024];
    let r = client::post(addr, "/explore", &big).expect("oversized");
    assert_eq!(r.status, 413);

    // Oversized head → 431.
    let mut raw = TcpStream::connect(addr).expect("connect");
    let long = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "x".repeat(4096));
    raw.write_all(long.as_bytes()).expect("write long head");
    let mut response = String::new();
    raw.read_to_string(&mut response).expect("read 431");
    assert!(response.starts_with("HTTP/1.1 431 "), "{response}");

    // Unknown route → 404; wrong method → 405.
    assert_eq!(client::get(addr, "/nope").expect("404").status, 404);
    assert_eq!(client::get(addr, "/explore").expect("405").status, 405);
    assert_eq!(client::post(addr, "/healthz", b"").expect("405").status, 405);

    // Malformed and invalid JSON bodies → 400 with an error message.
    for bad in [br#"{"k": "#.as_slice(), br#"{"top_k": 3}"#, br#"{"interestingness": "magic"}"#]
    {
        let r = client::post(addr, "/explore", bad).expect("bad body");
        assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(bad));
        assert!(r.text().contains("\"error\":"));
    }

    // The server still answers normally after all that abuse.
    let ok = client::post(addr, "/explore", br#"{"k": 1}"#).expect("healthy again");
    assert_eq!(ok.status, 200);

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_exposition_is_prometheus_conformant() {
    let dir = temp_dir("conformance");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);
    let server =
        Server::start(serve_config(1 << 20), base_config(), &path).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    // Exercise every histogram family: a cold explore (request + stage
    // seconds), a warm repeat (the warm route series), and a reload.
    assert_eq!(client.post("/explore", b"").expect("cold").status, 200);
    assert_eq!(client.post("/explore", b"").expect("warm").status, 200);
    assert_eq!(client.post("/reload", b"").expect("reload").status, 200);

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    // The full parse-back: HELP/TYPE structure, monotone cumulative
    // buckets, +Inf == _count, finite sums — on the live exposition.
    let summary = spade_telemetry::conformance::check(&text)
        .unwrap_or_else(|e| panic!("non-conformant exposition: {e}\n{text}"));
    assert!(summary.histograms >= 3, "expected ≥3 histogram families: {summary:?}");
    assert!(text.contains("spade_serve_request_seconds_bucket{route=\"explore_cold\""));
    assert!(text.contains("spade_serve_request_seconds_bucket{route=\"explore_warm\""));
    assert!(text.contains("spade_serve_request_seconds_bucket{route=\"reload\""));
    assert!(text.contains("spade_serve_stage_seconds_bucket{stage=\"evaluation\""));
    // The deprecated `cancel_latency_ms_total` counter is gone; its
    // replacement histogram's `_sum`/`_count` carry the same information.
    assert!(!text.contains("spade_serve_cancel_latency_ms_total"));
    assert!(text.contains("# TYPE spade_serve_cancel_latency_seconds histogram"));
    // Queue waits sit far below a millisecond, so the fine bounds must
    // expose sub-ms buckets (the coarse floor of 0.5 ms would flatline).
    assert!(text.contains("spade_serve_queue_wait_seconds_bucket{le=\"0.00001\""));
    assert!(text.contains("spade_serve_cancel_latency_seconds_bucket{le=\"0.00001\""));
    // The ledger-fed per-graph cost-profile series: present, labeled by
    // graph and quantile, and label-sorted within each family.
    let (_, details) = spade_telemetry::conformance::check_detailed(&text)
        .unwrap_or_else(|e| panic!("non-conformant exposition: {e}\n{text}"));
    for family in [
        "spade_serve_graph_cost_units",
        "spade_serve_graph_latency_us",
        "spade_serve_graph_cost_ewma",
        "spade_serve_graph_latency_ewma_us",
        "spade_serve_slo_breach_total",
    ] {
        let detail = details
            .iter()
            .find(|d| d.name == family)
            .unwrap_or_else(|| panic!("family {family} missing from exposition"));
        assert!(!detail.series.is_empty(), "{family} has no series");
        assert!(
            detail.series.windows(2).all(|w| w[0] < w[1]),
            "{family} series not label-sorted: {:?}",
            detail.series
        );
    }
    assert!(text.contains("spade_serve_graph_cost_units{graph=\"corpus\",quantile=\"0.5\"}"));
    assert!(text.contains("spade_serve_graph_latency_us{graph=\"corpus\",quantile=\"0.99\"}"));

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn debug_queries_serves_ledger_and_scorecard() {
    let dir = temp_dir("ledger_route");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);
    let server =
        Server::start(serve_config(1 << 20), base_config(), &path).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    // One cold evaluation (profiled into the scorecard) and one cache hit
    // (ring-only): both must land in the ledger tail.
    assert_eq!(client.post("/explore", b"").expect("cold").status, 200);
    assert_eq!(client.post("/explore", b"").expect("warm").status, 200);

    let queries = client.get("/debug/queries").expect("debug/queries");
    assert_eq!(queries.status, 200);
    let doc = spade_core::json::parse(&queries.text()).expect("ledger JSON");
    assert_eq!(doc.get("recorded_total").and_then(|v| v.as_usize()), Some(2));
    assert!(doc.get("capacity").and_then(|v| v.as_usize()).is_some_and(|c| c >= 2));

    // Tail is newest first: the warm hit, then the cold miss. Both carry
    // the same key hash (identical canonical request).
    let entries = doc.get("entries").and_then(|e| e.as_array()).expect("entries");
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].get("cache").and_then(|v| v.as_str()), Some("hit"));
    assert_eq!(entries[1].get("cache").and_then(|v| v.as_str()), Some("miss"));
    assert_eq!(
        entries[0].get("key_hash").and_then(|v| v.as_str()),
        entries[1].get("key_hash").and_then(|v| v.as_str()),
        "identical requests share a canonical key hash"
    );
    for entry in entries {
        assert_eq!(entry.get("graph").and_then(|v| v.as_str()), Some("corpus"));
        assert_eq!(entry.get("class").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(entry.get("route").and_then(|v| v.as_str()), Some("explore"));
        assert!(entry.get("estimated_cost").and_then(|v| v.as_usize()).is_some_and(|c| c > 0));
    }
    // The cold run measured real work; the hit answered from memory.
    assert!(entries[1].get("actual_cost").and_then(|v| v.as_usize()).is_some_and(|c| c > 0));
    assert_eq!(entries[0].get("actual_cost").and_then(|v| v.as_usize()), Some(0));

    // Exactly the cold completion graded the estimator.
    let scorecard = doc.get("scorecard").expect("scorecard");
    assert_eq!(scorecard.get("count").and_then(|v| v.as_usize()), Some(1));
    let geo = scorecard.get("q_error_geo_mean").and_then(|v| v.as_f64()).expect("geo mean");
    assert!(geo.is_finite() && geo >= 1.0, "q-error geo-mean is finite and ≥1: {geo}");

    // The per-graph profile folded the same single cold request.
    let profiles = doc.get("cost_profiles").and_then(|p| p.as_array()).expect("profiles");
    assert_eq!(profiles.len(), 1);
    assert_eq!(profiles[0].get("graph").and_then(|v| v.as_str()), Some("corpus"));
    assert_eq!(profiles[0].get("requests").and_then(|v| v.as_usize()), Some(1));
    assert!(profiles[0]
        .get("cost_p50")
        .and_then(|v| v.as_f64())
        .is_some_and(|c| c.is_finite() && c > 0.0));

    // `/stats` mirrors the same profile and scorecard sections.
    let stats = client.get("/stats").expect("stats");
    let stats_doc = spade_core::json::parse(&stats.text()).expect("stats JSON");
    let stats_profiles =
        stats_doc.get("cost_profiles").and_then(|p| p.as_array()).expect("stats profiles");
    assert_eq!(stats_profiles.len(), 1);
    assert_eq!(
        stats_doc.get("scorecard").and_then(|s| s.get("count")).and_then(|v| v.as_usize()),
        Some(1)
    );

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

/// Reduces a `?profile=1` span tree to names + nesting + sibling order.
fn shape_of(spans: &[spade_core::json::Json], out: &mut String) {
    for span in spans {
        out.push_str(span.get("name").and_then(|n| n.as_str()).expect("span name"));
        if let Some(children) = span.get("children").and_then(|c| c.as_array()) {
            out.push('(');
            shape_of(children, out);
            out.push(')');
        }
        out.push(';');
    }
}

#[test]
fn profile_span_tree_shape_is_thread_invariant() {
    let dir = temp_dir("profile");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);
    let server =
        Server::start(serve_config(1 << 20), base_config(), &path).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    let baseline = client.post("/explore", b"").expect("baseline").text();
    let mut shapes: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let body = format!("{{\"threads\": {threads}}}");
        let r = client.post("/explore?profile=1", body.as_bytes()).expect("profiled");
        assert_eq!(r.status, 200);
        // Profiled responses bypass the cache in both directions.
        assert_eq!(r.header("x-cache"), Some("miss"));
        let text = r.text();
        assert!(text.contains("\"trace\":{"), "profile attaches the trace: {text}");
        let doc = spade_core::json::parse(&text).expect("profiled JSON");
        let trace = doc.get("trace").expect("trace key");
        assert!(trace.get("total_us").and_then(|v| v.as_usize()).is_some());
        let spans = trace.get("spans").and_then(|s| s.as_array()).expect("spans");
        let mut shape = String::new();
        shape_of(spans, &mut shape);
        shapes.push((threads, shape));
        // Minus the trace, the profiled body is the plain deterministic one.
        let report_only = &text[..text.rfind(",\"trace\":{").expect("trace suffix")];
        assert_eq!(format!("{report_only}}}"), baseline);
    }
    for w in shapes.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "span-tree shape differs between threads={} and threads={}",
            w[0].0, w[1].0
        );
    }
    // The tree really descends through the pipeline into the engine.
    let shape = &shapes[0].1;
    for stage in ["offline_analysis;", "cfs_selection(", "evaluation(", "lattice(", "topk;"] {
        assert!(shape.contains(stage), "missing {stage} in {shape}");
    }

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_log_retains_traced_requests() {
    let dir = temp_dir("slowlog");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);
    // Threshold 0: every cold explore qualifies for the slow log.
    let config = ServeConfig { slow_ms: 0, slow_capacity: 4, ..serve_config(0) };
    let server = Server::start(config, base_config(), &path).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    for _ in 0..3 {
        assert_eq!(client.post("/explore", b"").expect("explore").status, 200);
    }
    let slow = client.get("/debug/slow").expect("debug/slow");
    assert_eq!(slow.status, 200);
    let doc = spade_core::json::parse(&slow.text()).expect("slow log JSON");
    assert_eq!(doc.get("threshold_ms").and_then(|v| v.as_usize()), Some(0));
    assert_eq!(doc.get("capacity").and_then(|v| v.as_usize()), Some(4));
    let entries = doc.get("entries").and_then(|e| e.as_array()).expect("entries");
    assert_eq!(entries.len(), 3);
    for entry in entries {
        assert_eq!(entry.get("route").and_then(|v| v.as_str()), Some("explore"));
        // Entries are tagged with the graph they ran against (the legacy
        // route resolves to the default graph, named after the file stem).
        assert_eq!(entry.get("graph").and_then(|v| v.as_str()), Some("corpus"));
        assert_eq!(entry.get("status").and_then(|v| v.as_usize()), Some(200));
        assert_eq!(entry.get("generation").and_then(|v| v.as_usize()), Some(1));
        let trace = entry.get("trace").expect("trace");
        assert!(trace.get("spans").and_then(|s| s.as_array()).is_some_and(|s| !s.is_empty()));
    }
    // Stats exposes the slow-log configuration.
    let stats = client.get("/stats").expect("stats");
    let stats_doc = spade_core::json::parse(&stats.text()).expect("stats JSON");
    let slow_log = stats_doc.get("server").and_then(|s| s.get("slow_log")).expect("slow_log");
    assert_eq!(slow_log.get("capacity").and_then(|v| v.as_usize()), Some(4));

    assert!(server.shutdown(Duration::from_secs(10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_and_closes_the_listener() {
    let dir = temp_dir("shutdown");
    let path = write_snapshot(&dir, "corpus.spade", 100, 11);
    let server =
        Server::start(serve_config(1 << 20), base_config(), &path).expect("server starts");
    let addr = server.local_addr();

    // A keep-alive client parked idle must not block the drain.
    let mut idle = Client::new(addr);
    assert_eq!(idle.get("/healthz").expect("idle healthz").status, 200);

    assert_eq!(client::post(addr, "/explore", b"").expect("warm").status, 200);
    assert!(server.shutdown(Duration::from_secs(10)), "drained with an idle keep-alive");

    // The listener is gone: fresh connections are refused (or time out).
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "post-shutdown connections must fail");
    std::fs::remove_dir_all(&dir).ok();
}
