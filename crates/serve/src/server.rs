//! The daemon: accept loop, bounded worker pool, routing, hot reload,
//! graceful drain. See the crate root for the wire-protocol spec.

use crate::admission::AdmissionController;
use crate::cache::{CacheStats, ResultCache};
use crate::catalog::{Acquired, GraphCatalog, GraphEntry};
use crate::http::{self, Conn, HttpError, Limits, Request};
use spade_core::json::{self, Json, JsonWriter};
use spade_core::{Budget, OfflineState, RequestConfig, Spade, SpadeConfig, Trace};
use spade_telemetry::ledger::{key_hash, CacheOutcome, Ledger, LedgerRecord, ResponseClass};
use spade_telemetry::{
    Counter, Gauge, Histogram, Registry, SlowEntry, SlowLog, DURATION_BOUNDS_SECONDS,
    FINE_DURATION_BOUNDS_SECONDS,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs (the base pipeline config lives in [`Spade`]).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections (`0` = one per available core).
    /// Each in-flight request gets `threads / workers` evaluation workers
    /// (at least 1) via [`spade_parallel::split_budget`], so the pool as a
    /// whole never oversubscribes the `threads` budget.
    pub workers: usize,
    /// Total evaluation-thread budget shared by concurrent requests
    /// (`0` = all available cores).
    pub threads: usize,
    /// Result-cache byte budget (`0` disables the cache).
    pub cache_bytes: usize,
    /// Connections queued behind busy workers before the server answers
    /// 503 instead of queueing further.
    pub queue_depth: usize,
    /// HTTP framing limits.
    pub limits: Limits,
    /// How long a graceful shutdown waits for in-flight work to drain.
    pub drain_deadline: Duration,
    /// A keep-alive connection that completes no request within this long
    /// is closed, so idle clients cannot pin worker threads indefinitely.
    pub idle_timeout: Duration,
    /// Per-request evaluation deadline. An `/explore` still running when it
    /// expires is cooperatively cancelled (the [`Budget`] threaded through
    /// the engine unwinds at the next check point) and answered 504; the
    /// worker is recycled. `None` = no deadline.
    pub request_timeout: Option<Duration>,
    /// Admission-control capacity in estimated work units (see
    /// [`crate::admission::estimate_cost`]). An `/explore` whose estimate
    /// would push the in-flight sum past this is shed with 503 +
    /// `Retry-After` before any evaluation starts. `0` = always admit.
    /// Ignored when `admission_auto` is set.
    pub admission_capacity: u64,
    /// `--admission-capacity auto`: size the capacity from the observed
    /// cost profile instead of a static flag. Seeded from the default
    /// graph's default-request cost estimate at startup, then retargeted
    /// after each profiled cold explore to
    /// `workers × EWMA(estimated cost) × clamp(SLO / EWMA(latency), 1, 128)`
    /// — see the crate docs ("Adaptive admission & SLOs").
    pub admission_auto: bool,
    /// Latency SLO driving the `auto` capacity loop, the
    /// `spade_serve_slo_breach_total{graph=…}` burn-rate counters, and the
    /// early-stop budget (an SLO under 2 s tightens early-stop to a single
    /// batch). `None` = no SLO: `auto` assumes 1 s, nothing counts as a
    /// breach, early-stop stays as configured.
    pub latency_slo: Option<Duration>,
    /// How many completed-request records the analytics ledger ring
    /// retains for `GET /debug/queries` (profiles and the scorecard are
    /// streaming and unaffected by this bound).
    pub ledger_capacity: usize,
    /// Slow-request log threshold in milliseconds: an `/explore` must run
    /// at least this long to enter the bounded worst-N log served at
    /// `GET /debug/slow`. `0` (the default) logs the worst N regardless of
    /// absolute duration.
    pub slow_ms: u64,
    /// How many slow-request traces the log retains (the N worst).
    pub slow_capacity: usize,
    /// Emit one structured JSON log line per request to stderr (request
    /// id, method, route, status, generation, duration, failure cause).
    pub log_json: bool,
    /// Byte budget over the sum of loaded graph states' resident
    /// estimates (`--graph-memory-budget`). When a lazy open pushes the
    /// sum past it, the least-recently-used cold graphs are evicted —
    /// their mmap and heap state dropped, their cache partition retired —
    /// and transparently reopened on the next request. `0` = unlimited.
    pub graph_memory_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 0,
            threads: 0,
            cache_bytes: 64 * 1024 * 1024,
            queue_depth: 128,
            limits: Limits::default(),
            drain_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            request_timeout: None,
            admission_capacity: 0,
            admission_auto: false,
            latency_slo: None,
            ledger_capacity: 256,
            slow_ms: 0,
            slow_capacity: 32,
            log_json: false,
            graph_memory_budget: 0,
        }
    }
}

/// Everything that can fail starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// The initial snapshot did not load.
    Snapshot(spade_core::SnapshotPipelineError),
    /// The graph catalog configuration is invalid (no graphs, a bad or
    /// duplicate name, an unknown default graph).
    Catalog(String),
    /// The listener could not bind.
    Bind(io::Error),
    /// A worker or acceptor thread could not be spawned.
    Spawn(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Snapshot(e) => write!(f, "snapshot load failed: {e}"),
            ServeError::Catalog(m) => write!(f, "bad graph catalog: {m}"),
            ServeError::Bind(e) => write!(f, "bind failed: {e}"),
            ServeError::Spawn(e) => write!(f, "thread spawn failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One immutable generation of servable state. Requests clone the `Arc`
/// and keep using their generation even while a reload swaps in the next —
/// that is the whole hot-reload story: zero locks held during evaluation,
/// zero dropped in-flight requests.
pub struct ServingState {
    /// The loaded offline state (graph + statistics).
    pub offline: OfflineState,
    /// Monotonic reload counter, part of every cache key.
    pub generation: u64,
    /// Where this generation was loaded from.
    pub source: PathBuf,
}

/// The online pipeline stages recorded as top-level spans by
/// [`spade_core::Spade::run_on_traced`] — one `stage_seconds` histogram
/// series per name.
const STAGES: [&str; 6] = [
    "offline_analysis",
    "cfs_selection",
    "attribute_analysis",
    "enumeration",
    "evaluation",
    "topk",
];

/// Every server metric, registered on one [`Registry`] and rendered at
/// `GET /metrics`. Counters and gauges the server owns are updated at the
/// event site; values owned elsewhere (cache statistics, snapshot facts,
/// uptime) are mirrored into their handles at scrape time, so the rendered
/// exposition is always one consistent pass over the registry.
struct Metrics {
    registry: Registry,
    requests_total: Counter,
    explore_total: Counter,
    explore_cached_total: Counter,
    reload_total: Counter,
    http_errors_total: Counter,
    responses_4xx: Counter,
    responses_5xx: Counter,
    connections_total: Counter,
    rejected_busy_total: Counter,
    shed_total: Counter,
    timeouts_total: Counter,
    panics_total: Counter,
    /// Catalog counters: snapshot (re)opens and budget evictions, mirrored
    /// from the [`GraphCatalog`] at scrape time.
    graph_loads_total: Counter,
    graph_evictions_total: Counter,
    cache_hits_total: Counter,
    cache_misses_total: Counter,
    cache_evictions_total: Counter,
    in_flight: Gauge,
    queue_depth: Gauge,
    admission_capacity: Gauge,
    admission_inflight_cost: Gauge,
    cache_bytes: Gauge,
    snapshot_generation: Gauge,
    snapshot_triples: Gauge,
    /// Catalog gauges: how many of the registered graphs hold a loaded
    /// state, the resident-estimate sum, and the configured budget.
    graphs_loaded: Gauge,
    graph_resident_bytes_total: Gauge,
    graph_memory_budget_bytes: Gauge,
    uptime_seconds: Gauge,
    /// `request_seconds{route=...}`: explore_cold (full evaluation),
    /// explore_warm (cache hit), reload.
    request_seconds_explore_cold: Histogram,
    request_seconds_explore_warm: Histogram,
    request_seconds_reload: Histogram,
    /// `stage_seconds{stage=...}`, fed from every cold explore's trace —
    /// parallel to [`STAGES`].
    stage_seconds: Vec<Histogram>,
    /// Time connections spent queued between accept and worker pickup.
    queue_wait_seconds: Histogram,
    /// How far past its deadline a cancelled request ran before the
    /// cooperative unwind surfaced (replaces `cancel_latency_ms_total`).
    cancel_latency_seconds: Histogram,
}

impl Metrics {
    fn new() -> Metrics {
        let r = Registry::new();
        let b = &DURATION_BOUNDS_SECONDS;
        Metrics {
            requests_total: r.counter("spade_serve_requests_total", "Requests routed"),
            explore_total: r.counter("spade_serve_explore_total", "Explore requests"),
            explore_cached_total: r.counter(
                "spade_serve_explore_cached_total",
                "Explore requests answered from cache",
            ),
            reload_total: r.counter("spade_serve_reload_total", "Successful reloads"),
            http_errors_total: r
                .counter("spade_serve_http_errors_total", "Malformed or over-limit requests"),
            responses_4xx: r
                .counter("spade_serve_responses_4xx_total", "Responses with a 4xx status"),
            responses_5xx: r
                .counter("spade_serve_responses_5xx_total", "Responses with a 5xx status"),
            connections_total: r
                .counter("spade_serve_connections_total", "Accepted connections"),
            rejected_busy_total: r.counter(
                "spade_serve_rejected_busy_total",
                "Connections answered 503 at the accept queue",
            ),
            shed_total: r.counter(
                "spade_serve_shed_total",
                "Explore requests shed by admission control",
            ),
            timeouts_total: r.counter(
                "spade_serve_timeouts_total",
                "Explore requests cancelled at their deadline",
            ),
            panics_total: r.counter(
                "spade_serve_panics_total",
                "Requests answered 500 after a caught panic",
            ),
            graph_loads_total: r.counter(
                "spade_serve_graph_loads_total",
                "Snapshot (re)opens performed by the graph catalog",
            ),
            graph_evictions_total: r.counter(
                "spade_serve_graph_evictions_total",
                "Graph states evicted by the graph memory budget",
            ),
            cache_hits_total: r.counter("spade_serve_cache_hits_total", "Result-cache hits"),
            cache_misses_total: r
                .counter("spade_serve_cache_misses_total", "Result-cache misses"),
            cache_evictions_total: r
                .counter("spade_serve_cache_evictions_total", "Result-cache evictions"),
            in_flight: r.gauge("spade_serve_in_flight", "Requests currently executing"),
            queue_depth: r.gauge(
                "spade_serve_queue_depth",
                "Connections accepted but not yet picked up by a worker",
            ),
            admission_capacity: r.gauge(
                "spade_serve_admission_capacity",
                "Admission-control capacity in work units (0 = unlimited)",
            ),
            admission_inflight_cost: r.gauge(
                "spade_serve_admission_inflight_cost",
                "Estimated work units currently admitted",
            ),
            cache_bytes: r.gauge("spade_serve_cache_bytes", "Result-cache bytes in use"),
            snapshot_generation: r
                .gauge("spade_serve_snapshot_generation", "Current snapshot generation"),
            snapshot_triples: r.gauge("spade_serve_snapshot_triples", "Triples served"),
            graphs_loaded: r.gauge(
                "spade_serve_graphs_loaded",
                "Registered graphs currently holding a loaded state",
            ),
            graph_resident_bytes_total: r.gauge(
                "spade_serve_graph_resident_bytes_total",
                "Sum of loaded graph states' resident-byte estimates",
            ),
            graph_memory_budget_bytes: r.gauge(
                "spade_serve_graph_memory_budget_bytes",
                "Configured graph memory budget in bytes (0 = unlimited)",
            ),
            uptime_seconds: r
                .gauge("spade_serve_uptime_seconds", "Whole seconds since the server started"),
            request_seconds_explore_cold: r.histogram_with(
                "spade_serve_request_seconds",
                "Request handling latency by route",
                &[("route", "explore_cold")],
                b,
            ),
            request_seconds_explore_warm: r.histogram_with(
                "spade_serve_request_seconds",
                "Request handling latency by route",
                &[("route", "explore_warm")],
                b,
            ),
            request_seconds_reload: r.histogram_with(
                "spade_serve_request_seconds",
                "Request handling latency by route",
                &[("route", "reload")],
                b,
            ),
            stage_seconds: STAGES
                .iter()
                .map(|stage| {
                    r.histogram_with(
                        "spade_serve_stage_seconds",
                        "Per-pipeline-stage duration across cold explores",
                        &[("stage", stage)],
                        b,
                    )
                })
                .collect(),
            // Queue wait and cancel latency are sub-millisecond phenomena
            // on a healthy server; the fine bounds (10µs first bucket)
            // resolve them where the shared bounds' 500µs bucket cannot.
            queue_wait_seconds: r.histogram(
                "spade_serve_queue_wait_seconds",
                "Time connections waited between accept and worker pickup",
                &FINE_DURATION_BOUNDS_SECONDS,
            ),
            cancel_latency_seconds: r.histogram(
                "spade_serve_cancel_latency_seconds",
                "Time past the deadline before cooperative cancellation unwound",
                &FINE_DURATION_BOUNDS_SECONDS,
            ),
            registry: r,
        }
    }

    /// Feeds one cold explore's trace into the per-stage histograms.
    fn observe_stages(&self, trace: &Trace) {
        for (name, duration) in trace.stage_durations() {
            if let Some(i) = STAGES.iter().position(|s| *s == name) {
                self.stage_seconds[i].observe_duration(duration);
            }
        }
    }

    /// Registers the per-graph metric series for one catalog entry. Called
    /// exactly once per graph at startup (the registry treats a duplicate
    /// (name, labels) registration as a bug). Catalog entries are sorted by
    /// name and the quantile labels ascend, so every per-graph family's
    /// series render label-sorted (the `promcheck --require` invariant).
    fn for_graph(&self, name: &str) -> GraphMetrics {
        let labels: &[(&'static str, &str)] = &[("graph", name)];
        let quantile_gauges = |family: &'static str, help: &'static str| -> Vec<Gauge> {
            PROFILE_QUANTILES
                .iter()
                .map(|&q| {
                    self.registry.gauge_with(family, help, &[("graph", name), ("quantile", q)])
                })
                .collect()
        };
        GraphMetrics {
            explore_total: self.registry.counter_with(
                "spade_serve_graph_explore_total",
                "Explore requests routed to this graph",
                labels,
            ),
            slo_breach_total: self.registry.counter_with(
                "spade_serve_slo_breach_total",
                "Cold explores that exceeded the latency SLO",
                labels,
            ),
            generation: self.registry.gauge_with(
                "spade_serve_graph_generation",
                "Last published generation of this graph (0 = never loaded)",
                labels,
            ),
            resident_bytes: self.registry.gauge_with(
                "spade_serve_graph_resident_bytes",
                "Resident-byte estimate of this graph's loaded state (0 = cold)",
                labels,
            ),
            loaded: self.registry.gauge_with(
                "spade_serve_graph_loaded",
                "Whether this graph currently holds a loaded state",
                labels,
            ),
            cost_quantiles: quantile_gauges(
                "spade_serve_graph_cost_units",
                "Measured per-request cost (cells + facts) quantile sketch",
            ),
            latency_quantiles: quantile_gauges(
                "spade_serve_graph_latency_us",
                "Cold-explore latency quantile sketch in microseconds",
            ),
            cost_ewma: self.registry.gauge_with(
                "spade_serve_graph_cost_ewma",
                "EWMA of measured per-request cost (cells + facts)",
                labels,
            ),
            latency_ewma_us: self.registry.gauge_with(
                "spade_serve_graph_latency_ewma_us",
                "EWMA of cold-explore latency in microseconds",
                labels,
            ),
        }
    }
}

/// Quantile labels of the per-graph profile gauges, in ascending (and
/// lexicographically sorted) order, parallel to the ledger's sketch order.
const PROFILE_QUANTILES: [&str; 3] = ["0.5", "0.95", "0.99"];

/// Per-graph metric series (`{graph="…"}` labels), parallel to the
/// catalog's entry order. The cost-profile gauges mirror the request
/// ledger's streaming sketches at scrape time.
struct GraphMetrics {
    explore_total: Counter,
    slo_breach_total: Counter,
    generation: Gauge,
    resident_bytes: Gauge,
    loaded: Gauge,
    /// p50/p95/p99 of measured cost, parallel to [`PROFILE_QUANTILES`].
    cost_quantiles: Vec<Gauge>,
    /// p50/p95/p99 of cold-explore latency (µs).
    latency_quantiles: Vec<Gauge>,
    cost_ewma: Gauge,
    latency_ewma_us: Gauge,
}

struct Shared {
    engine: Spade,
    /// The base pipeline config, kept for admission-cost estimation.
    base: SpadeConfig,
    /// Graph name → lazily-opened serving state (per-graph generations,
    /// LRU eviction under `graph_memory_budget`). Legacy single-graph
    /// routes target `entries()[default_index]`.
    catalog: GraphCatalog,
    default_index: usize,
    /// Per-graph metric handles, parallel to `catalog.entries()`.
    graph_metrics: Vec<GraphMetrics>,
    cache: Mutex<ResultCache>,
    metrics: Metrics,
    /// Request analytics ledger: record ring + per-graph cost profiles +
    /// estimate-vs-actual scorecard (`GET /debug/queries`).
    ledger: Ledger,
    /// Bounded worst-N log of slow `/explore` traces (`GET /debug/slow`).
    slow: SlowLog,
    /// One structured JSON log line per request on stderr when set.
    log_json: bool,
    /// Monotone request-id source for logs and the slow log.
    request_ids: AtomicU64,
    shutdown: AtomicBool,
    limits: Limits,
    idle_timeout: Duration,
    request_timeout: Option<Duration>,
    admission: AdmissionController,
    /// Whether the `auto` loop retargets admission capacity from the
    /// ledger's overall cost profile after each profiled cold explore.
    admission_auto: bool,
    /// Latency SLO: breach counting, and the `auto` capacity target.
    latency_slo: Option<Duration>,
    /// Per-request evaluation-thread share (`threads / workers`, ≥ 1).
    request_threads: usize,
    workers: usize,
    started: Instant,
}

/// Profiled cold completions required before the `auto` loop trusts the
/// observed profile enough to retarget capacity; until then the seed
/// estimate (one default exploration of the default graph) holds.
const AUTO_MIN_SAMPLES: u64 = 4;

/// Retargets admission capacity from the ledger's overall cost profile:
/// `workers × EWMA(estimated cost) × headroom`, where `headroom =
/// clamp(SLO / EWMA(latency), 1, 128)`. Capacity is denominated in
/// *estimate* units — the same units [`crate::admission::estimate_cost`]
/// charges at admission time — so the estimate EWMA (not the measured
/// cells+facts EWMA) is the per-request unit. The latency ratio scales how
/// many such requests may run concurrently while each stays within the
/// SLO; the clamp keeps one fast profile from opening the gate to
/// effectively unlimited work.
fn retarget_capacity(shared: &Shared) {
    if !shared.admission_auto {
        return;
    }
    let profile = shared.ledger.overall_snapshot();
    if profile.requests < AUTO_MIN_SAMPLES {
        return;
    }
    let slo_us =
        shared.latency_slo.unwrap_or_else(|| Duration::from_secs(1)).as_micros() as f64;
    let headroom = (slo_us / profile.latency_ewma_us.max(1.0)).clamp(1.0, 128.0);
    let capacity = shared.workers as f64 * profile.est_cost_ewma.max(1.0) * headroom;
    shared.admission.set_capacity((capacity as u64).max(1));
}

/// A running server. Dropping the handle does **not** stop the daemon; call
/// [`Server::shutdown`] (or let the process exit).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the snapshot at `snapshot` **once** and starts serving it as
    /// a one-graph catalog (named after the file stem). Returns once the
    /// listener is bound and the workers are running.
    pub fn start(
        config: ServeConfig,
        base: SpadeConfig,
        snapshot: impl AsRef<Path>,
    ) -> Result<Server, ServeError> {
        let snapshot = snapshot.as_ref().to_path_buf();
        let name = default_graph_name(&snapshot);
        Self::start_catalog(config, base, vec![(name.clone(), snapshot)], &name)
    }

    /// Starts a multi-graph server over `graphs` (name → snapshot path;
    /// `--snapshot-dir` resolves to this via
    /// [`crate::catalog::scan_snapshot_dir`]). The `default_graph` answers
    /// the legacy single-graph routes and is loaded **eagerly** — a broken
    /// default snapshot still fails startup, as the one-graph server did —
    /// while every other graph opens lazily on first touch.
    pub fn start_catalog(
        config: ServeConfig,
        mut base: SpadeConfig,
        graphs: Vec<(String, PathBuf)>,
        default_graph: &str,
    ) -> Result<Server, ServeError> {
        // A latency SLO derives the early-stop budget: pruning is the one
        // knob that trades answer-set completeness for bounded evaluation
        // time, and a tight SLO (< 2 s) consumes the pruning sample in a
        // single batch so the decision lands as early as possible. Applied
        // once at startup — per-request toggling would fork the byte-exact
        // determinism contract that the result cache relies on.
        if config.latency_slo.is_some() && base.early_stop.is_none() {
            base = base.with_early_stop();
            if config.latency_slo < Some(Duration::from_secs(2)) {
                if let Some(es) = base.early_stop.as_mut() {
                    es.batches = 1;
                }
            }
        }
        let engine = Spade::new(base.clone());
        let threads = spade_parallel::resolve_threads(config.threads);
        let catalog = GraphCatalog::new(graphs, config.graph_memory_budget, threads)
            .map_err(ServeError::Catalog)?;
        let default_index = catalog.position(default_graph).ok_or_else(|| {
            ServeError::Catalog(format!(
                "default graph {default_graph:?} is not in the catalog"
            ))
        })?;
        let eager =
            catalog.acquire(&catalog.entries()[default_index]).map_err(ServeError::Snapshot)?;
        // `auto` seeds capacity with one default exploration of the default
        // graph — enough to admit real work immediately — and retargets
        // from the observed profile once AUTO_MIN_SAMPLES completions land.
        let admission_capacity = if config.admission_auto {
            crate::admission::estimate_cost(
                &eager.state.offline,
                &base,
                &RequestConfig::default(),
            )
        } else {
            config.admission_capacity
        };
        drop(eager);
        let metrics = Metrics::new();
        let graph_metrics: Vec<GraphMetrics> =
            catalog.entries().iter().map(|e| metrics.for_graph(e.name())).collect();
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Bind)?;
        let addr = listener.local_addr().map_err(ServeError::Bind)?;
        listener.set_nonblocking(true).map_err(ServeError::Bind)?;

        let workers = spade_parallel::resolve_threads(config.workers);
        // Split the evaluation budget across the pool: `workers` requests in
        // flight, each with `threads / workers` (≥ 1) evaluation workers.
        let (_, request_threads) = spade_parallel::split_budget(threads, workers);
        let catalog_names = catalog.names();
        let shared = Arc::new(Shared {
            engine,
            base,
            catalog,
            default_index,
            graph_metrics,
            cache: Mutex::new(ResultCache::new(config.cache_bytes)),
            metrics,
            ledger: Ledger::new(config.ledger_capacity, &catalog_names),
            slow: SlowLog::new(config.slow_ms, config.slow_capacity),
            log_json: config.log_json,
            request_ids: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            limits: config.limits,
            idle_timeout: config.idle_timeout,
            request_timeout: config.request_timeout,
            admission: AdmissionController::new(admission_capacity),
            admission_auto: config.admission_auto,
            latency_slo: config.latency_slo,
            request_threads,
            workers,
            started: Instant::now(),
        });

        // Each queued connection carries its enqueue instant so the worker
        // that picks it up can record the observed queue wait.
        let (tx, rx) =
            std::sync::mpsc::sync_channel::<(TcpStream, Instant)>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("spade-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .map_err(ServeError::Spawn)?;
            worker_handles.push(handle);
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("spade-serve-accept".to_owned())
            .spawn(move || accept_loop(&accept_shared, &listener, &tx))
            .map_err(ServeError::Spawn)?;

        Ok(Server { addr, shared, accept_handle: Some(accept_handle), worker_handles })
    }

    /// The bound address (the actual port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop: the acceptor closes, queued connections are
    /// drained, in-flight requests finish. Blocks up to `deadline`; returns
    /// `true` when everything drained in time (workers that exceed the
    /// deadline are abandoned, not killed — the process exit reaps them).
    pub fn shutdown(mut self, deadline: Duration) -> bool {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let end = Instant::now() + deadline;
        let mut drained = true;
        if let Some(handle) = self.accept_handle.take() {
            // The acceptor wakes at least every poll tick.
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            while !handle.is_finished() && Instant::now() < end {
                std::thread::sleep(Duration::from_millis(5));
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                drained = false;
            }
        }
        drained
    }

    /// Whether shutdown has been requested (exposed for signal wiring).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<(TcpStream, Instant)>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drops tx; workers drain the queue then stop
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections_total.inc();
                let _ = stream.set_nodelay(true);
                // The read timeout is the worker's poll tick: each tick it
                // re-checks the shutdown flag and the connection's idle
                // deadline (`ServeConfig::idle_timeout`).
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                // Gauge up *before* the send: once the stream is in the
                // channel a worker may pop (and decrement) immediately, and
                // incrementing after the fact would transiently underflow.
                shared.metrics.queue_depth.add(1);
                match tx.try_send((stream, Instant::now())) {
                    Ok(()) => {}
                    Err(TrySendError::Full((mut stream, _))) => {
                        shared.metrics.queue_depth.sub(1);
                        shared.metrics.rejected_busy_total.inc();
                        let body = error_body("server busy, retry later");
                        let _ = http::write_response(
                            &mut stream,
                            503,
                            "application/json",
                            &[("Retry-After", "1")],
                            body.as_bytes(),
                            false,
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        shared.metrics.queue_depth.sub(1);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        // Hold the receiver lock only while popping — never while serving.
        let next = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok((stream, enqueued)) => {
                shared.metrics.queue_depth.sub(1);
                shared.metrics.queue_wait_seconds.observe_duration(enqueued.elapsed());
                handle_connection(shared, stream);
            }
            // On shutdown the acceptor drops the sender; `recv` still hands
            // out everything already queued and only then disconnects, so
            // keeping to the recv path (instead of a one-shot `try_recv`
            // drain) cannot strand a connection the acceptor enqueued
            // moments after the flag flipped.
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let mut conn = Conn::new(stream);
    let mut last_request = Instant::now();
    loop {
        let request = match conn.read_request(&shared.limits) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Idle keep-alive poll tick (the 500 ms read timeout):
                // close when draining, and close connections that have not
                // completed a request within the idle deadline — otherwise
                // `workers` idle (or byte-trickling) clients would pin the
                // whole pool forever.
                if shared.shutdown.load(Ordering::SeqCst)
                    || last_request.elapsed() > shared.idle_timeout
                {
                    return;
                }
                continue;
            }
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                shared.metrics.http_errors_total.inc();
                let status = match e {
                    HttpError::BodyTooLarge => 413,
                    HttpError::HeadTooLarge => 431,
                    HttpError::ReadTimeout => 408,
                    _ => 400,
                };
                let body = error_body(&e.to_string());
                let _ = http::write_response(
                    conn.stream(),
                    status,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                // Consume what the peer already sent before closing:
                // closing with unread input triggers a TCP RST that can
                // destroy the error response before the peer reads it.
                drain_input(conn.stream());
                return; // framing is unreliable after a malformed request
            }
        };

        last_request = Instant::now();
        let request_id = shared.request_ids.fetch_add(1, Ordering::Relaxed) + 1;
        shared.metrics.requests_total.inc();
        shared.metrics.in_flight.add(1);
        let started = Instant::now();
        // Panic isolation: a panic anywhere in routing (a bug, or the
        // fault-injection hook in chaos tests) must cost one response, not
        // the daemon. `spade_parallel` propagates worker panics through its
        // scoped-thread joins, so catching here covers the whole engine.
        // State touched by the panicking request stays safe to reuse: the
        // poisoned-lock accessors use `PoisonError::into_inner`, and the
        // admission permit's RAII drop runs during the unwind.
        let (response, panicked) =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(shared, &request, request_id)
            })) {
                Ok(response) => (response, false),
                Err(_) => {
                    shared.metrics.panics_total.inc();
                    (Response::error(500, "internal error").closing(), true)
                }
            };
        shared.metrics.in_flight.sub(1);
        match response.status {
            400..=499 => shared.metrics.responses_4xx.inc(),
            500..=599 => shared.metrics.responses_5xx.inc(),
            _ => {}
        }
        if shared.log_json {
            log_request(shared, &request, request_id, &response, panicked, started.elapsed());
        }

        // Finish the in-flight response, but do not start another request
        // on this connection once draining, and recycle the connection after
        // a response that marked itself terminal (504/500).
        let keep_alive =
            request.keep_alive && !response.close && !shared.shutdown.load(Ordering::SeqCst);
        let extra: Vec<(&str, &str)> =
            response.headers.iter().map(|(k, v)| (*k, v.as_str())).collect();
        if http::write_response(
            conn.stream(),
            response.status,
            response.content_type,
            &extra,
            &response.body,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Reads and discards whatever the peer has already sent (bounded in bytes
/// and time) so the subsequent close sends FIN, not RST.
fn drain_input(stream: &mut TcpStream) {
    use io::Read as _;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut chunk = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

struct Response {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Arc<[u8]>,
    /// Close the connection after writing this response (used after a
    /// timeout or caught panic, where the worker should shed per-connection
    /// state rather than trust the peer's framing to stay aligned).
    close: bool,
    /// The graph generation this response was computed against, when the
    /// route pinned one (explore/reload); the structured log falls back to
    /// the default graph's generation otherwise.
    generation: Option<u64>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes().into(),
            close: false,
            generation: None,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(status, error_body(message))
    }

    fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    fn with_generation(mut self, generation: u64) -> Response {
        self.generation = Some(generation);
        self
    }
}

fn error_body(message: &str) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("error").string(message);
    w.end_object();
    w.finish()
}

/// One structured JSON log line per request on stderr (`--log-json`).
/// Fields: unix_ms, id, method, route (path without query), status,
/// generation, duration_ms, and a `cause` for failure statuses
/// (panic / timeout / shed).
fn log_request(
    shared: &Shared,
    request: &Request,
    id: u64,
    response: &Response,
    panicked: bool,
    elapsed: Duration,
) {
    let route = request.path.split('?').next().unwrap_or(&request.path);
    // Graph-scoped routes name their graph; the legacy unprefixed explore
    // and reload routes resolve to the default graph. Catalog-wide routes
    // (`/stats`, `/metrics`, …) carry no graph field.
    let graph = if let Some(rest) = route.strip_prefix("/graphs/") {
        rest.split('/').next().filter(|name| !name.is_empty())
    } else if matches!(route, "/explore" | "/reload") {
        Some(default_entry(shared).name())
    } else {
        None
    };
    let cause = if panicked {
        Some("panic")
    } else {
        match response.status {
            504 => Some("timeout"),
            503 => Some("shed"),
            _ => None,
        }
    };
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("unix_ms").uint(unix_ms());
    w.key("id").uint(id);
    w.key("method").string(&request.method);
    w.key("route").string(route);
    if let Some(graph) = graph {
        w.key("graph").string(graph);
    }
    w.key("status").uint(u64::from(response.status));
    w.key("generation")
        .uint(response.generation.unwrap_or_else(|| default_entry(shared).generation()));
    w.key("duration_ms").f64(elapsed.as_secs_f64() * 1e3);
    if let Some(cause) = cause {
        w.key("cause").string(cause);
    }
    w.end_object();
    eprintln!("{}", w.finish());
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn route(shared: &Shared, request: &Request, request_id: u64) -> Response {
    // The request target may carry a query string (`/explore?profile=1`);
    // routing matches on the path alone.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    // Graph-scoped routes: `/graphs/{name}/explore` and
    // `/graphs/{name}/reload`. The legacy unprefixed routes below are the
    // same handlers bound to the default graph.
    if let Some(rest) = path.strip_prefix("/graphs/") {
        let Some((name, action)) = rest.split_once('/') else {
            return Response::error(404, "no such route");
        };
        let Some(index) = shared.catalog.position(name) else {
            return Response::error(404, &format!("no such graph {name:?}"));
        };
        return match (request.method.as_str(), action) {
            ("POST", "explore") => explore(shared, index, query, &request.body, request_id),
            ("POST", "reload") => reload(shared, index, &request.body),
            (_, "explore" | "reload") => Response::error(405, "use POST for this route"),
            _ => Response::error(404, "no such route"),
        };
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/stats") => stats(shared),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/graphs") => graphs_index(shared),
        ("GET", "/debug/slow") => Response::json(200, shared.slow.to_json()),
        ("GET", "/debug/queries") => debug_queries(shared),
        ("POST", "/explore") => {
            explore(shared, shared.default_index, query, &request.body, request_id)
        }
        ("POST", "/reload") => reload(shared, shared.default_index, &request.body),
        (
            _,
            "/healthz" | "/stats" | "/metrics" | "/graphs" | "/debug/slow" | "/debug/queries",
        ) => Response::error(405, "use GET for this route"),
        (_, "/explore" | "/reload") => Response::error(405, "use POST for this route"),
        _ => Response::error(404, "no such route"),
    }
}

/// `true` when `name` appears in the query string as a truthy flag
/// (`name`, `name=1`, or `name=true`).
fn query_flag(query: &str, name: &str) -> bool {
    query.split('&').any(|pair| {
        let (key, value) = match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, "1"),
        };
        key == name && (value == "1" || value == "true")
    })
}

/// The graph name the legacy single-snapshot entry point registers: the
/// file stem when it is a valid routing name, else `"default"`.
fn default_graph_name(path: &Path) -> String {
    match path.file_stem().and_then(|s| s.to_str()) {
        Some(stem) if crate::catalog::valid_graph_name(stem) => stem.to_owned(),
        _ => "default".to_owned(),
    }
}

/// The catalog entry the legacy single-graph routes resolve to.
fn default_entry(shared: &Shared) -> &Arc<GraphEntry> {
    &shared.catalog.entries()[shared.default_index]
}

/// Retires the result-cache partitions of graphs the budget just evicted,
/// so their bytes stop occupying the shared cache immediately.
fn retire_cache_partitions(shared: &Shared, names: &[String]) {
    if names.is_empty() {
        return;
    }
    let mut cache = shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for name in names {
        cache.retire_prefix(&format!("{name}@"));
    }
}

fn healthz(shared: &Shared) -> Response {
    let entry = default_entry(shared);
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("status").string("ok");
    w.key("generation").uint(entry.generation());
    w.key("graph").string(entry.name());
    w.key("graphs").usize(shared.catalog.entries().len());
    w.end_object();
    Response::json(200, w.finish())
}

/// `GET /graphs`: the registered catalog, one object per graph.
fn graphs_index(shared: &Shared) -> Response {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("default").string(default_entry(shared).name());
    w.key("graphs").begin_array();
    for entry in shared.catalog.entries() {
        w.begin_object();
        w.key("name").string(entry.name());
        w.key("loaded").bool(entry.is_loaded());
        w.key("generation").uint(entry.generation());
        w.key("resident_bytes").uint(entry.resident_bytes());
        w.key("path").string(&entry.path().display().to_string());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Response::json(200, w.finish())
}

/// `GET /debug/queries`: the analytics ledger — newest-first record tail,
/// per-graph cost profiles, and the estimate-vs-actual scorecard grading
/// [`crate::admission::estimate_cost`] against measured work.
fn debug_queries(shared: &Shared) -> Response {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("capacity").usize(shared.ledger.capacity());
    w.key("recorded_total").uint(shared.ledger.recorded_total());
    w.key("admission_capacity").uint(shared.admission.capacity());
    w.key("scorecard").raw(&shared.ledger.scorecard_snapshot().to_json());
    w.key("overall").raw(&shared.ledger.overall_snapshot().to_json());
    w.key("cost_profiles").begin_array();
    for profile in shared.ledger.profile_snapshots() {
        w.raw(&profile.to_json());
    }
    w.end_array();
    w.key("entries").begin_array();
    for record in shared.ledger.tail(shared.ledger.capacity()) {
        w.raw(&record.to_json());
    }
    w.end_array();
    w.end_object();
    Response::json(200, w.finish())
}

fn stats(shared: &Shared) -> Response {
    let entry = default_entry(shared);
    let cache: CacheStats =
        shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
    let m = &shared.metrics;
    let mut w = JsonWriter::compact();
    w.begin_object();
    // The default graph's snapshot section keeps the one-graph shape; the
    // budget may have evicted even the default, so a cold slot reports its
    // last generation and no triple facts.
    w.key("snapshot").begin_object();
    w.key("graph").string(entry.name());
    match entry.peek() {
        Some(state) => {
            w.key("generation").uint(state.generation);
            w.key("source").string(&state.source.display().to_string());
            w.key("triples").usize(state.offline.graph.len());
            w.key("terms").usize(state.offline.graph.dict.len());
            w.key("properties").usize(state.offline.stats.property_count());
            w.key("load_ms").f64(state.offline.load_time.as_secs_f64() * 1e3);
        }
        None => {
            w.key("generation").uint(entry.generation());
            w.key("loaded").bool(false);
        }
    }
    w.end_object();
    w.key("catalog").begin_object();
    w.key("graphs").usize(shared.catalog.entries().len());
    w.key("loaded").usize(shared.catalog.loaded_count());
    w.key("resident_bytes").uint(shared.catalog.resident_bytes());
    w.key("budget_bytes").uint(shared.catalog.budget_bytes());
    w.key("loads_total").uint(shared.catalog.loads_total());
    w.key("evictions_total").uint(shared.catalog.evictions_total());
    w.end_object();
    w.key("graphs").begin_array();
    for entry in shared.catalog.entries() {
        w.begin_object();
        w.key("name").string(entry.name());
        w.key("loaded").bool(entry.is_loaded());
        w.key("generation").uint(entry.generation());
        w.key("resident_bytes").uint(entry.resident_bytes());
        w.end_object();
    }
    w.end_array();
    w.key("cache").begin_object();
    w.key("hits").uint(cache.hits);
    w.key("misses").uint(cache.misses);
    w.key("evictions").uint(cache.evictions);
    w.key("entries").usize(cache.entries);
    w.key("bytes").usize(cache.bytes);
    w.end_object();
    w.key("server").begin_object();
    w.key("workers").usize(shared.workers);
    w.key("request_threads").usize(shared.request_threads);
    w.key("uptime_secs").f64(shared.started.elapsed().as_secs_f64());
    w.key("requests_total").uint(m.requests_total.get());
    w.key("explore_total").uint(m.explore_total.get());
    w.key("explore_cached_total").uint(m.explore_cached_total.get());
    w.key("reload_total").uint(m.reload_total.get());
    w.key("connections_total").uint(m.connections_total.get());
    w.key("rejected_busy_total").uint(m.rejected_busy_total.get());
    w.key("shed_total").uint(m.shed_total.get());
    w.key("timeouts_total").uint(m.timeouts_total.get());
    w.key("panics_total").uint(m.panics_total.get());
    w.key("graph_loads_total").uint(shared.catalog.loads_total());
    w.key("graph_evictions_total").uint(shared.catalog.evictions_total());
    w.key("http_errors_total").uint(m.http_errors_total.get());
    w.key("responses_4xx").uint(m.responses_4xx.get());
    w.key("responses_5xx").uint(m.responses_5xx.get());
    w.key("in_flight").uint(m.in_flight.get());
    w.key("queue_depth").uint(m.queue_depth.get());
    w.key("admission_capacity").uint(shared.admission.capacity());
    w.key("admission_inflight_cost").uint(shared.admission.inflight());
    w.key("slow_log").begin_object();
    w.key("threshold_ms").uint(shared.slow.threshold_ms());
    w.key("capacity").usize(shared.slow.capacity());
    w.end_object();
    w.end_object();
    // Analytics ledger: per-graph observed cost/latency profiles and the
    // estimate-vs-actual scorecard (see `GET /debug/queries` for the tail).
    w.key("cost_profiles").begin_array();
    for profile in shared.ledger.profile_snapshots() {
        w.raw(&profile.to_json());
    }
    w.end_array();
    w.key("scorecard").raw(&shared.ledger.scorecard_snapshot().to_json());
    w.end_object();
    Response::json(200, w.finish())
}

fn metrics(shared: &Shared) -> Response {
    let cache = shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
    let m = &shared.metrics;
    // Mirror values owned outside the registry (cache statistics, catalog
    // state, admission state, uptime) into their handles, then render one
    // consistent exposition.
    m.cache_hits_total.mirror(cache.hits);
    m.cache_misses_total.mirror(cache.misses);
    m.cache_evictions_total.mirror(cache.evictions);
    m.cache_bytes.set(cache.bytes as u64);
    // The unlabeled snapshot gauges keep describing the default graph, so
    // one-graph dashboards read unchanged; per-graph series carry the rest.
    let entry = default_entry(shared);
    m.snapshot_generation.set(entry.generation());
    if let Some(state) = entry.peek() {
        m.snapshot_triples.set(state.offline.graph.len() as u64);
    }
    m.graph_loads_total.mirror(shared.catalog.loads_total());
    m.graph_evictions_total.mirror(shared.catalog.evictions_total());
    m.graphs_loaded.set(shared.catalog.loaded_count() as u64);
    m.graph_resident_bytes_total.set(shared.catalog.resident_bytes());
    m.graph_memory_budget_bytes.set(shared.catalog.budget_bytes());
    for (entry, gm) in shared.catalog.entries().iter().zip(&shared.graph_metrics) {
        gm.generation.set(entry.generation());
        gm.resident_bytes.set(entry.resident_bytes());
        gm.loaded.set(u64::from(entry.is_loaded()));
    }
    m.admission_capacity.set(shared.admission.capacity());
    m.admission_inflight_cost.set(shared.admission.inflight());
    // Ledger cost profiles → per-graph gauge series. `profile_snapshots()`
    // and `graph_metrics` are both ordered by sorted graph name, so the zip
    // pairs each profile with its gauges.
    for (profile, gm) in shared.ledger.profile_snapshots().iter().zip(&shared.graph_metrics) {
        gm.cost_ewma.set(profile.cost_ewma.round() as u64);
        gm.latency_ewma_us.set(profile.latency_ewma_us.round() as u64);
        let cost = [profile.cost_p50, profile.cost_p95, profile.cost_p99];
        let latency = [profile.latency_p50_us, profile.latency_p95_us, profile.latency_p99_us];
        for (gauge, value) in gm.cost_quantiles.iter().zip(cost) {
            gauge.set(value.round() as u64);
        }
        for (gauge, value) in gm.latency_quantiles.iter().zip(latency) {
            gauge.set(value.round() as u64);
        }
    }
    m.uptime_seconds.set(shared.started.elapsed().as_secs());
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        headers: Vec::new(),
        body: m.registry.render().into_bytes().into(),
        close: false,
        generation: None,
    }
}

/// Decodes an `/explore` body into a [`RequestConfig`]. Unknown keys are
/// rejected — silent typos (`"top_k"`) would otherwise degrade into default
/// answers.
fn parse_explore(body: &[u8]) -> Result<RequestConfig, String> {
    if body.is_empty() {
        return Ok(RequestConfig::default());
    }
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let entries = doc.as_object().ok_or("body must be a JSON object")?;
    let mut request = RequestConfig::default();
    let str_list = |v: &Json, what: &str| -> Result<Vec<String>, String> {
        v.as_array()
            .ok_or(format!("{what} must be an array of strings"))?
            .iter()
            .map(|s| {
                s.as_str().map(str::to_owned).ok_or(format!("{what} must contain only strings"))
            })
            .collect()
    };
    for (key, value) in entries {
        match key.as_str() {
            "k" => {
                request.k = Some(value.as_usize().ok_or("k must be a non-negative integer")?);
            }
            "interestingness" => {
                let name = value.as_str().ok_or("interestingness must be a string")?;
                request.interestingness =
                    Some(RequestConfig::interestingness_from_name(name).ok_or(
                        "interestingness must be variance, skewness, or kurtosis".to_owned(),
                    )?);
            }
            "min_support" => {
                let v = value.as_f64().ok_or("min_support must be a number")?;
                if !(0.0..=1.0).contains(&v) {
                    return Err("min_support must be within [0, 1]".to_owned());
                }
                request.min_support = Some(v);
            }
            "cfs_filter" => request.cfs_filter = str_list(value, "cfs_filter")?,
            "measure_filter" => request.measure_filter = str_list(value, "measure_filter")?,
            "threads" => {
                request.threads =
                    Some(value.as_usize().ok_or("threads must be a non-negative integer")?);
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    Ok(request)
}

/// Records an `/explore` outcome into the slow-request log, attaching the
/// request's rendered span tree.
#[allow(clippy::too_many_arguments)]
fn record_slow(
    shared: &Shared,
    request_id: u64,
    graph: &str,
    status: u16,
    generation: u64,
    elapsed: Duration,
    trace: &Trace,
) {
    shared.slow.record(SlowEntry {
        id: request_id,
        route: "explore",
        graph: graph.to_owned(),
        status,
        generation,
        duration_ms: elapsed.as_millis() as u64,
        unix_ms: unix_ms(),
        trace_json: format!(
            "{{\"total_us\":{},\"spans\":{}}}",
            elapsed.as_micros(),
            trace.spans_json()
        ),
    });
}

/// Writes one completed `/explore` into the analytics ledger, counts an SLO
/// breach when one is configured and exceeded, and (for profiled cold
/// completions under `--admission-capacity auto`) retargets the admission
/// capacity from the refreshed cost profile.
#[allow(clippy::too_many_arguments)]
fn record_request(
    shared: &Shared,
    index: usize,
    request_id: u64,
    generation: u64,
    canonical_key: &str,
    estimated_cost: u64,
    trace: Option<&Trace>,
    cache: CacheOutcome,
    class: ResponseClass,
    elapsed: Duration,
) {
    let (cells, facts) = trace.map(spade_core::work_counters).unwrap_or((0, 0));
    // A breach is a request that actually ran (hits answer from memory,
    // sheds never start) and finished — or was cancelled — over the SLO.
    let slo_breach = cache != CacheOutcome::Hit
        && matches!(class, ResponseClass::Ok | ResponseClass::Timeout)
        && shared.latency_slo.is_some_and(|slo| elapsed > slo);
    if slo_breach {
        shared.graph_metrics[index].slo_breach_total.inc();
    }
    shared.ledger.record(LedgerRecord {
        id: request_id,
        graph: shared.catalog.entries()[index].name().to_owned(),
        generation,
        route: "explore",
        key_hash: key_hash(canonical_key),
        estimated_cost,
        actual_cost: cells + facts,
        cells,
        facts,
        cache,
        class,
        total_us: elapsed.as_micros() as u64,
        stages: trace
            .map(|t| {
                t.stage_durations()
                    .into_iter()
                    .map(|(name, d)| (name, d.as_micros() as u64))
                    .collect()
            })
            .unwrap_or_default(),
        slo_breach,
        unix_ms: unix_ms(),
    });
    if class == ResponseClass::Ok && cache != CacheOutcome::Hit {
        retarget_capacity(shared);
    }
}

fn explore(
    shared: &Shared,
    index: usize,
    query: &str,
    body: &[u8],
    request_id: u64,
) -> Response {
    let started = Instant::now();
    shared.metrics.explore_total.inc();
    shared.graph_metrics[index].explore_total.inc();
    let entry = &shared.catalog.entries()[index];
    // `?profile=1` attaches the span tree to the response; `?timings=1`
    // appends the (nondeterministic) step timings. Either one makes the
    // body request-specific, so both bypass the byte-exact result cache.
    let profile = query_flag(query, "profile");
    let with_timings = query_flag(query, "timings");
    let bypass_cache = profile || with_timings;
    let mut request = match parse_explore(body) {
        Ok(request) => request,
        Err(message) => return Response::error(400, &message),
    };
    // Cap the per-request budget at this worker's share so N concurrent
    // requests use at most the server's total thread budget.
    request.threads = Some(match request.threads {
        Some(t) if t != 0 => t.min(shared.request_threads),
        _ => shared.request_threads,
    });

    // Pin this graph's state, (re)opening the snapshot if the slot is cold
    // (lazy first touch, or a budget eviction). A failed open is 503 — the
    // graph is registered but its snapshot is currently unreadable — and
    // leaves every other graph serving.
    let Acquired { state, evicted, .. } = match shared.catalog.acquire(entry) {
        Ok(acquired) => acquired,
        Err(e) => return Response::error(503, &format!("graph {:?}: {e}", entry.name())),
    };
    retire_cache_partitions(shared, &evicted);
    // The admission estimate is computed up front (pure arithmetic on the
    // offline stats) so every ledger record — hits and sheds included —
    // carries the estimate the scorecard grades.
    let cost = crate::admission::estimate_cost(&state.offline, &shared.base, &request);
    let canonical = request.canonical_key();
    // Keys are partitioned by graph and generation: `{graph}@g{gen}:{…}`,
    // so a reload or eviction strands (and `retire_prefix` reclaims) stale
    // bodies instead of ever serving them.
    let key = format!("{}@g{}:{}", entry.name(), state.generation, canonical);
    let cache_outcome = if bypass_cache { CacheOutcome::Bypass } else { CacheOutcome::Miss };
    if !bypass_cache {
        if let Some(hit) =
            shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key)
        {
            shared.metrics.explore_cached_total.inc();
            let elapsed = started.elapsed();
            shared.metrics.request_seconds_explore_warm.observe_duration(elapsed);
            record_request(
                shared,
                index,
                request_id,
                state.generation,
                &canonical,
                cost,
                None,
                CacheOutcome::Hit,
                ResponseClass::Ok,
                elapsed,
            );
            return Response {
                status: 200,
                content_type: "application/json",
                headers: vec![("X-Cache", "hit".to_owned())],
                body: hit,
                close: false,
                generation: Some(state.generation),
            };
        }
    }

    // Fault-injection site for chaos tests (no-op unless `SPADE_FAULT`
    // names it): fires after parsing and the cache, i.e. exactly where a
    // real evaluation bug would strike.
    spade_parallel::fault::fire("serve.explore");

    // Admission control: shed instead of queueing when the in-flight
    // estimate sum would exceed capacity. Cache hits above never reach
    // this point — answering from memory is always admissible.
    let Some(_permit) = shared.admission.try_admit(cost) else {
        shared.metrics.shed_total.inc();
        record_request(
            shared,
            index,
            request_id,
            state.generation,
            &canonical,
            cost,
            None,
            cache_outcome,
            ResponseClass::Shed,
            started.elapsed(),
        );
        let mut response =
            Response::error(503, "estimated cost exceeds admission capacity, retry later");
        response.headers.push(("Retry-After", "1".to_owned()));
        return response;
    };

    // The evaluation runs outside every lock, against this request's
    // pinned generation, under the per-request deadline (if configured).
    // Every cold explore is traced: the trace feeds the per-stage
    // histograms and the slow log, and is attached to the body on
    // `?profile=1`. Tracing is observation only — bodies stay bit-identical.
    let budget = match shared.request_timeout {
        Some(timeout) => Budget::with_deadline(timeout),
        None => Budget::unlimited(),
    };
    let trace = Trace::new();
    let report =
        match shared.engine.run_on_traced(&state.offline, &request, &budget, Some(&trace)) {
            Ok(report) => report,
            Err(cancelled) => {
                shared.metrics.timeouts_total.inc();
                if let Some(deadline) = budget.deadline() {
                    // How far past the deadline the cooperative unwind
                    // surfaced — the observable cancellation latency.
                    let over = Instant::now().saturating_duration_since(deadline);
                    shared.metrics.cancel_latency_seconds.observe_duration(over);
                }
                let elapsed = started.elapsed();
                record_slow(
                    shared,
                    request_id,
                    entry.name(),
                    504,
                    state.generation,
                    elapsed,
                    &trace,
                );
                record_request(
                    shared,
                    index,
                    request_id,
                    state.generation,
                    &canonical,
                    cost,
                    Some(&trace),
                    cache_outcome,
                    ResponseClass::Timeout,
                    elapsed,
                );
                return Response::error(
                    504,
                    &format!("request deadline exceeded ({cancelled})"),
                )
                .closing()
                .with_generation(state.generation);
            }
        };
    shared.metrics.observe_stages(&trace);
    let mut text = report.to_json(with_timings);
    if profile {
        // Splice the span tree into the report object under `"trace"`.
        text.truncate(text.len() - 1);
        text.push_str(&format!(
            ",\"trace\":{{\"total_us\":{},\"spans\":{}}}}}",
            trace.elapsed_us(),
            trace.spans_json()
        ));
    }
    let body: Arc<[u8]> = text.into_bytes().into();
    // Skip the insert when the body is request-specific (profile/timings)
    // or when a reload or eviction bumped this graph's generation
    // mid-evaluation: the old-generation key could never be looked up
    // again, so storing it would only waste cache budget (and could evict
    // live entries).
    if !bypass_cache && entry.generation() == state.generation {
        shared
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&body));
    }
    let elapsed = started.elapsed();
    shared.metrics.request_seconds_explore_cold.observe_duration(elapsed);
    record_slow(shared, request_id, entry.name(), 200, state.generation, elapsed, &trace);
    record_request(
        shared,
        index,
        request_id,
        state.generation,
        &canonical,
        cost,
        Some(&trace),
        cache_outcome,
        ResponseClass::Ok,
        elapsed,
    );
    Response {
        status: 200,
        content_type: "application/json",
        headers: vec![("X-Cache", "miss".to_owned())],
        body,
        close: false,
        generation: Some(state.generation),
    }
}

fn reload(shared: &Shared, index: usize, body: &[u8]) -> Response {
    let started = Instant::now();
    let entry = &shared.catalog.entries()[index];
    // `None` reloads the graph's current path; the per-slot mutex inside
    // the catalog serializes reloads of the same graph while `/explore`
    // traffic (and reloads of *other* graphs) proceed untouched.
    let path = if body.is_empty() {
        None
    } else {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        match json::parse(text) {
            Ok(doc) => match doc.get("path") {
                Some(p) => match p.as_str() {
                    Some(p) => Some(PathBuf::from(p)),
                    None => return Response::error(400, "path must be a string"),
                },
                None => None,
            },
            Err(e) => return Response::error(400, &e.to_string()),
        }
    };

    // Fault-injection site for chaos tests: a simulated I/O failure takes
    // the same keep-the-old-generation path as a genuinely unreadable file.
    if let Some(e) = spade_parallel::fault::io_error("serve.reload") {
        return Response::error(409, &format!("reload failed, keeping generation: {e}"));
    }
    match shared.catalog.reload(entry, path) {
        Ok(Acquired { state, evicted, .. }) => {
            // Old-generation entries of this graph can never be requested
            // again (keys embed the generation); retire its whole cache
            // partition now instead of letting it age out of the byte
            // budget — plus the partitions of anything the budget evicted.
            {
                let mut cache =
                    shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                cache.retire_prefix(&format!("{}@", entry.name()));
                for name in &evicted {
                    cache.retire_prefix(&format!("{name}@"));
                }
            }
            shared.metrics.reload_total.inc();
            shared.metrics.request_seconds_reload.observe_duration(started.elapsed());
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("status").string("reloaded");
            w.key("graph").string(entry.name());
            w.key("generation").uint(state.generation);
            w.key("load_ms").f64(state.offline.load_time.as_secs_f64() * 1e3);
            w.end_object();
            Response::json(200, w.finish()).with_generation(state.generation)
        }
        // The old state keeps serving untouched; 409 tells the operator the
        // swap did not happen.
        Err(e) => Response::error(409, &format!("reload failed, keeping generation: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_explore_accepts_full_document() {
        let body = br#"{"k": 4, "interestingness": "skewness", "min_support": 0.25,
                        "cfs_filter": ["type:CEO"], "measure_filter": ["netWorth"],
                        "threads": 2}"#;
        let r = parse_explore(body).unwrap();
        assert_eq!(r.k, Some(4));
        assert_eq!(r.interestingness.map(|h| h.label()), Some("skewness"));
        assert_eq!(r.min_support, Some(0.25));
        assert_eq!(r.cfs_filter, vec!["type:CEO".to_owned()]);
        assert_eq!(r.measure_filter, vec!["netWorth".to_owned()]);
        assert_eq!(r.threads, Some(2));
        assert_eq!(parse_explore(b"").unwrap(), RequestConfig::default());
        assert_eq!(parse_explore(b"{}").unwrap(), RequestConfig::default());
    }

    #[test]
    fn parse_explore_rejects_bad_documents() {
        for bad in [
            br#"{"k": -1}"#.as_slice(),
            br#"{"k": "three"}"#,
            br#"{"interestingness": "magic"}"#,
            br#"{"min_support": 1.5}"#,
            br#"{"cfs_filter": "not-a-list"}"#,
            br#"{"cfs_filter": [1]}"#,
            br#"{"top_k": 3}"#,
            br#"[1,2,3]"#,
            br#"{"k": 3"#,
            &[0xff, 0xfe],
        ] {
            assert!(parse_explore(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }
}
