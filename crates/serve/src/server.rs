//! The daemon: accept loop, bounded worker pool, routing, hot reload,
//! graceful drain. See the crate root for the wire-protocol spec.

use crate::admission::AdmissionController;
use crate::cache::{CacheStats, ResultCache};
use crate::http::{self, Conn, HttpError, Limits, Request};
use spade_core::json::{self, Json, JsonWriter};
use spade_core::{Budget, OfflineState, RequestConfig, Spade, SpadeConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs (the base pipeline config lives in [`Spade`]).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections (`0` = one per available core).
    /// Each in-flight request gets `threads / workers` evaluation workers
    /// (at least 1) via [`spade_parallel::split_budget`], so the pool as a
    /// whole never oversubscribes the `threads` budget.
    pub workers: usize,
    /// Total evaluation-thread budget shared by concurrent requests
    /// (`0` = all available cores).
    pub threads: usize,
    /// Result-cache byte budget (`0` disables the cache).
    pub cache_bytes: usize,
    /// Connections queued behind busy workers before the server answers
    /// 503 instead of queueing further.
    pub queue_depth: usize,
    /// HTTP framing limits.
    pub limits: Limits,
    /// How long a graceful shutdown waits for in-flight work to drain.
    pub drain_deadline: Duration,
    /// A keep-alive connection that completes no request within this long
    /// is closed, so idle clients cannot pin worker threads indefinitely.
    pub idle_timeout: Duration,
    /// Per-request evaluation deadline. An `/explore` still running when it
    /// expires is cooperatively cancelled (the [`Budget`] threaded through
    /// the engine unwinds at the next check point) and answered 504; the
    /// worker is recycled. `None` = no deadline.
    pub request_timeout: Option<Duration>,
    /// Admission-control capacity in estimated work units (see
    /// [`crate::admission::estimate_cost`]). An `/explore` whose estimate
    /// would push the in-flight sum past this is shed with 503 +
    /// `Retry-After` before any evaluation starts. `0` = always admit.
    pub admission_capacity: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 0,
            threads: 0,
            cache_bytes: 64 * 1024 * 1024,
            queue_depth: 128,
            limits: Limits::default(),
            drain_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            request_timeout: None,
            admission_capacity: 0,
        }
    }
}

/// Everything that can fail starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// The initial snapshot did not load.
    Snapshot(spade_core::SnapshotPipelineError),
    /// The listener could not bind.
    Bind(io::Error),
    /// A worker or acceptor thread could not be spawned.
    Spawn(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Snapshot(e) => write!(f, "snapshot load failed: {e}"),
            ServeError::Bind(e) => write!(f, "bind failed: {e}"),
            ServeError::Spawn(e) => write!(f, "thread spawn failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One immutable generation of servable state. Requests clone the `Arc`
/// and keep using their generation even while a reload swaps in the next —
/// that is the whole hot-reload story: zero locks held during evaluation,
/// zero dropped in-flight requests.
pub struct ServingState {
    /// The loaded offline state (graph + statistics).
    pub offline: OfflineState,
    /// Monotonic reload counter, part of every cache key.
    pub generation: u64,
    /// Where this generation was loaded from.
    pub source: PathBuf,
}

#[derive(Default)]
struct Metrics {
    requests_total: AtomicU64,
    explore_total: AtomicU64,
    explore_cached_total: AtomicU64,
    reload_total: AtomicU64,
    http_errors_total: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    connections_total: AtomicU64,
    rejected_busy_total: AtomicU64,
    shed_total: AtomicU64,
    timeouts_total: AtomicU64,
    panics_total: AtomicU64,
    /// Total milliseconds requests kept running *past* their deadline before
    /// the cooperative cancellation unwound them — the budget-check
    /// granularity made observable (divide by `timeouts_total` for the mean).
    cancel_latency_ms_total: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
}

struct Shared {
    engine: Spade,
    /// The base pipeline config, kept for admission-cost estimation.
    base: SpadeConfig,
    serving: RwLock<Arc<ServingState>>,
    cache: Mutex<ResultCache>,
    /// Serializes reloads (concurrent `/reload`s would race the generation
    /// bump); never held while serving `/explore`.
    reload: Mutex<()>,
    metrics: Metrics,
    shutdown: AtomicBool,
    limits: Limits,
    idle_timeout: Duration,
    request_timeout: Option<Duration>,
    admission: AdmissionController,
    /// Resolved total evaluation-thread budget.
    eval_threads: usize,
    /// Per-request evaluation-thread share (`threads / workers`, ≥ 1).
    request_threads: usize,
    workers: usize,
    started: Instant,
}

/// A running server. Dropping the handle does **not** stop the daemon; call
/// [`Server::shutdown`] (or let the process exit).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the snapshot at `snapshot` **once** and starts serving it.
    /// Returns once the listener is bound and the workers are running.
    pub fn start(
        config: ServeConfig,
        base: SpadeConfig,
        snapshot: impl AsRef<Path>,
    ) -> Result<Server, ServeError> {
        let snapshot = snapshot.as_ref().to_path_buf();
        let engine = Spade::new(base.clone());
        let threads = spade_parallel::resolve_threads(config.threads);
        let offline = OfflineState::open(&snapshot, threads).map_err(ServeError::Snapshot)?;
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Bind)?;
        let addr = listener.local_addr().map_err(ServeError::Bind)?;
        listener.set_nonblocking(true).map_err(ServeError::Bind)?;

        let workers = spade_parallel::resolve_threads(config.workers);
        // Split the evaluation budget across the pool: `workers` requests in
        // flight, each with `threads / workers` (≥ 1) evaluation workers.
        let (_, request_threads) = spade_parallel::split_budget(threads, workers);
        let shared = Arc::new(Shared {
            engine,
            base,
            serving: RwLock::new(Arc::new(ServingState {
                offline,
                generation: 1,
                source: snapshot,
            })),
            cache: Mutex::new(ResultCache::new(config.cache_bytes)),
            reload: Mutex::new(()),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            limits: config.limits,
            idle_timeout: config.idle_timeout,
            request_timeout: config.request_timeout,
            admission: AdmissionController::new(config.admission_capacity),
            eval_threads: threads,
            request_threads,
            workers,
            started: Instant::now(),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("spade-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .map_err(ServeError::Spawn)?;
            worker_handles.push(handle);
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("spade-serve-accept".to_owned())
            .spawn(move || accept_loop(&accept_shared, &listener, &tx))
            .map_err(ServeError::Spawn)?;

        Ok(Server { addr, shared, accept_handle: Some(accept_handle), worker_handles })
    }

    /// The bound address (the actual port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop: the acceptor closes, queued connections are
    /// drained, in-flight requests finish. Blocks up to `deadline`; returns
    /// `true` when everything drained in time (workers that exceed the
    /// deadline are abandoned, not killed — the process exit reaps them).
    pub fn shutdown(mut self, deadline: Duration) -> bool {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let end = Instant::now() + deadline;
        let mut drained = true;
        if let Some(handle) = self.accept_handle.take() {
            // The acceptor wakes at least every poll tick.
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            while !handle.is_finished() && Instant::now() < end {
                std::thread::sleep(Duration::from_millis(5));
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                drained = false;
            }
        }
        drained
    }

    /// Whether shutdown has been requested (exposed for signal wiring).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drops tx; workers drain the queue then stop
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                // The read timeout is the worker's poll tick: each tick it
                // re-checks the shutdown flag and the connection's idle
                // deadline (`ServeConfig::idle_timeout`).
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                // Gauge up *before* the send: once the stream is in the
                // channel a worker may pop (and decrement) immediately, and
                // incrementing after the fact would transiently underflow.
                shared.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        shared.metrics.rejected_busy_total.fetch_add(1, Ordering::Relaxed);
                        let body = error_body("server busy, retry later");
                        let _ = http::write_response(
                            &mut stream,
                            503,
                            "application/json",
                            &[("Retry-After", "1")],
                            body.as_bytes(),
                            false,
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only while popping — never while serving.
        let next = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok(stream) => {
                shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                handle_connection(shared, stream);
            }
            // On shutdown the acceptor drops the sender; `recv` still hands
            // out everything already queued and only then disconnects, so
            // keeping to the recv path (instead of a one-shot `try_recv`
            // drain) cannot strand a connection the acceptor enqueued
            // moments after the flag flipped.
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let mut conn = Conn::new(stream);
    let mut last_request = Instant::now();
    loop {
        let request = match conn.read_request(&shared.limits) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Idle keep-alive poll tick (the 500 ms read timeout):
                // close when draining, and close connections that have not
                // completed a request within the idle deadline — otherwise
                // `workers` idle (or byte-trickling) clients would pin the
                // whole pool forever.
                if shared.shutdown.load(Ordering::SeqCst)
                    || last_request.elapsed() > shared.idle_timeout
                {
                    return;
                }
                continue;
            }
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                shared.metrics.http_errors_total.fetch_add(1, Ordering::Relaxed);
                let status = match e {
                    HttpError::BodyTooLarge => 413,
                    HttpError::HeadTooLarge => 431,
                    HttpError::ReadTimeout => 408,
                    _ => 400,
                };
                let body = error_body(&e.to_string());
                let _ = http::write_response(
                    conn.stream(),
                    status,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                // Consume what the peer already sent before closing:
                // closing with unread input triggers a TCP RST that can
                // destroy the error response before the peer reads it.
                drain_input(conn.stream());
                return; // framing is unreliable after a malformed request
            }
        };

        last_request = Instant::now();
        shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        // Panic isolation: a panic anywhere in routing (a bug, or the
        // fault-injection hook in chaos tests) must cost one response, not
        // the daemon. `spade_parallel` propagates worker panics through its
        // scoped-thread joins, so catching here covers the whole engine.
        // State touched by the panicking request stays safe to reuse: the
        // poisoned-lock accessors use `PoisonError::into_inner`, and the
        // admission permit's RAII drop runs during the unwind.
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &request)))
                .unwrap_or_else(|_| {
                    shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                    Response::error(500, "internal error").closing()
                });
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        match response.status {
            400..=499 => shared.metrics.responses_4xx.fetch_add(1, Ordering::Relaxed),
            500..=599 => shared.metrics.responses_5xx.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };

        // Finish the in-flight response, but do not start another request
        // on this connection once draining, and recycle the connection after
        // a response that marked itself terminal (504/500).
        let keep_alive =
            request.keep_alive && !response.close && !shared.shutdown.load(Ordering::SeqCst);
        let extra: Vec<(&str, &str)> =
            response.headers.iter().map(|(k, v)| (*k, v.as_str())).collect();
        if http::write_response(
            conn.stream(),
            response.status,
            response.content_type,
            &extra,
            &response.body,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Reads and discards whatever the peer has already sent (bounded in bytes
/// and time) so the subsequent close sends FIN, not RST.
fn drain_input(stream: &mut TcpStream) {
    use io::Read as _;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut chunk = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

struct Response {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Arc<[u8]>,
    /// Close the connection after writing this response (used after a
    /// timeout or caught panic, where the worker should shed per-connection
    /// state rather than trust the peer's framing to stay aligned).
    close: bool,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes().into(),
            close: false,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(status, error_body(message))
    }

    fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

fn error_body(message: &str) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("error").string(message);
    w.end_object();
    w.finish()
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/stats") => stats(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/explore") => explore(shared, &request.body),
        ("POST", "/reload") => reload(shared, &request.body),
        (_, "/healthz" | "/stats" | "/metrics") => {
            Response::error(405, "use GET for this route")
        }
        (_, "/explore" | "/reload") => Response::error(405, "use POST for this route"),
        _ => Response::error(404, "no such route"),
    }
}

fn current(shared: &Shared) -> Arc<ServingState> {
    Arc::clone(&shared.serving.read().unwrap_or_else(std::sync::PoisonError::into_inner))
}

fn healthz(shared: &Shared) -> Response {
    let state = current(shared);
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("status").string("ok");
    w.key("generation").uint(state.generation);
    w.end_object();
    Response::json(200, w.finish())
}

fn stats(shared: &Shared) -> Response {
    let state = current(shared);
    let cache: CacheStats =
        shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
    let m = &shared.metrics;
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("snapshot").begin_object();
    w.key("generation").uint(state.generation);
    w.key("source").string(&state.source.display().to_string());
    w.key("triples").usize(state.offline.graph.len());
    w.key("terms").usize(state.offline.graph.dict.len());
    w.key("properties").usize(state.offline.stats.property_count());
    w.key("load_ms").f64(state.offline.load_time.as_secs_f64() * 1e3);
    w.end_object();
    w.key("cache").begin_object();
    w.key("hits").uint(cache.hits);
    w.key("misses").uint(cache.misses);
    w.key("evictions").uint(cache.evictions);
    w.key("entries").usize(cache.entries);
    w.key("bytes").usize(cache.bytes);
    w.end_object();
    w.key("server").begin_object();
    w.key("workers").usize(shared.workers);
    w.key("request_threads").usize(shared.request_threads);
    w.key("uptime_secs").f64(shared.started.elapsed().as_secs_f64());
    w.key("requests_total").uint(m.requests_total.load(Ordering::Relaxed));
    w.key("explore_total").uint(m.explore_total.load(Ordering::Relaxed));
    w.key("explore_cached_total").uint(m.explore_cached_total.load(Ordering::Relaxed));
    w.key("reload_total").uint(m.reload_total.load(Ordering::Relaxed));
    w.key("connections_total").uint(m.connections_total.load(Ordering::Relaxed));
    w.key("rejected_busy_total").uint(m.rejected_busy_total.load(Ordering::Relaxed));
    w.key("shed_total").uint(m.shed_total.load(Ordering::Relaxed));
    w.key("timeouts_total").uint(m.timeouts_total.load(Ordering::Relaxed));
    w.key("panics_total").uint(m.panics_total.load(Ordering::Relaxed));
    w.key("cancel_latency_ms_total").uint(m.cancel_latency_ms_total.load(Ordering::Relaxed));
    w.key("http_errors_total").uint(m.http_errors_total.load(Ordering::Relaxed));
    w.key("responses_4xx").uint(m.responses_4xx.load(Ordering::Relaxed));
    w.key("responses_5xx").uint(m.responses_5xx.load(Ordering::Relaxed));
    w.key("in_flight").uint(m.in_flight.load(Ordering::Relaxed));
    w.key("queue_depth").uint(m.queue_depth.load(Ordering::Relaxed));
    w.key("admission_capacity").uint(shared.admission.capacity());
    w.key("admission_inflight_cost").uint(shared.admission.inflight());
    w.end_object();
    w.end_object();
    Response::json(200, w.finish())
}

fn metrics(shared: &Shared) -> Response {
    let state = current(shared);
    let cache = shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
    let m = &shared.metrics;
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP spade_serve_{name} {help}\n# TYPE spade_serve_{name} counter\n\
             spade_serve_{name} {value}\n",
        ));
    };
    counter("requests_total", "Requests routed", m.requests_total.load(Ordering::Relaxed));
    counter("explore_total", "Explore requests", m.explore_total.load(Ordering::Relaxed));
    counter(
        "explore_cached_total",
        "Explore requests answered from cache",
        m.explore_cached_total.load(Ordering::Relaxed),
    );
    counter("reload_total", "Successful reloads", m.reload_total.load(Ordering::Relaxed));
    counter(
        "connections_total",
        "Accepted connections",
        m.connections_total.load(Ordering::Relaxed),
    );
    counter(
        "rejected_busy_total",
        "Connections answered 503 at the accept queue",
        m.rejected_busy_total.load(Ordering::Relaxed),
    );
    counter(
        "http_errors_total",
        "Malformed or over-limit requests",
        m.http_errors_total.load(Ordering::Relaxed),
    );
    counter(
        "shed_total",
        "Explore requests shed by admission control",
        m.shed_total.load(Ordering::Relaxed),
    );
    counter(
        "timeouts_total",
        "Explore requests cancelled at their deadline",
        m.timeouts_total.load(Ordering::Relaxed),
    );
    counter(
        "panics_total",
        "Requests answered 500 after a caught panic",
        m.panics_total.load(Ordering::Relaxed),
    );
    counter(
        "cancel_latency_ms_total",
        "Milliseconds spent past the deadline before cancellation unwound",
        m.cancel_latency_ms_total.load(Ordering::Relaxed),
    );
    counter("cache_hits_total", "Result-cache hits", cache.hits);
    counter("cache_misses_total", "Result-cache misses", cache.misses);
    counter("cache_evictions_total", "Result-cache evictions", cache.evictions);
    let mut gauge = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP spade_serve_{name} {help}\n# TYPE spade_serve_{name} gauge\n\
             spade_serve_{name} {value}\n",
        ));
    };
    gauge("in_flight", "Requests currently executing", m.in_flight.load(Ordering::Relaxed));
    gauge(
        "queue_depth",
        "Connections accepted but not yet picked up by a worker",
        m.queue_depth.load(Ordering::Relaxed),
    );
    gauge(
        "admission_capacity",
        "Admission-control capacity in work units (0 = unlimited)",
        shared.admission.capacity(),
    );
    gauge(
        "admission_inflight_cost",
        "Estimated work units currently admitted",
        shared.admission.inflight(),
    );
    gauge("cache_bytes", "Result-cache bytes in use", cache.bytes as u64);
    gauge("snapshot_generation", "Current snapshot generation", state.generation);
    gauge("snapshot_triples", "Triples served", state.offline.graph.len() as u64);
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        headers: Vec::new(),
        body: out.into_bytes().into(),
        close: false,
    }
}

/// Decodes an `/explore` body into a [`RequestConfig`]. Unknown keys are
/// rejected — silent typos (`"top_k"`) would otherwise degrade into default
/// answers.
fn parse_explore(body: &[u8]) -> Result<RequestConfig, String> {
    if body.is_empty() {
        return Ok(RequestConfig::default());
    }
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let entries = doc.as_object().ok_or("body must be a JSON object")?;
    let mut request = RequestConfig::default();
    let str_list = |v: &Json, what: &str| -> Result<Vec<String>, String> {
        v.as_array()
            .ok_or(format!("{what} must be an array of strings"))?
            .iter()
            .map(|s| {
                s.as_str().map(str::to_owned).ok_or(format!("{what} must contain only strings"))
            })
            .collect()
    };
    for (key, value) in entries {
        match key.as_str() {
            "k" => {
                request.k = Some(value.as_usize().ok_or("k must be a non-negative integer")?);
            }
            "interestingness" => {
                let name = value.as_str().ok_or("interestingness must be a string")?;
                request.interestingness =
                    Some(RequestConfig::interestingness_from_name(name).ok_or(
                        "interestingness must be variance, skewness, or kurtosis".to_owned(),
                    )?);
            }
            "min_support" => {
                let v = value.as_f64().ok_or("min_support must be a number")?;
                if !(0.0..=1.0).contains(&v) {
                    return Err("min_support must be within [0, 1]".to_owned());
                }
                request.min_support = Some(v);
            }
            "cfs_filter" => request.cfs_filter = str_list(value, "cfs_filter")?,
            "measure_filter" => request.measure_filter = str_list(value, "measure_filter")?,
            "threads" => {
                request.threads =
                    Some(value.as_usize().ok_or("threads must be a non-negative integer")?);
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    Ok(request)
}

fn explore(shared: &Shared, body: &[u8]) -> Response {
    shared.metrics.explore_total.fetch_add(1, Ordering::Relaxed);
    let mut request = match parse_explore(body) {
        Ok(request) => request,
        Err(message) => return Response::error(400, &message),
    };
    // Cap the per-request budget at this worker's share so N concurrent
    // requests use at most the server's total thread budget.
    request.threads = Some(match request.threads {
        Some(t) if t != 0 => t.min(shared.request_threads),
        _ => shared.request_threads,
    });

    let state = current(shared);
    let key = format!("g{}:{}", state.generation, request.canonical_key());
    if let Some(hit) =
        shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key)
    {
        shared.metrics.explore_cached_total.fetch_add(1, Ordering::Relaxed);
        return Response {
            status: 200,
            content_type: "application/json",
            headers: vec![("X-Cache", "hit".to_owned())],
            body: hit,
            close: false,
        };
    }

    // Fault-injection site for chaos tests (no-op unless `SPADE_FAULT`
    // names it): fires after parsing and the cache, i.e. exactly where a
    // real evaluation bug would strike.
    spade_parallel::fault::fire("serve.explore");

    // Admission control: estimate the work from the snapshot's offline
    // stats and shed instead of queueing when the in-flight sum would
    // exceed capacity. Cache hits above never reach this point — answering
    // from memory is always admissible.
    let cost = crate::admission::estimate_cost(&state.offline, &shared.base, &request);
    let Some(_permit) = shared.admission.try_admit(cost) else {
        shared.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
        let mut response =
            Response::error(503, "estimated cost exceeds admission capacity, retry later");
        response.headers.push(("Retry-After", "1".to_owned()));
        return response;
    };

    // The evaluation runs outside every lock, against this request's
    // pinned generation, under the per-request deadline (if configured).
    let budget = match shared.request_timeout {
        Some(timeout) => Budget::with_deadline(timeout),
        None => Budget::unlimited(),
    };
    let report = match shared.engine.run_on_budgeted(&state.offline, &request, &budget) {
        Ok(report) => report,
        Err(cancelled) => {
            shared.metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
            if let Some(deadline) = budget.deadline() {
                // How far past the deadline the cooperative unwind surfaced
                // — the observable cancellation latency.
                let over = Instant::now().saturating_duration_since(deadline);
                shared
                    .metrics
                    .cancel_latency_ms_total
                    .fetch_add(over.as_millis() as u64, Ordering::Relaxed);
            }
            return Response::error(504, &format!("request deadline exceeded ({cancelled})"))
                .closing();
        }
    };
    let body: Arc<[u8]> = report.to_json(false).into_bytes().into();
    // Skip the insert when a reload swapped generations mid-evaluation:
    // the old-generation key could never be looked up again, so storing it
    // would only waste cache budget (and could evict live entries).
    if current(shared).generation == state.generation {
        shared
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&body));
    }
    Response {
        status: 200,
        content_type: "application/json",
        headers: vec![("X-Cache", "miss".to_owned())],
        body,
        close: false,
    }
}

fn reload(shared: &Shared, body: &[u8]) -> Response {
    // One reload at a time; `/explore` traffic never takes this lock.
    let _guard = shared.reload.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let previous = current(shared);
    let path = if body.is_empty() {
        previous.source.clone()
    } else {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        match json::parse(text) {
            Ok(doc) => match doc.get("path") {
                Some(p) => match p.as_str() {
                    Some(p) => PathBuf::from(p),
                    None => return Response::error(400, "path must be a string"),
                },
                None => previous.source.clone(),
            },
            Err(e) => return Response::error(400, &e.to_string()),
        }
    };

    // Fault-injection site for chaos tests: a simulated I/O failure takes
    // the same keep-the-old-generation path as a genuinely unreadable file.
    if let Some(e) = spade_parallel::fault::io_error("serve.reload") {
        return Response::error(409, &format!("reload failed, keeping generation: {e}"));
    }
    match OfflineState::open(&path, shared.eval_threads) {
        Ok(offline) => {
            let next = Arc::new(ServingState {
                offline,
                generation: previous.generation + 1,
                source: path,
            });
            let load_ms = next.offline.load_time.as_secs_f64() * 1e3;
            let generation = next.generation;
            *shared.serving.write().unwrap_or_else(std::sync::PoisonError::into_inner) = next;
            // Old-generation cache entries can never be requested again
            // (keys embed the generation); drop them now instead of letting
            // them age out of the byte budget.
            shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
            shared.metrics.reload_total.fetch_add(1, Ordering::Relaxed);
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("status").string("reloaded");
            w.key("generation").uint(generation);
            w.key("load_ms").f64(load_ms);
            w.end_object();
            Response::json(200, w.finish())
        }
        // The old state keeps serving untouched; 409 tells the operator the
        // swap did not happen.
        Err(e) => Response::error(409, &format!("reload failed, keeping generation: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_explore_accepts_full_document() {
        let body = br#"{"k": 4, "interestingness": "skewness", "min_support": 0.25,
                        "cfs_filter": ["type:CEO"], "measure_filter": ["netWorth"],
                        "threads": 2}"#;
        let r = parse_explore(body).unwrap();
        assert_eq!(r.k, Some(4));
        assert_eq!(r.interestingness.map(|h| h.label()), Some("skewness"));
        assert_eq!(r.min_support, Some(0.25));
        assert_eq!(r.cfs_filter, vec!["type:CEO".to_owned()]);
        assert_eq!(r.measure_filter, vec!["netWorth".to_owned()]);
        assert_eq!(r.threads, Some(2));
        assert_eq!(parse_explore(b"").unwrap(), RequestConfig::default());
        assert_eq!(parse_explore(b"{}").unwrap(), RequestConfig::default());
    }

    #[test]
    fn parse_explore_rejects_bad_documents() {
        for bad in [
            br#"{"k": -1}"#.as_slice(),
            br#"{"k": "three"}"#,
            br#"{"interestingness": "magic"}"#,
            br#"{"min_support": 1.5}"#,
            br#"{"cfs_filter": "not-a-list"}"#,
            br#"{"cfs_filter": [1]}"#,
            br#"{"top_k": 3}"#,
            br#"[1,2,3]"#,
            br#"{"k": 3"#,
            &[0xff, 0xfe],
        ] {
            assert!(parse_explore(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }
}
