//! Admission control: shed over-budget work *before* it starts.
//!
//! The queue bound in [`crate::server`] protects the worker pool from too
//! many *connections*; it says nothing about how expensive each admitted
//! request is. One unfiltered full-graph exploration can cost as much as a
//! thousand narrow ones, so under saturation the right thing to refuse is
//! *estimated work*, not request count. The controller here keeps a running
//! sum of the cost estimates of in-flight explorations and sheds (503 +
//! `Retry-After`) any request that would push the sum past a configured
//! capacity — the shed is instant, so clients learn to back off while the
//! admitted requests keep their latency.
//!
//! Cost is estimated from the snapshot's offline statistics, which the
//! server already holds in memory: no per-request I/O, just arithmetic on
//! counts the offline phase computed once.

use spade_core::{OfflineState, RequestConfig, SpadeConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Estimated cost of one exploration, in abstract work units (roughly
/// "triples scanned").
///
/// The estimate is deliberately crude — a product of the factors that
/// dominate the online pipeline:
///
/// * `triples` — every CFS analysis re-scans the members' outgoing edges,
///   so total work scales with graph size;
/// * `cfs_breadth` — how many candidate fact sets step 1 will hand to steps
///   2–4: a non-empty `cfs_filter` typically selects a handful, otherwise
///   assume the configured `max_cfs` cap (bounded, so one estimate can't
///   explode);
/// * `support_factor` — lower `min_support` keeps more attributes and
///   lattice roots alive through steps 2–3, multiplying the cube work.
///
/// This is a plug-in point: a finer model (e.g. cardinality-based estimates
/// in the style of RDF summarization work) only needs to replace this
/// function — the controller consumes opaque `u64` units.
pub fn estimate_cost(state: &OfflineState, base: &SpadeConfig, request: &RequestConfig) -> u64 {
    let config = request.apply(base);
    let triples = state.graph.len() as u64;
    let cfs_breadth =
        if config.cfs_filter.is_empty() { config.max_cfs.min(8) as u64 + 2 } else { 2 };
    let support_factor = 1 + ((1.0 - config.min_support).max(0.0) * 3.0).round() as u64;
    triples.max(1) * cfs_breadth * support_factor
}

/// Token-bucket-without-refill over in-flight cost: admission succeeds while
/// `inflight + cost ≤ capacity`; the permit returns its cost on drop.
///
/// `capacity == 0` disables shedding (every request admitted, nothing
/// tracked against the limit — the gauge still counts in-flight cost).
///
/// Capacity is an atomic so the `--admission-capacity auto` closed loop can
/// retarget it from the observed cost profile while requests are in flight;
/// a resize never disturbs already-admitted work (permits release exactly
/// what they took).
#[derive(Debug)]
pub struct AdmissionController {
    capacity: AtomicU64,
    inflight: AtomicU64,
}

impl AdmissionController {
    /// A controller shedding above `capacity` work units (0 = never shed).
    pub fn new(capacity: u64) -> AdmissionController {
        AdmissionController { capacity: AtomicU64::new(capacity), inflight: AtomicU64::new(0) }
    }

    /// The current capacity (0 = unlimited).
    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Retargets the capacity (the `auto` adaptation loop). Takes effect
    /// for the next admission decision; in-flight permits are untouched.
    pub fn set_capacity(&self, capacity: u64) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Cost currently admitted and not yet released.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Tries to admit `cost` units; `None` means shed. The returned permit
    /// releases the units when dropped, so every exit path (success, panic
    /// caught at the route boundary, cancellation) gives the capacity back.
    pub fn try_admit(&self, cost: u64) -> Option<AdmissionPermit<'_>> {
        let capacity = self.capacity();
        if capacity == 0 {
            self.inflight.fetch_add(cost, Ordering::Relaxed);
            return Some(AdmissionPermit { controller: self, cost });
        }
        let admitted = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                let total = current.saturating_add(cost);
                (total <= capacity).then_some(total)
            })
            .is_ok();
        // `then`, not `then_some`: the permit must only exist (and its
        // releasing Drop only run) when admission actually succeeded.
        admitted.then(|| AdmissionPermit { controller: self, cost })
    }
}

/// RAII receipt for admitted work; dropping it releases the cost.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
    cost: u64,
}

impl AdmissionPermit<'_> {
    /// The cost this permit holds.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.controller.inflight.fetch_sub(self.cost, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_capacity_and_releases_on_drop() {
        let c = AdmissionController::new(100);
        let a = c.try_admit(60).expect("fits");
        assert_eq!(c.inflight(), 60);
        assert!(c.try_admit(50).is_none(), "60 + 50 > 100 must shed");
        let b = c.try_admit(40).expect("exactly fills");
        assert_eq!(c.inflight(), 100);
        drop(a);
        assert_eq!(c.inflight(), 40);
        drop(b);
        assert_eq!(c.inflight(), 0);
        assert!(c.try_admit(100).is_some(), "capacity is inclusive");
    }

    #[test]
    fn zero_capacity_always_admits_but_still_gauges() {
        let c = AdmissionController::new(0);
        let a = c.try_admit(u64::MAX / 2).expect("never shed");
        let b = c.try_admit(u64::MAX / 2).expect("never shed");
        assert_eq!(c.inflight(), u64::MAX / 2 * 2);
        drop((a, b));
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn set_capacity_retargets_without_touching_inflight() {
        let c = AdmissionController::new(50);
        let permit = c.try_admit(40).expect("fits");
        assert!(c.try_admit(40).is_none(), "40 + 40 > 50");
        c.set_capacity(100);
        assert_eq!(c.capacity(), 100);
        let second = c.try_admit(40).expect("fits after the resize");
        assert_eq!(c.inflight(), 80);
        // Shrinking below the in-flight sum sheds new work but never
        // invalidates held permits.
        c.set_capacity(10);
        assert!(c.try_admit(1).is_none());
        drop((permit, second));
        assert_eq!(c.inflight(), 0);
        assert!(c.try_admit(10).is_some());
    }

    #[test]
    fn oversized_request_cannot_deadlock_the_controller() {
        let c = AdmissionController::new(10);
        assert!(c.try_admit(11).is_none(), "larger than capacity is always shed");
        // ... and smaller work still flows.
        assert!(c.try_admit(10).is_some());
    }
}
