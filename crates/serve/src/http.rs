//! A hand-rolled HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The build environment vendors no external crates (no tokio, no hyper),
//! and the protocol subset a loopback exploration service needs is small:
//! `GET`/`POST`, `Content-Length` bodies, keep-alive. This module owns the
//! byte-level framing; routing and handlers live in [`crate::server`].
//!
//! Robustness over features: every limit is explicit ([`Limits`]), every
//! malformed input is a typed [`HttpError`] the server maps to a 4xx
//! response, and anything outside the subset (`Transfer-Encoding`, absolute
//! URIs, HTTP/2 preface, …) is rejected loudly rather than half-handled.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Byte and time caps applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Request line + headers (bytes, including the blank line).
    pub max_head_bytes: usize,
    /// Body bytes (`Content-Length` above this is refused with 413).
    pub max_body_bytes: usize,
    /// Hard wall-clock deadline on reading one request (head + body),
    /// measured from its first byte. The worker's 500 ms read-timeout poll
    /// tick only bounds *idle* gaps; without this cap a client trickling
    /// one byte every few hundred milliseconds would pin a worker forever
    /// (slow-loris). Exceeding it is [`HttpError::ReadTimeout`] → 408.
    pub read_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            read_deadline: Duration::from_secs(10),
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, … (upper-case as sent).
    pub method: String,
    /// The request target, e.g. `/explore` (query strings are kept as-is).
    pub path: String,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any byte — the normal
    /// end of a keep-alive session, not an error to report.
    Closed,
    /// Socket-level failure (including read timeouts).
    Io(io::Error),
    /// Malformed or unsupported framing → 400.
    Bad(&'static str),
    /// The head exceeded [`Limits::max_head_bytes`] → 431.
    HeadTooLarge,
    /// The declared body exceeds [`Limits::max_body_bytes`] → 413.
    BodyTooLarge,
    /// One request took longer than [`Limits::read_deadline`] to arrive
    /// (slow-loris protection) → 408.
    ReadTimeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Bad(what) => write!(f, "malformed request: {what}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::ReadTimeout => {
                write!(f, "request not received within the read deadline")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// A connection able to read consecutive requests (keep-alive): bytes read
/// past one request's end are carried over to the next.
pub struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
    /// When the first byte of the in-progress request arrived. Survives the
    /// `WouldBlock` re-entries of the worker's poll tick so the
    /// [`Limits::read_deadline`] clock keeps running across them; cleared
    /// once a request parses completely.
    request_started: Option<Instant>,
}

impl Conn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Conn {
        Conn { stream, carry: Vec::new(), request_started: None }
    }

    /// The underlying stream (for writing responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads and parses the next request.
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, HttpError> {
        // —— head: everything up to the first CRLFCRLF ——
        let head_end = loop {
            if let Some(end) = find_head_end(&self.carry) {
                break end;
            }
            if self.carry.len() > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            self.check_read_deadline(limits)?;
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).map_err(HttpError::Io)?;
            if n == 0 {
                return if self.carry.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Bad("connection closed mid-request"))
                };
            }
            self.carry.extend_from_slice(&chunk[..n]);
            self.request_started.get_or_insert_with(Instant::now);
        };
        if head_end > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&self.carry[..head_end])
            .map_err(|_| HttpError::Bad("head is not UTF-8"))?
            .to_owned();
        self.carry.drain(..head_end + 4);

        // —— request line ——
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => {
                    (m, p, v)
                }
                _ => return Err(HttpError::Bad("request line is not 'METHOD PATH VERSION'")),
            };
        if !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::Bad("method must be upper-case ASCII"));
        }
        if !path.starts_with('/') {
            return Err(HttpError::Bad("request target must be origin-form (/path)"));
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(HttpError::Bad("unsupported HTTP version")),
        };

        // —— headers ——
        let mut content_length: usize = 0;
        let mut keep_alive = http11;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) =
                line.split_once(':').ok_or(HttpError::Bad("header line without ':'"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value
                        .parse::<usize>()
                        .map_err(|_| HttpError::Bad("invalid Content-Length"))?;
                }
                "transfer-encoding" => {
                    return Err(HttpError::Bad("Transfer-Encoding is not supported"));
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.split(',').any(|t| t.trim() == "close") {
                        keep_alive = false;
                    } else if v.split(',').any(|t| t.trim() == "keep-alive") {
                        keep_alive = true;
                    }
                }
                "expect" => return Err(HttpError::Bad("Expect is not supported")),
                _ => {}
            }
        }
        if content_length > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }

        // —— body: exactly Content-Length bytes ——
        let mut body = Vec::with_capacity(content_length.min(64 * 1024));
        let take = content_length.min(self.carry.len());
        body.extend_from_slice(&self.carry[..take]);
        self.carry.drain(..take);
        while body.len() < content_length {
            self.check_read_deadline(limits)?;
            let mut chunk = [0u8; 4096];
            let want = (content_length - body.len()).min(chunk.len());
            let n = self.stream.read(&mut chunk[..want]).map_err(HttpError::Io)?;
            if n == 0 {
                return Err(HttpError::Bad("connection closed mid-body"));
            }
            body.extend_from_slice(&chunk[..n]);
        }

        self.request_started = None;
        Ok(Request { method: method.to_owned(), path: path.to_owned(), body, keep_alive })
    }

    /// Enforces [`Limits::read_deadline`] over the in-progress request (the
    /// clock starts at its first byte; a connection idling *between*
    /// requests is governed by the server's idle timeout instead).
    fn check_read_deadline(&self, limits: &Limits) -> Result<(), HttpError> {
        match self.request_started {
            Some(started) if started.elapsed() > limits.read_deadline => {
                Err(HttpError::ReadTimeout)
            }
            _ => Ok(()),
        }
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase of the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response. `extra_headers` must not include the framing
/// headers this function owns (`Content-Length`, `Content-Type`,
/// `Connection`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], limits: &Limits) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let out = Conn::new(stream).read_request(limits);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let req = roundtrip(
            b"POST /explore HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"k\":3}",
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/explore");
        assert_eq!(req.body, b"{\"k\":3}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10() {
        let req = roundtrip(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            &Limits::default(),
        )
        .unwrap();
        assert!(!req.keep_alive);
        let req = roundtrip(b"GET / HTTP/1.0\r\n\r\n", &Limits::default()).unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn rejects_malformed() {
        for raw in [
            b"garbage\r\n\r\n".as_slice(),
            b"GET\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(roundtrip(raw, &Limits::default()), Err(HttpError::Bad(_))),
                "{:?} must be Bad",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn enforces_limits() {
        let small = Limits { max_head_bytes: 64, max_body_bytes: 8, ..Limits::default() };
        let long_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(200));
        assert!(matches!(
            roundtrip(long_header.as_bytes(), &small),
            Err(HttpError::HeadTooLarge)
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789", &small),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn trickled_request_hits_the_read_deadline() {
        // One byte every 50 ms with a 150 ms socket read timeout: the idle
        // poll tick alone never fires, so only the per-request wall-clock
        // deadline can end this request.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for b in b"GET /healthz HTTP/1.1\r\n" {
                if s.write_all(&[*b]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(150))).unwrap();
        let limits = Limits { read_deadline: Duration::from_millis(300), ..Limits::default() };
        let mut conn = Conn::new(stream);
        let t = Instant::now();
        let out = loop {
            match conn.read_request(&limits) {
                Err(HttpError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue; // the worker's poll tick re-enters like this
                }
                other => break other,
            }
        };
        assert!(matches!(out, Err(HttpError::ReadTimeout)), "got {out:?}");
        assert!(t.elapsed() < Duration::from_secs(5), "deadline must cut the trickle short");
        drop(conn);
        writer.join().unwrap();
    }

    #[test]
    fn keep_alive_carries_pipelined_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Two requests in one write.
            s.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream);
        let a = conn.read_request(&Limits::default()).unwrap();
        let b = conn.read_request(&Limits::default()).unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        // Third read sees the clean close.
        assert!(matches!(conn.read_request(&Limits::default()), Err(HttpError::Closed)));
        writer.join().unwrap();
    }
}
