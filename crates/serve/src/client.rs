//! A minimal blocking HTTP/1.1 client for loopback use — the determinism
//! tests, the CI smoke job, and `bench_serve` all drive the daemon through
//! this instead of shelling out to curl.
//!
//! Supports exactly what the server speaks: `GET`/`POST`,
//! `Content-Length` bodies, keep-alive connection reuse — plus polite
//! load-shed handling: a 503 (queue full or admission-shed) is retried with
//! jittered exponential backoff honoring the server's `Retry-After` hint,
//! under a bounded retry budget (see [`RetryPolicy`]).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// How [`Client::send`] reacts to 503 responses (accept-queue overflow or
/// admission shed). The server's `Retry-After` hint, when present, replaces
/// the exponential backoff for that attempt; either way the delay is
/// jittered into `[0.5, 1.0]×` so a herd of shed clients does not return in
/// lockstep, and the total sleep across one logical request never exceeds
/// `max_total_delay`.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail on the first 503).
    pub max_retries: u32,
    /// Backoff for the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Retry budget: total sleep allowed across one `send`.
    pub max_total_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(50),
            max_total_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Never retry — tests asserting raw 503 behaviour use this.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
    retry: RetryPolicy,
    /// xorshift64 state for backoff jitter (no external RNG dependency).
    jitter_state: u64,
}

impl Client {
    /// Connects lazily on first use.
    pub fn new(addr: SocketAddr) -> Client {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            | 1; // xorshift must not start at 0
        Client {
            addr,
            stream: None,
            timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            jitter_state: seed,
        }
    }

    /// Same client with a different 503 retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// Same client never retrying 503s.
    pub fn no_retry(self) -> Client {
        self.with_retry(RetryPolicy::none())
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        match &mut self.stream {
            Some(stream) => Ok(stream),
            slot => {
                let stream = TcpStream::connect(self.addr)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(self.timeout))?;
                Ok(slot.insert(stream))
            }
        }
    }

    /// A jitter factor in `[0.5, 1.0]` (xorshift64).
    fn jitter(&mut self) -> f64 {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        0.5 + (x >> 11) as f64 / (1u64 << 53) as f64 * 0.5
    }

    /// Sends one request and reads the response, reusing the connection
    /// when the server allows it, and retrying 503s per the
    /// [`RetryPolicy`]. I/O errors are not retried beyond the keep-alive
    /// reconnect — a shed is an explicit, safe-to-repeat answer; a broken
    /// pipe mid-POST is not.
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let policy = self.retry.clone();
        let mut slept = Duration::ZERO;
        for attempt in 0.. {
            let response = self.send_reconnecting(method, path, body)?;
            if response.status != 503 || attempt >= policy.max_retries {
                return Ok(response);
            }
            let remaining = policy.max_total_delay.saturating_sub(slept);
            if remaining.is_zero() {
                return Ok(response);
            }
            // Prefer the server's hint (whole seconds per RFC 9110);
            // otherwise exponential backoff, either way jittered down.
            let hinted = response
                .header("retry-after")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs);
            let backoff = policy.base_delay * 2u32.saturating_pow(attempt);
            let delay = hinted.unwrap_or(backoff).mul_f64(self.jitter()).min(remaining);
            std::thread::sleep(delay);
            slept += delay;
        }
        unreachable!("the retry loop returns within max_retries + 1 attempts")
    }

    /// One attempt, with the keep-alive reconnect: retries once on a fresh
    /// connection if the reused one turned out dead.
    fn send_reconnecting(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<Response> {
        let reused = self.stream.is_some();
        match self.send_once(method, path, body) {
            Ok(response) => Ok(response),
            Err(_) if reused => {
                self.stream = None;
                self.send_once(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.send("GET", path, b"")
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<Response> {
        self.send("POST", path, body)
    }

    fn send_once(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let stream = self.stream()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: spade\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let response = read_response(stream)?;
        let close =
            response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if close {
            self.stream = None;
        }
        Ok(response)
    }
}

/// One-shot `GET` over a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    Client::new(addr).get(path)
}

/// One-shot `POST` over a fresh connection.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> io::Result<Response> {
    Client::new(addr).post(path, body)
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed response: {what}"))
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    // —— head ——
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("head not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("header line"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("content-length"))?;
        }
        headers.push((name, value));
    }

    // —— body ——
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Response { status, headers, body })
}
