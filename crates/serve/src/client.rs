//! A minimal blocking HTTP/1.1 client for loopback use — the determinism
//! tests, the CI smoke job, and `bench_serve` all drive the daemon through
//! this instead of shelling out to curl.
//!
//! Supports exactly what the server speaks: `GET`/`POST`,
//! `Content-Length` bodies, keep-alive connection reuse.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl Client {
    /// Connects lazily on first use.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None, timeout: Duration::from_secs(30) }
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// Sends one request and reads the response, reusing the connection
    /// when the server allows it. Retries once on a fresh connection if the
    /// reused one turned out dead (the keep-alive race).
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let reused = self.stream.is_some();
        match self.send_once(method, path, body) {
            Ok(response) => Ok(response),
            Err(e) if reused => {
                self.stream = None;
                let _ = e;
                self.send_once(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.send("GET", path, b"")
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<Response> {
        self.send("POST", path, body)
    }

    fn send_once(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let stream = self.stream()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: spade\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let response = read_response(stream)?;
        let close =
            response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if close {
            self.stream = None;
        }
        Ok(response)
    }
}

/// One-shot `GET` over a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    Client::new(addr).get(path)
}

/// One-shot `POST` over a fresh connection.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> io::Result<Response> {
    Client::new(addr).post(path, body)
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed response: {what}"))
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    // —— head ——
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("head not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("header line"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("content-length"))?;
        }
        headers.push((name, value));
    }

    // —— body ——
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Response { status, headers, body })
}
