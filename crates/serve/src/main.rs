//! The `spade-serve` daemon: load a snapshot (or a whole directory of
//! them) and serve `/explore` until SIGTERM/SIGINT, then drain and exit 0.
//!
//! ```text
//! spade-serve --snapshot data.spade [--addr 127.0.0.1:7878] [--workers N]
//!             [--threads N] [--cache-bytes N] [--max-body-bytes N]
//!             [--drain-secs N] [--request-timeout F] [--admission-capacity N|auto]
//!             [--latency-slo-ms N] [--ledger-capacity N]
//!             [--k N] [--min-support F] [--slow-ms N] [--log-json]
//! spade-serve --snapshot-dir /dir/of/spade/files [--default-graph NAME]
//!             [--graph-memory-budget BYTES] [...]
//! ```
//!
//! `--snapshot-dir` registers every `DIR/*.spade` as a graph named after
//! its file stem, served at `/graphs/{name}/explore`; `--snapshot` may be
//! combined with it (or used alone, the one-graph legacy mode). The
//! default graph — `--default-graph`, else the `--snapshot` stem, else
//! the first name in sorted order — answers the unprefixed legacy routes
//! and is loaded eagerly; everything else opens lazily (memory-mapped).

use spade_serve::catalog::scan_snapshot_dir;
use spade_serve::server::{ServeConfig, Server};
use spade_serve::signal;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: spade-serve (--snapshot <path> | --snapshot-dir <dir>) [--addr <host:port>] \
         [--default-graph <name>] [--graph-memory-budget <bytes>] [--workers <n>] \
         [--threads <n>] [--cache-bytes <n>] [--max-body-bytes <n>] [--drain-secs <n>] \
         [--request-timeout <secs>] [--admission-capacity <n|auto>] \
         [--latency-slo-ms <n>] [--ledger-capacity <n>] \
         [--k <n>] [--min-support <f>] [--slow-ms <n>] [--log-json]"
    );
    std::process::exit(2);
}

fn main() {
    let mut snapshot: Option<PathBuf> = None;
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut default_graph: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut base = spade_core::SpadeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value("--snapshot"))),
            "--snapshot-dir" => snapshot_dir = Some(PathBuf::from(value("--snapshot-dir"))),
            "--default-graph" => default_graph = Some(value("--default-graph")),
            "--graph-memory-budget" => {
                config.graph_memory_budget =
                    parse(&value("--graph-memory-budget"), "--graph-memory-budget")
            }
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--threads" => config.threads = parse(&value("--threads"), "--threads"),
            "--cache-bytes" => {
                config.cache_bytes = parse(&value("--cache-bytes"), "--cache-bytes")
            }
            "--max-body-bytes" => {
                config.limits.max_body_bytes =
                    parse(&value("--max-body-bytes"), "--max-body-bytes")
            }
            "--drain-secs" => {
                config.drain_deadline =
                    Duration::from_secs(parse::<u64>(&value("--drain-secs"), "--drain-secs"))
            }
            "--request-timeout" => {
                let secs: f64 = parse(&value("--request-timeout"), "--request-timeout");
                if secs <= 0.0 || !secs.is_finite() {
                    eprintln!("--request-timeout: must be positive");
                    usage();
                }
                config.request_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--admission-capacity" => {
                // `auto` turns on the closed loop: capacity is seeded from
                // the static estimate and retargeted from the observed
                // per-graph cost profile as requests complete.
                let v = value("--admission-capacity");
                if v == "auto" {
                    config.admission_auto = true;
                } else {
                    config.admission_capacity = parse(&v, "--admission-capacity");
                }
            }
            "--latency-slo-ms" => {
                let ms: u64 = parse(&value("--latency-slo-ms"), "--latency-slo-ms");
                if ms == 0 {
                    eprintln!("--latency-slo-ms: must be positive");
                    usage();
                }
                config.latency_slo = Some(Duration::from_millis(ms));
            }
            "--ledger-capacity" => {
                config.ledger_capacity = parse(&value("--ledger-capacity"), "--ledger-capacity")
            }
            "--slow-ms" => config.slow_ms = parse(&value("--slow-ms"), "--slow-ms"),
            "--log-json" => config.log_json = true,
            "--k" => base.k = parse(&value("--k"), "--k"),
            "--min-support" => {
                base.min_support = parse(&value("--min-support"), "--min-support")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if snapshot.is_none() && snapshot_dir.is_none() {
        eprintln!("--snapshot or --snapshot-dir is required");
        usage();
    }

    // Assemble the catalog: every *.spade in --snapshot-dir, plus the
    // explicit --snapshot (which wins a name collision — being named on
    // the command line is the stronger intent).
    let mut graphs: Vec<(String, PathBuf)> = Vec::new();
    if let Some(dir) = &snapshot_dir {
        match scan_snapshot_dir(dir) {
            Ok(found) if found.is_empty() => {
                eprintln!("spade-serve: no *.spade snapshots in {}", dir.display());
                std::process::exit(1);
            }
            Ok(found) => graphs = found,
            Err(e) => {
                eprintln!("spade-serve: cannot scan {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    let snapshot_stem = snapshot.as_ref().map(|path| graph_name_of(path));
    if let (Some(path), Some(stem)) = (&snapshot, &snapshot_stem) {
        graphs.retain(|(name, _)| name != stem);
        graphs.push((stem.clone(), path.clone()));
    }
    let default_graph = default_graph
        .or(snapshot_stem)
        .or_else(|| graphs.iter().map(|(name, _)| name.clone()).min())
        .expect("graphs is non-empty here");

    signal::install();
    let drain = config.drain_deadline;
    let n_graphs = graphs.len();
    let server = match Server::start_catalog(config, base, graphs, &default_graph) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spade-serve: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "spade-serve: serving {n_graphs} graph(s), default {default_graph:?}, on http://{}",
        server.local_addr()
    );

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("spade-serve: shutdown requested, draining (up to {drain:?})");
    let drained = server.shutdown(drain);
    eprintln!(
        "spade-serve: {}",
        if drained { "drained cleanly" } else { "drain deadline hit" }
    );
    std::process::exit(if drained { 0 } else { 1 });
}

/// Mirrors the server's legacy naming: the file stem when it is a valid
/// routing name, else `"default"`.
fn graph_name_of(path: &std::path::Path) -> String {
    match path.file_stem().and_then(|s| s.to_str()) {
        Some(stem) if spade_serve::catalog::valid_graph_name(stem) => stem.to_owned(),
        _ => "default".to_owned(),
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value {value:?}");
        usage()
    })
}
