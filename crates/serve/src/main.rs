//! The `spade-serve` daemon: load a snapshot once, serve `/explore` until
//! SIGTERM/SIGINT, then drain and exit 0.
//!
//! ```text
//! spade-serve --snapshot data.spade [--addr 127.0.0.1:7878] [--workers N]
//!             [--threads N] [--cache-bytes N] [--max-body-bytes N]
//!             [--drain-secs N] [--request-timeout F] [--admission-capacity N]
//!             [--k N] [--min-support F] [--slow-ms N] [--log-json]
//! ```

use spade_serve::server::{ServeConfig, Server};
use spade_serve::signal;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: spade-serve --snapshot <path> [--addr <host:port>] [--workers <n>] \
         [--threads <n>] [--cache-bytes <n>] [--max-body-bytes <n>] [--drain-secs <n>] \
         [--request-timeout <secs>] [--admission-capacity <n>] \
         [--k <n>] [--min-support <f>] [--slow-ms <n>] [--log-json]"
    );
    std::process::exit(2);
}

fn main() {
    let mut snapshot: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut base = spade_core::SpadeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--snapshot" => snapshot = Some(value("--snapshot")),
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--threads" => config.threads = parse(&value("--threads"), "--threads"),
            "--cache-bytes" => {
                config.cache_bytes = parse(&value("--cache-bytes"), "--cache-bytes")
            }
            "--max-body-bytes" => {
                config.limits.max_body_bytes =
                    parse(&value("--max-body-bytes"), "--max-body-bytes")
            }
            "--drain-secs" => {
                config.drain_deadline =
                    Duration::from_secs(parse::<u64>(&value("--drain-secs"), "--drain-secs"))
            }
            "--request-timeout" => {
                let secs: f64 = parse(&value("--request-timeout"), "--request-timeout");
                if secs <= 0.0 || !secs.is_finite() {
                    eprintln!("--request-timeout: must be positive");
                    usage();
                }
                config.request_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--admission-capacity" => {
                config.admission_capacity =
                    parse(&value("--admission-capacity"), "--admission-capacity")
            }
            "--slow-ms" => config.slow_ms = parse(&value("--slow-ms"), "--slow-ms"),
            "--log-json" => config.log_json = true,
            "--k" => base.k = parse(&value("--k"), "--k"),
            "--min-support" => {
                base.min_support = parse(&value("--min-support"), "--min-support")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(snapshot) = snapshot else {
        eprintln!("--snapshot is required");
        usage();
    };

    signal::install();
    let drain = config.drain_deadline;
    let server = match Server::start(config, base, &snapshot) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spade-serve: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("spade-serve: serving {snapshot} on http://{}", server.local_addr());

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("spade-serve: shutdown requested, draining (up to {drain:?})");
    let drained = server.shutdown(drain);
    eprintln!(
        "spade-serve: {}",
        if drained { "drained cleanly" } else { "drain deadline hit" }
    );
    std::process::exit(if drained { 0 } else { 1 });
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value {value:?}");
        usage()
    })
}
