//! `spade-serve` — a snapshot-backed concurrent exploration server:
//! **load once, serve many**.
//!
//! The offline phase (ingestion, RDFS saturation, offline attribute
//! analysis) runs once and lands in a `spade-store` snapshot file; this
//! crate is the long-running daemon that loads that file **once** into an
//! immutable [`spade_core::OfflineState`] and answers any number of
//! concurrent exploration requests against it through the cheap
//! per-request pipeline ([`spade_core::Spade::run_on`]). Everything is
//! `std`-only — a hand-rolled HTTP/1.1 layer ([`http`]) over
//! `std::net::TcpListener`, a bounded worker pool, and
//! [`spade_parallel`] for the evaluation fan-out — because the build
//! environment vendors no external crates.
//!
//! # Architecture
//!
//! * one **acceptor** thread (non-blocking accept + poll tick) feeds a
//!   bounded queue; when the queue is full the connection is answered
//!   `503` immediately instead of piling up,
//! * `workers` **worker** threads each own one connection at a time
//!   (keep-alive supported) and run requests to completion,
//! * the **thread budget** is coordinated: each request evaluates with
//!   `threads / workers` (≥ 1) workers via
//!   [`spade_parallel::split_budget`], so `N` concurrent requests never
//!   oversubscribe the configured core budget,
//! * results are **bit-identical** across thread budgets and concurrency
//!   (the pipeline's determinism guarantee), which makes the byte-budgeted
//!   LRU **result cache** ([`cache`]) exact: a hit returns the very bytes
//!   a fresh evaluation would produce,
//! * **hot reload** swaps an `Arc<ServingState>` atomically: in-flight
//!   requests finish on the generation they started with; nothing is
//!   dropped,
//! * **graceful shutdown**: SIGTERM/SIGINT ([`signal`]) stops the
//!   acceptor, drains queued connections, finishes in-flight requests, and
//!   exits within a bounded deadline.
//!
//! # Wire protocol
//!
//! All request and response bodies are JSON (`application/json`) except
//! `/metrics`. Errors are always `{"error": "<message>"}` with the status
//! codes below. `Connection: keep-alive` is honored (HTTP/1.1 default);
//! `Content-Length` framing only (no `Transfer-Encoding`).
//!
//! ## `POST /explore`
//!
//! Runs the five online steps against the loaded snapshot. The body is an
//! object of **optional** per-request overrides (an empty or absent body
//! runs the server's base configuration):
//!
//! ```json
//! {
//!   "k": 10,
//!   "interestingness": "variance",
//!   "min_support": 0.3,
//!   "cfs_filter": ["type:CEO"],
//!   "measure_filter": ["netWorth"],
//!   "threads": 4
//! }
//! ```
//!
//! * `k` — how many aggregates to return;
//! * `interestingness` — `"variance"`, `"skewness"`, or `"kurtosis"`;
//! * `min_support` — the Step-2/3 frequency threshold, in `[0, 1]`;
//! * `cfs_filter` — keep only CFSs whose name contains one of these
//!   substrings (applied before the `max_cfs` cap);
//! * `measure_filter` — keep only measures whose attribute name contains
//!   one of these substrings (`count(*)` always stays);
//! * `threads` — per-request evaluation budget, silently capped at the
//!   server's per-request share (results do not depend on it).
//!
//! Unknown fields are rejected with `400` (silent typos would degrade into
//! default answers). The `200` response body is
//! [`spade_core::SpadeReport::to_json`] without timings — fully
//! deterministic, so identical requests at any concurrency return
//! byte-identical bodies:
//!
//! ```json
//! {
//!   "profile": {"triples": 0, "cfs_count": 0, "direct_properties": 0,
//!                "derivations": {"kw": 0, "lang": 0, "count": 0, "path": 0},
//!                "aggregates": 0},
//!   "evaluated_aggregates": 0,
//!   "pruned_by_es": 0,
//!   "top": [
//!     {"cfs": "type:CEO", "dims": ["nationality"], "mda": "sum(netWorth)",
//!      "score": 1.0, "groups": 4, "description": "sum(netWorth) of type:CEO by nationality",
//!      "sample_groups": [{"group": "Angola", "value": 1.0}]}
//!   ]
//! }
//! ```
//!
//! The `X-Cache: hit|miss` response header reports whether the result came
//! from the cache (bodies are identical either way).
//!
//! ## `POST /reload`
//!
//! Atomically replaces the served snapshot. Body: `{}` or absent to reload
//! the current file (picks up an in-place rewrite), or
//! `{"path": "/new/file.spade"}` to switch files. On success: `200` with
//! `{"status": "reloaded", "generation": N, "load_ms": …}`; the result
//! cache is cleared (keys embed the generation). On failure: `409` and the
//! previous state keeps serving untouched. In-flight requests always
//! finish on the generation they started with.
//!
//! ## `GET /healthz`
//!
//! `200` with `{"status": "ok", "generation": N}` once serving.
//!
//! ## `GET /stats`
//!
//! `200` with a nested object: `snapshot` (generation, source path,
//! triples, terms, properties, load_ms), `cache` (hits, misses, evictions,
//! entries, bytes), `server` (workers, request_threads, uptime_secs,
//! request counters).
//!
//! ## `GET /metrics`
//!
//! Prometheus text exposition (`text/plain; version=0.0.4`):
//! `spade_serve_requests_total`, `spade_serve_explore_total`,
//! `spade_serve_explore_cached_total`, `spade_serve_reload_total`,
//! `spade_serve_connections_total`, `spade_serve_rejected_busy_total`,
//! `spade_serve_http_errors_total`, `spade_serve_cache_{hits,misses,evictions}_total`,
//! and gauges `spade_serve_in_flight`, `spade_serve_cache_bytes`,
//! `spade_serve_snapshot_generation`, `spade_serve_snapshot_triples`.
//!
//! ## Status codes
//!
//! | code | meaning |
//! |------|---------|
//! | 200  | success |
//! | 400  | malformed HTTP framing, malformed JSON, unknown/invalid field |
//! | 404  | unknown route |
//! | 405  | wrong method for a known route |
//! | 409  | reload failed; previous snapshot still serving |
//! | 413  | body above `--max-body-bytes` |
//! | 431  | request head above the head limit |
//! | 503  | accept queue full (`Retry-After: 1`) or draining |
//!
//! # Running
//!
//! ```text
//! spade-serve --snapshot data.spade --addr 127.0.0.1:7878
//! ```
//!
//! See [`server::ServeConfig`] for every knob. The daemon exits `0` after
//! a clean drain on SIGTERM/SIGINT.

pub mod cache;
pub mod client;
pub mod http;
pub mod server;
pub mod signal;

pub use cache::{CacheStats, ResultCache};
pub use client::{Client, Response as ClientResponse};
pub use http::Limits;
pub use server::{ServeConfig, ServeError, Server, ServingState};
