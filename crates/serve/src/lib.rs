//! `spade-serve` — a snapshot-backed concurrent exploration server:
//! **load once, serve many**.
//!
//! The offline phase (ingestion, RDFS saturation, offline attribute
//! analysis) runs once and lands in a `spade-store` snapshot file; this
//! crate is the long-running daemon that loads that file **once** into an
//! immutable [`spade_core::OfflineState`] and answers any number of
//! concurrent exploration requests against it through the cheap
//! per-request pipeline ([`spade_core::Spade::run_on`]). Everything is
//! `std`-only — a hand-rolled HTTP/1.1 layer ([`http`]) over
//! `std::net::TcpListener`, a bounded worker pool, and
//! [`spade_parallel`] for the evaluation fan-out — because the build
//! environment vendors no external crates.
//!
//! # Architecture
//!
//! * one **acceptor** thread (non-blocking accept + poll tick) feeds a
//!   bounded queue; when the queue is full the connection is answered
//!   `503` immediately instead of piling up,
//! * `workers` **worker** threads each own one connection at a time
//!   (keep-alive supported) and run requests to completion,
//! * the **thread budget** is coordinated: each request evaluates with
//!   `threads / workers` (≥ 1) workers via
//!   [`spade_parallel::split_budget`], so `N` concurrent requests never
//!   oversubscribe the configured core budget,
//! * results are **bit-identical** across thread budgets and concurrency
//!   (the pipeline's determinism guarantee), which makes the byte-budgeted
//!   LRU **result cache** ([`cache`]) exact: a hit returns the very bytes
//!   a fresh evaluation would produce,
//! * one daemon serves a whole **graph catalog** ([`catalog`]): each
//!   registered snapshot opens lazily (memory-mapped) on first touch, and
//!   an optional byte budget evicts the least-recently-used cold graphs so
//!   N snapshots on disk cost far less than N resident states,
//! * **hot reload** swaps an `Arc<ServingState>` atomically per graph:
//!   in-flight requests finish on the generation they started with;
//!   nothing is dropped,
//! * **graceful shutdown**: SIGTERM/SIGINT ([`signal`]) stops the
//!   acceptor, drains queued connections, finishes in-flight requests, and
//!   exits within a bounded deadline,
//! * **request lifecycle hardening**: per-request deadlines cancel
//!   overrunning evaluations cooperatively (a [`spade_core::Budget`]
//!   threaded through every pipeline stage), panics are isolated per
//!   request, and [`admission`] control sheds over-budget work before it
//!   starts — see *Failure modes and SLOs* below.
//!
//! # Wire protocol
//!
//! All request and response bodies are JSON (`application/json`) except
//! `/metrics`. Errors are always `{"error": "<message>"}` with the status
//! codes below. `Connection: keep-alive` is honored (HTTP/1.1 default);
//! `Content-Length` framing only (no `Transfer-Encoding`).
//!
//! ## Multi-graph routing
//!
//! The daemon serves a **catalog** of named graphs. Started with
//! `--snapshot-dir DIR`, every `DIR/*.spade` file registers a graph named
//! after its file stem (names are one URL-safe token: `[A-Za-z0-9_.-]`,
//! at most 128 chars; oddly-named files are skipped). Started with
//! `--snapshot FILE`, the catalog holds that one graph. Each graph is
//! addressed as a path segment:
//!
//! * `POST /graphs/{name}/explore` — explore against that graph;
//! * `POST /graphs/{name}/reload` — reload that graph only;
//! * `GET /graphs` — the catalog: `{"default": "…", "graphs": [{"name":
//!   …, "loaded": …, "generation": …, "resident_bytes": …, "path": …}]}`.
//!
//! An unknown `{name}` is `404`. The legacy unprefixed routes (`/explore`,
//! `/reload`) and the unlabeled snapshot gauges keep working — they are
//! bound to the **default graph** (`--default-graph`, else the
//! `--snapshot` stem, else the first name in sorted order), so one-graph
//! deployments upgrade without touching clients or dashboards.
//!
//! The default graph is loaded **eagerly** at startup (a broken default
//! snapshot still fails startup, exactly like the one-graph server);
//! every other graph opens **lazily** on its first request — and because
//! snapshot opens are memory-mapped (see `spade-store`), the open itself
//! is near-free and the materialized per-graph state is the only real
//! resident cost. `--graph-memory-budget BYTES` caps the sum of loaded
//! states' resident estimates: crossing it evicts the least-recently-used
//! cold graphs (their mmap and heap state are dropped, their result-cache
//! partition retired, `503`-free: the next request transparently reopens
//! them at a bumped generation). A graph whose snapshot has become
//! unreadable answers `503` on the lazy open while every other graph
//! keeps serving. Result-cache keys are partitioned per graph
//! (`{graph}@g{generation}:{request}`), so graphs share the byte budget
//! but can never alias each other's bodies.
//!
//! ## `POST /explore`
//!
//! Runs the five online steps against the loaded snapshot. The body is an
//! object of **optional** per-request overrides (an empty or absent body
//! runs the server's base configuration):
//!
//! ```json
//! {
//!   "k": 10,
//!   "interestingness": "variance",
//!   "min_support": 0.3,
//!   "cfs_filter": ["type:CEO"],
//!   "measure_filter": ["netWorth"],
//!   "threads": 4
//! }
//! ```
//!
//! * `k` — how many aggregates to return;
//! * `interestingness` — `"variance"`, `"skewness"`, or `"kurtosis"`;
//! * `min_support` — the Step-2/3 frequency threshold, in `[0, 1]`;
//! * `cfs_filter` — keep only CFSs whose name contains one of these
//!   substrings (applied before the `max_cfs` cap);
//! * `measure_filter` — keep only measures whose attribute name contains
//!   one of these substrings (`count(*)` always stays);
//! * `threads` — per-request evaluation budget, silently capped at the
//!   server's per-request share (results do not depend on it).
//!
//! Unknown fields are rejected with `400` (silent typos would degrade into
//! default answers). The `200` response body is
//! [`spade_core::SpadeReport::to_json`] without timings — fully
//! deterministic, so identical requests at any concurrency return
//! byte-identical bodies:
//!
//! ```json
//! {
//!   "profile": {"triples": 0, "cfs_count": 0, "direct_properties": 0,
//!                "derivations": {"kw": 0, "lang": 0, "count": 0, "path": 0},
//!                "aggregates": 0},
//!   "evaluated_aggregates": 0,
//!   "pruned_by_es": 0,
//!   "top": [
//!     {"cfs": "type:CEO", "dims": ["nationality"], "mda": "sum(netWorth)",
//!      "score": 1.0, "groups": 4, "description": "sum(netWorth) of type:CEO by nationality",
//!      "sample_groups": [{"group": "Angola", "value": 1.0}]}
//!   ]
//! }
//! ```
//!
//! The `X-Cache: hit|miss` response header reports whether the result came
//! from the cache (bodies are identical either way).
//!
//! Two query parameters change the body (and therefore bypass the result
//! cache in both directions — no lookup, no insert):
//!
//! * `?timings=1` — append the wall-clock `timings` object
//!   ([`spade_core::SpadeReport::to_json`] with timings);
//! * `?profile=1` — attach this request's span tree under a `"trace"` key:
//!
//! ```json
//! {"trace": {"total_us": 1234,
//!            "spans": [{"name": "evaluation", "start_us": 300, "dur_us": 900,
//!                       "attrs": {"cfs": 3}, "children": ["..."]}]}}
//! ```
//!
//! ## `POST /reload`
//!
//! Atomically replaces one graph's served snapshot (the default graph on
//! the legacy route, `{name}` on `/graphs/{name}/reload`). Body: `{}` or
//! absent to reload the graph's current file (picks up an in-place
//! rewrite), or `{"path": "/new/file.spade"}` to switch files. On
//! success: `200` with `{"status": "reloaded", "graph": "…",
//! "generation": N, "load_ms": …}`; that graph's result-cache partition
//! is retired (keys embed the graph and generation — other graphs' entries
//! stay warm). On failure: `409` and the previous state keeps serving
//! untouched. In-flight requests always finish on the generation they
//! started with.
//!
//! ## `GET /healthz`
//!
//! `200` with `{"status": "ok", "generation": N, "graph": "…",
//! "graphs": N}` once serving (`generation` and `graph` describe the
//! default graph).
//!
//! ## `GET /stats`
//!
//! `200` with a nested object: `snapshot` (the default graph: generation,
//! source path, triples, terms, properties, load_ms — or `"loaded":
//! false` if the budget evicted it), `catalog` (graphs, loaded,
//! resident_bytes, budget_bytes, loads_total, evictions_total), `graphs`
//! (one `{name, loaded, generation, resident_bytes}` per registered
//! graph), `cache` (hits, misses, evictions, entries, bytes), `server`
//! (workers, request_threads, uptime_secs, request counters, and a
//! `slow_log` sub-object with its threshold and capacity),
//! `cost_profiles` (one observed per-graph cost/latency profile per
//! registered graph — see `GET /debug/queries`), and `scorecard` (the
//! estimate-vs-actual q-error summary).
//!
//! ## `GET /metrics`
//!
//! Prometheus text exposition (`text/plain; version=0.0.4`) rendered from
//! the [`spade_telemetry::Registry`]. Counters:
//! `spade_serve_requests_total`, `spade_serve_explore_total`,
//! `spade_serve_explore_cached_total`, `spade_serve_reload_total`,
//! `spade_serve_connections_total`, `spade_serve_rejected_busy_total`,
//! `spade_serve_http_errors_total`, `spade_serve_responses_4xx_total`,
//! `spade_serve_responses_5xx_total`, `spade_serve_shed_total`,
//! `spade_serve_timeouts_total`, `spade_serve_panics_total`,
//! `spade_serve_graph_loads_total`, `spade_serve_graph_evictions_total`,
//! `spade_serve_cache_{hits,misses,evictions}_total`, and the per-graph
//! `spade_serve_graph_explore_total{graph="…"}` and
//! `spade_serve_slo_breach_total{graph="…"}` (requests that actually ran —
//! not cache hits or sheds — and finished over `--latency-slo-ms`; a
//! burn-rate numerator). (The
//! `spade_serve_cancel_latency_ms_total` counter was **removed** — the
//! `cancel_latency_seconds` histogram's `_sum`/`_count` carry strictly
//! more information; dashboards should divide those instead.)
//! Gauges: `spade_serve_in_flight`, `spade_serve_queue_depth`,
//! `spade_serve_admission_capacity`, `spade_serve_admission_inflight_cost`,
//! `spade_serve_cache_bytes`, `spade_serve_snapshot_generation`,
//! `spade_serve_snapshot_triples` (both describing the default graph),
//! `spade_serve_graphs_loaded`, `spade_serve_graph_resident_bytes_total`,
//! `spade_serve_graph_memory_budget_bytes`,
//! `spade_serve_uptime_seconds`, and per graph
//! `spade_serve_graph_generation{graph="…"}`,
//! `spade_serve_graph_resident_bytes{graph="…"}`,
//! `spade_serve_graph_loaded{graph="…"}`, plus the ledger-fed cost
//! profile series `spade_serve_graph_cost_ewma{graph="…"}`,
//! `spade_serve_graph_latency_ewma_us{graph="…"}`,
//! `spade_serve_graph_cost_units{graph="…",quantile="0.5"|"0.95"|"0.99"}`,
//! and
//! `spade_serve_graph_latency_us{graph="…",quantile="0.5"|"0.95"|"0.99"}`
//! (observed actual cost in work units and wall latency in microseconds,
//! from the streaming per-graph quantile sketches — label sets are
//! registered in sorted graph order with ascending quantiles, so the
//! exposition is deterministic).
//! Histograms (cumulative `_bucket{le=…}` / `_sum` / `_count` series):
//! `spade_serve_request_seconds{route="explore_cold"|"explore_warm"|"reload"}`,
//! `spade_serve_stage_seconds{stage=…}` (one series per online pipeline
//! stage), `spade_serve_queue_wait_seconds`, and
//! `spade_serve_cancel_latency_seconds` (the latter two on the
//! sub-millisecond [`spade_telemetry::FINE_DURATION_BOUNDS_SECONDS`]
//! bounds, 10 µs – 1 s: queue waits and cancellation latencies on a
//! healthy server sit far below the request-latency bucket floor).
//!
//! ## `GET /debug/slow`
//!
//! The in-memory slow-request log: the worst-`capacity` requests at or
//! above `--slow-ms`, each with its route, graph, status, generation,
//! duration, and full span tree. `{"threshold_ms": …, "capacity": …,
//! "entries": [{"id": …, "route": "explore", "graph": "…", "status": 200,
//! "generation": 1, "duration_ms": …, "unix_ms": …, "trace": {…}}]}`.
//! With `--slow-ms 0` (default) every traced request qualifies and the
//! log keeps the worst 32.
//!
//! ## `GET /debug/queries`
//!
//! The request analytics ledger ([`spade_telemetry::Ledger`]): one compact
//! record per completed `/explore` (hits, sheds, timeouts, and cold
//! completions alike) in a bounded ring, plus the aggregates derived from
//! it. The response shape:
//!
//! ```json
//! {
//!   "capacity": 256,
//!   "recorded_total": 1234,
//!   "admission_capacity": 40000,
//!   "scorecard": {"count": 87, "q_error_geo_mean": 1.9,
//!                  "q_error_p50": 1.6, "q_error_p95": 4.2,
//!                  "q_error_p99": 7.9, "q_error_max": 11.0},
//!   "overall": {"graph": "_overall", "requests": 87, "...": "..."},
//!   "cost_profiles": [
//!     {"graph": "dblp", "requests": 87,
//!      "cost_ewma": 5321.0, "est_cost_ewma": 9800.0,
//!      "cost_p50": 5100.0, "cost_p95": 9400.0, "cost_p99": 12000.0,
//!      "latency_ewma_us": 1800.0, "latency_p50_us": 1700.0,
//!      "latency_p95_us": 3900.0, "latency_p99_us": 5200.0,
//!      "slo_breaches": 2}
//!   ],
//!   "entries": [
//!     {"id": 41, "graph": "dblp", "generation": 1, "route": "explore",
//!      "key_hash": "9c1185a5c5e9fc54", "estimated_cost": 9800,
//!      "actual_cost": 5321, "cells": 4900, "facts": 421,
//!      "cache": "miss", "class": "ok", "total_us": 1765,
//!      "stages": {"cfs_selection": 12, "evaluation": 1430},
//!      "slo_breach": false, "unix_ms": 0}
//!   ]
//! }
//! ```
//!
//! `entries` is the ring tail, newest first, at most `--ledger-capacity`
//! (default 256) records. `key_hash` is the FNV-1a hash of the request's
//! canonical key — requests with equal hashes asked for the same
//! exploration. `cache` is `hit` / `miss` / `bypass` (profile or timings
//! bypassed the cache); `class` is `ok` / `timeout` / `shed` / `error`.
//! `actual_cost = cells + facts`, summed from the cube-engine shard spans
//! of the request's trace — a deterministic work measure (plan- and
//! thread-invariant), which is what makes the **scorecard** meaningful:
//! each cold completion grades [`admission::estimate_cost`] with the
//! q-error `max(est/act, act/est)` (both clamped ≥ 1), and the scorecard
//! reports the geometric mean, streaming p50/p95/p99, and max. A geo-mean
//! near 1 means the admission estimates track real work; a drifting one
//! means the estimator needs recalibrating. Cost profiles and the
//! scorecard fold in **cold successful** requests only (hits answer from
//! memory, sheds never run, timeouts measure the deadline — none of them
//! observe the true cost); every request still lands in the ring.
//!
//! ## Status codes
//!
//! | code | meaning |
//! |------|---------|
//! | 200  | success |
//! | 400  | malformed HTTP framing, malformed JSON, unknown/invalid field |
//! | 404  | unknown route |
//! | 405  | wrong method for a known route |
//! | 408  | one request took longer than the read deadline to arrive |
//! | 409  | reload failed; previous snapshot still serving |
//! | 413  | body above `--max-body-bytes` |
//! | 431  | request head above the head limit |
//! | 500  | a panic was caught serving this request; connection closed |
//! | 503  | accept queue full, admission shed (`Retry-After: 1`), or draining |
//! | 504  | evaluation cancelled at the per-request deadline; connection closed |
//!
//! # Failure modes and SLOs
//!
//! Every failure mode is bounded by a knob, observable in `/metrics`, and
//! never takes the daemon down:
//!
//! * **Slow client (slow-loris)** — a request whose bytes take longer than
//!   [`Limits::read_deadline`] (default 10 s) to arrive is answered `408`
//!   and the connection closed, so a trickling peer can pin a worker for at
//!   most the deadline. Idle keep-alive gaps *between* requests are bounded
//!   separately by `ServeConfig::idle_timeout`. Counted in
//!   `http_errors_total`.
//! * **Overrunning evaluation** — with `--request-timeout` set, every
//!   `/explore` runs under a deadline. The budget is checked between
//!   parallel batches and region flushes (never mid-batch, so outputs stay
//!   bit-identical when no cancellation fires); an expired request unwinds
//!   with a typed cancellation, answers `504`, and the worker is recycled.
//!   `timeouts_total` counts them; the `cancel_latency_seconds` histogram
//!   is the observed cancellation latency distribution (the check
//!   granularity — expect milliseconds, bounded by one region flush).
//! * **Overload** — two independent valves. The accept queue
//!   (`ServeConfig::queue_depth`) bounds *connections*: overflow is `503`
//!   at accept time, counted in `rejected_busy_total`, visible as the
//!   `queue_depth` gauge. Admission control (`--admission-capacity`)
//!   bounds *estimated work*: an `/explore` whose cost estimate
//!   ([`admission::estimate_cost`]) would overflow the in-flight sum is
//!   shed with `503` + `Retry-After: 1` before evaluation starts, counted
//!   in `shed_total`, visible as `admission_inflight_cost`. Cache hits are
//!   always admitted. [`client::RetryPolicy`] is the client-side half:
//!   jittered exponential backoff honoring `Retry-After` under a retry
//!   budget.
//! * **Bug (panic) in one request** — caught at the route boundary
//!   (`catch_unwind`): the request answers `500`, the connection closes,
//!   `panics_total` increments, and the daemon keeps serving. Locks stay
//!   usable (poison is stripped) and admission permits are released by
//!   RAII during the unwind.
//! * **Bad reload** — `409`; the previous generation keeps serving
//!   untouched.
//!
//! SLO guidance: alert on `panics_total > 0`, on `shed_total` rising while
//! `in_flight` is low (capacity set too tight), and on the upper buckets
//! of `cancel_latency_seconds` approaching the request timeout itself
//! (checks too coarse for the configured deadline).
//!
//! # Adaptive admission & SLOs
//!
//! A fixed `--admission-capacity N` forces the operator to guess, in
//! abstract work units, how much concurrent work the machine sustains —
//! and the right answer changes with the snapshot, the request mix, and
//! the hardware. The analytics ledger closes the loop:
//!
//! * **`--latency-slo-ms N`** declares the latency objective. Every
//!   request that actually ran (not a cache hit, not a shed) and finished
//!   — or timed out — above the SLO increments
//!   `spade_serve_slo_breach_total{graph="…"}` and is flagged
//!   `"slo_breach": true` in its ledger record; the counter is the
//!   numerator for burn-rate alerts (denominator:
//!   `spade_serve_explore_total`). When no `--request-timeout` is given,
//!   the SLO also derives the evaluation's early-stop budget at startup:
//!   pruning gets more aggressive (single-batch confirmation) below a 2 s
//!   SLO, standard two-batch confirmation above. The derivation is
//!   **static** — per-request adaptation would break the byte-identical
//!   response guarantee.
//! * **`--admission-capacity auto`** sizes capacity from observation
//!   instead of a guess. The capacity is seeded at startup with the
//!   static estimate of one default request, then after each profiled
//!   cold completion (once ≥ 4 are recorded) retargeted to
//!
//!   ```text
//!   capacity = workers × EWMA(estimated_cost) × headroom
//!   headroom = clamp(SLO / EWMA(latency), 1, 128)
//!   ```
//!
//!   in **estimate units** — the same units `try_admit` compares — so
//!   roughly `workers × headroom` average-estimate requests fit in
//!   flight. When observed latency sits well under the SLO the headroom
//!   factor admits deeper queues; as latency approaches the SLO the
//!   headroom collapses toward `workers` requests' worth of estimated
//!   work, shedding the excess instead of queueing it past the
//!   objective. The loop uses EWMAs (α = 0.1), so it converges within a
//!   few tens of requests and tracks drift; `set_capacity` is atomic and
//!   never disturbs in-flight permits. Without `--latency-slo-ms` the
//!   loop assumes a 1 s objective.
//!
//! # Observability
//!
//! Every layer of the daemon reports through one dependency-free
//! substrate, [`spade_telemetry`]:
//!
//! * **Metrics** — all counters, gauges, and histograms live in a single
//!   [`spade_telemetry::Registry`] and render deterministically (sorted
//!   family order, fixed bucket bounds) at `GET /metrics`. Values owned
//!   elsewhere (cache statistics, snapshot facts, uptime) are mirrored
//!   into the registry at scrape time, so the exposition is one
//!   consistent snapshot. Latency histograms share the
//!   [`spade_telemetry::DURATION_BOUNDS_SECONDS`] bounds (0.5 ms – 10 s),
//!   so `histogram_quantile` works uniformly across routes and stages.
//! * **Traces** — every cold `/explore` records a hierarchical span tree
//!   ([`spade_core::Trace`]) through the whole pipeline: the six online
//!   stages at the top level, then per-CFS, per-lattice, translate,
//!   early-stop, and cube-engine shard/merge spans below. Span-tree
//!   *shape* is deterministic at any thread count (parallel fan-outs
//!   record index-ordered siblings); only timings vary. The top-level
//!   stage spans are the same measurement as the report's `timings`
//!   object — there is one timing source. Per-stage durations also feed
//!   the `spade_serve_stage_seconds` histogram, so stage-level latency
//!   is graphable without tracing every request.
//! * **Profiles** — `POST /explore?profile=1` attaches the span tree to
//!   the response (see the wire protocol above); `GET /debug/slow`
//!   retains the worst-N span trees at or above `--slow-ms`.
//! * **Logs** — `--log-json` writes one structured JSON line per request
//!   to stderr: `{"unix_ms": …, "id": …, "method": …, "route": …,
//!   "graph": …, "status": …, "generation": …, "duration_ms": …}` plus a
//!   `"cause"` key (`panic`, `timeout`, `shed`) on 500/503/504 responses.
//!   The `"graph"` key appears on graph-scoped requests (`/graphs/{name}/…`
//!   and the legacy `/explore` + `/reload`, which resolve to the default
//!   graph); catalog-wide routes omit it.
//! * **Ledger** — every completed `/explore` appends one compact record
//!   (estimate, measured cost, cache outcome, per-stage micros) to the
//!   [`spade_telemetry::Ledger`] ring; `GET /debug/queries` serves the
//!   tail, per-graph cost profiles, and the estimate-vs-actual scorecard
//!   (see above).
//!
//! Tracing is observation-only: response bodies stay bit-identical with
//! and without it, and the substrate's overhead on the warm path is
//! bounded by the `--profile-overhead` mode of `bench_serve`.
//!
//! # Running
//!
//! ```text
//! spade-serve --snapshot data.spade --addr 127.0.0.1:7878
//! spade-serve --snapshot-dir /var/spade/snapshots \
//!             --graph-memory-budget 2147483648 --addr 127.0.0.1:7878
//! ```
//!
//! See [`server::ServeConfig`] for every knob. The daemon exits `0` after
//! a clean drain on SIGTERM/SIGINT.

pub mod admission;
pub mod cache;
pub mod catalog;
pub mod client;
pub mod http;
pub mod server;
pub mod signal;

pub use admission::{AdmissionController, AdmissionPermit};
pub use cache::{CacheStats, ResultCache};
pub use catalog::{scan_snapshot_dir, GraphCatalog, GraphEntry};
pub use client::{Client, Response as ClientResponse, RetryPolicy};
pub use http::Limits;
pub use server::{ServeConfig, ServeError, Server, ServingState};
