//! SIGTERM / SIGINT → a process-global `AtomicBool`, with no external
//! crates: on Unix, `libc`'s `signal(2)` is reachable through a direct
//! `extern "C"` declaration (libc is always linked by std). The handler
//! only stores into an atomic — the one thing that is async-signal-safe.
//! On non-Unix targets installation is a no-op and the daemon stops via
//! other means (console event, process kill).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived since [`install`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Resets the flag (tests only; real daemons shut down once).
pub fn reset() {
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from libc. The simple non-sigaction form is enough:
        /// we neither mask nor re-raise, and a second signal during
        /// handling would just store `true` again.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn raised_signal_sets_the_flag() {
        install();
        assert!(!shutdown_requested());
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe {
            raise(15);
        }
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}
