//! A byte-budgeted LRU cache of `/explore` response bodies.
//!
//! The pipeline is deterministic (bit-identical results for any thread
//! count), so a cache key only has to capture *what* was asked — the
//! snapshot generation plus the request's canonical encoding
//! ([`spade_core::RequestConfig::canonical_key`]) — and a hit can return
//! the stored bytes verbatim: hits are **exact**, not approximate.
//!
//! The implementation is a plain `HashMap` plus a lazily-invalidated recency
//! queue (the classic no-linked-list LRU): every touch pushes a fresh
//! `(sequence, key)` pair and stamps the entry with that sequence; eviction
//! pops the queue front and skips pairs whose sequence is stale. Bodies are
//! `Arc<[u8]>`, so a hit hands out a reference without copying while an
//! eviction never invalidates a response already being written.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Fixed per-entry overhead charged against the byte budget (map + queue
/// bookkeeping), on top of key and body lengths.
const ENTRY_OVERHEAD: usize = 64;

/// Counters exposed via `/stats` and `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within the budget.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Bytes currently charged (keys + bodies + overhead).
    pub bytes: usize,
}

struct Entry {
    body: Arc<[u8]>,
    /// The most recent recency-queue sequence stamped on this key.
    seq: u64,
}

/// The cache. Not internally synchronized — the server wraps it in a mutex
/// (lookups are pointer swaps; the expensive work happens outside the lock).
pub struct ResultCache {
    budget: usize,
    map: HashMap<String, Entry>,
    recency: VecDeque<(u64, String)>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `budget` bytes; `0` disables caching
    /// (every lookup misses, inserts are dropped).
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            budget,
            map: HashMap::new(),
            recency: VecDeque::new(),
            next_seq: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn cost(key: &str, body: &[u8]) -> usize {
        key.len() + body.len() + ENTRY_OVERHEAD
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        // Opportunistically trim stale recency pairs so the queue cannot
        // grow unboundedly under a hit-heavy workload.
        self.trim_stale_front();
        match self.map.get_mut(key) {
            Some(entry) => {
                self.hits += 1;
                let seq = self.next_seq;
                self.next_seq += 1;
                entry.seq = seq;
                self.recency.push_back((seq, key.to_owned()));
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a body, evicting least-recently-used entries until the
    /// budget holds. A body too large for the whole budget is not stored.
    pub fn insert(&mut self, key: String, body: Arc<[u8]>) {
        let cost = Self::cost(&key, &body);
        if cost > self.budget {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= Self::cost(&key, &old.body);
        }
        while self.bytes + cost > self.budget {
            if !self.evict_one() {
                break;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += cost;
        self.recency.push_back((seq, key.clone()));
        self.map.insert(key, Entry { body, seq });
    }

    fn trim_stale_front(&mut self) {
        while let Some((seq, key)) = self.recency.front() {
            match self.map.get(key) {
                Some(entry) if entry.seq == *seq => break,
                _ => {
                    self.recency.pop_front();
                }
            }
        }
    }

    /// Pops queue pairs until one names a live entry, then evicts it.
    fn evict_one(&mut self) -> bool {
        while let Some((seq, key)) = self.recency.pop_front() {
            let live = matches!(self.map.get(&key), Some(entry) if entry.seq == seq);
            if live {
                let entry = self.map.remove(&key).expect("checked above");
                self.bytes -= Self::cost(&key, &entry.body);
                self.evictions += 1;
                return true;
            }
        }
        false
    }

    /// Drops every entry (used on snapshot reload) without resetting the
    /// hit/miss/eviction counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    /// Drops every entry whose key starts with `prefix` — one graph's
    /// partition of the shared cache (keys are `{graph}@g{generation}:…`),
    /// retired when that graph reloads or is evicted from the catalog.
    /// Stale recency pairs are invalidated lazily, as everywhere else.
    /// Returns how many entries were dropped (not counted as budget
    /// evictions: nothing was displaced by pressure).
    pub fn retire_prefix(&mut self, prefix: &str) -> usize {
        let keys: Vec<String> =
            self.map.keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        for key in &keys {
            if let Some(entry) = self.map.remove(key) {
                self.bytes -= Self::cost(key, &entry.body);
            }
        }
        keys.len()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> Arc<[u8]> {
        vec![0u8; n].into()
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = ResultCache::new(10_000);
        assert!(c.get("a").is_none());
        c.insert("a".into(), body(10));
        assert_eq!(c.get("a").map(|b| b.len()), Some(10));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes >= 11);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Budget fits two entries of cost 1 + 100 + 64.
        let mut c = ResultCache::new(2 * (1 + 100 + ENTRY_OVERHEAD));
        c.insert("a".into(), body(100));
        c.insert("b".into(), body(100));
        assert!(c.get("a").is_some(), "refresh a");
        c.insert("c".into(), body(100));
        assert!(c.get("b").is_none(), "b was LRU and got evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn replacing_a_key_updates_bytes() {
        let mut c = ResultCache::new(10_000);
        c.insert("a".into(), body(100));
        let before = c.stats().bytes;
        c.insert("a".into(), body(10));
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().bytes, before - 90);
        assert_eq!(c.get("a").map(|b| b.len()), Some(10));
    }

    #[test]
    fn oversized_bodies_are_not_stored_and_zero_budget_disables() {
        let mut c = ResultCache::new(128);
        c.insert("big".into(), body(1_000));
        assert_eq!(c.stats().entries, 0);
        let mut off = ResultCache::new(0);
        off.insert("a".into(), body(1));
        assert!(off.get("a").is_none());
        assert_eq!(off.stats().entries, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = ResultCache::new(10_000);
        c.insert("a".into(), body(5));
        let _ = c.get("a");
        c.clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get("a").is_none());
    }

    #[test]
    fn retire_prefix_drops_only_one_partition() {
        let mut c = ResultCache::new(10_000);
        c.insert("a@g1:x".into(), body(10));
        c.insert("a@g1:y".into(), body(10));
        c.insert("b@g1:x".into(), body(10));
        let before = c.stats().bytes;
        assert_eq!(c.retire_prefix("a@"), 2);
        assert_eq!(c.stats().entries, 1);
        assert!(c.stats().bytes < before);
        assert!(c.get("a@g1:x").is_none());
        assert!(c.get("b@g1:x").is_some());
        // Not budget pressure — not an eviction.
        assert_eq!(c.stats().evictions, 0);
        // A retired key can be re-inserted and served again.
        c.insert("a@g2:x".into(), body(10));
        assert!(c.get("a@g2:x").is_some());
    }

    #[test]
    fn recency_queue_stays_bounded_under_hits() {
        let mut c = ResultCache::new(10_000);
        c.insert("a".into(), body(5));
        for _ in 0..10_000 {
            let _ = c.get("a");
        }
        assert!(c.recency.len() <= 2, "stale pairs are trimmed on get");
    }
}
