//! The multi-graph catalog: name → lazily-opened serving state, with
//! per-graph generations and byte-budgeted LRU eviction of cold graphs.
//!
//! One daemon serves N snapshots. Each registered graph owns a slot that
//! is empty until the first request touches it ([`GraphCatalog::acquire`]
//! opens the snapshot on demand — memory-mapped, so the open itself is
//! near-free and the materialized state is the only resident cost). A
//! byte budget (`--graph-memory-budget`) caps the sum of the loaded
//! states' resident estimates: crossing it evicts the least-recently-used
//! *cold* graphs, which drops their `Arc<ServingState>` — and with it the
//! mmap and the heap graph — so the process RSS actually falls once
//! in-flight requests pinned to the old `Arc` finish. A later request
//! transparently reopens the graph at a bumped generation.
//!
//! Concurrency: each slot has its own mutex, held only while (re)opening
//! that graph — never across another slot. Eviction uses `try_lock` and
//! skips slots that are mid-load, so two cold graphs loading concurrently
//! can never deadlock on each other's slots.

use crate::server::ServingState;
use spade_core::{OfflineState, SnapshotPipelineError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One registered graph: its routing name, its snapshot path, and the
/// currently-loaded state (if any).
pub struct GraphEntry {
    name: String,
    slot: Mutex<Slot>,
    /// Monotone generation: bumped by every (re)open, so cache keys from
    /// before an eviction or reload can never alias a newer body.
    generation: AtomicU64,
    /// Catalog-clock timestamp of the last acquire (the LRU key).
    last_used: AtomicU64,
    /// Resident-byte estimate of the loaded state (0 when cold).
    resident: AtomicU64,
}

struct Slot {
    path: PathBuf,
    state: Option<Arc<ServingState>>,
}

impl GraphEntry {
    /// The routing name (`/graphs/{name}/…`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The last published generation (0 before the first load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The resident-byte estimate of the loaded state (0 when cold).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether a state is currently loaded.
    pub fn is_loaded(&self) -> bool {
        self.peek().is_some()
    }

    /// The loaded state without forcing a load (`None` when cold).
    pub fn peek(&self) -> Option<Arc<ServingState>> {
        self.lock().state.as_ref().map(Arc::clone)
    }

    /// The snapshot path the next (re)open will read.
    pub fn path(&self) -> PathBuf {
        self.lock().path.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Slot> {
        self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// What an [`GraphCatalog::acquire`] or [`GraphCatalog::reload`] handed
/// back: the pinned state plus what the budget enforcement did about it.
pub struct Acquired {
    /// The serving state, pinned for this request regardless of any
    /// concurrent eviction or reload.
    pub state: Arc<ServingState>,
    /// Names of graphs evicted to make room (the server retires their
    /// result-cache partitions).
    pub evicted: Vec<String>,
    /// Whether this call performed a (re)open rather than a slot hit.
    pub loaded: bool,
}

/// The catalog. The entry set is fixed at startup (sorted by name);
/// states come and go under it.
pub struct GraphCatalog {
    entries: Vec<Arc<GraphEntry>>,
    /// Byte budget over the sum of resident estimates; 0 = unlimited.
    budget: u64,
    /// Thread budget for snapshot opens.
    threads: usize,
    clock: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
}

impl GraphCatalog {
    /// Builds a catalog over `graphs` (name → snapshot path). Names must
    /// be unique, non-empty, and URL-safe (`[A-Za-z0-9_.-]`); violations
    /// are a configuration error, not a panic.
    pub fn new(
        graphs: Vec<(String, PathBuf)>,
        budget: u64,
        threads: usize,
    ) -> Result<GraphCatalog, String> {
        if graphs.is_empty() {
            return Err("catalog needs at least one graph".to_owned());
        }
        let mut entries: Vec<Arc<GraphEntry>> = Vec::with_capacity(graphs.len());
        for (name, path) in graphs {
            if !valid_graph_name(&name) {
                return Err(format!(
                    "invalid graph name {name:?} (use [A-Za-z0-9_.-], non-empty)"
                ));
            }
            entries.push(Arc::new(GraphEntry {
                name,
                slot: Mutex::new(Slot { path, state: None }),
                generation: AtomicU64::new(0),
                last_used: AtomicU64::new(0),
                resident: AtomicU64::new(0),
            }));
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        if entries.windows(2).any(|w| w[0].name == w[1].name) {
            return Err("duplicate graph names in the catalog".to_owned());
        }
        Ok(GraphCatalog {
            entries,
            budget,
            threads,
            clock: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The registered graphs, sorted by name.
    pub fn entries(&self) -> &[Arc<GraphEntry>] {
        &self.entries
    }

    /// Index of `name` in [`GraphCatalog::entries`].
    pub fn position(&self, name: &str) -> Option<usize> {
        self.entries.binary_search_by(|e| e.name.as_str().cmp(name)).ok()
    }

    /// The registered graph names in entry (sorted) order — the fixed name
    /// set consumers like the request ledger key their per-graph state by.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    /// The configured byte budget (0 = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Sum of the loaded states' resident estimates.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.resident_bytes()).sum()
    }

    /// How many graphs are currently loaded.
    pub fn loaded_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_loaded()).count()
    }

    /// Snapshot (re)opens performed so far.
    pub fn loads_total(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Graph states evicted by the budget so far.
    pub fn evictions_total(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Pins `entry`'s serving state, opening the snapshot (mmap-backed)
    /// if the slot is cold — either because it was never touched or
    /// because the budget evicted it. A (re)open publishes a bumped
    /// generation and then enforces the budget against the *other*
    /// graphs.
    pub fn acquire(&self, entry: &GraphEntry) -> Result<Acquired, SnapshotPipelineError> {
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        let mut slot = entry.lock();
        if let Some(state) = &slot.state {
            return Ok(Acquired {
                state: Arc::clone(state),
                evicted: Vec::new(),
                loaded: false,
            });
        }
        let state = self.open_into(entry, &mut slot, None)?;
        drop(slot);
        let evicted = self.enforce_budget(&entry.name);
        Ok(Acquired { state, evicted, loaded: true })
    }

    /// Replaces `entry`'s state with a fresh open of `path` (or of its
    /// current path when `None`), publishing a bumped generation. The old
    /// state keeps serving in-flight requests that pinned it; on failure
    /// it stays published untouched.
    pub fn reload(
        &self,
        entry: &GraphEntry,
        path: Option<PathBuf>,
    ) -> Result<Acquired, SnapshotPipelineError> {
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        let mut slot = entry.lock();
        let state = self.open_into(entry, &mut slot, path)?;
        drop(slot);
        let evicted = self.enforce_budget(&entry.name);
        Ok(Acquired { state, evicted, loaded: true })
    }

    /// Opens the snapshot under the held slot lock and publishes it. The
    /// per-slot lock serializes concurrent (re)opens of the same graph
    /// without blocking any other graph.
    fn open_into(
        &self,
        entry: &GraphEntry,
        slot: &mut Slot,
        path: Option<PathBuf>,
    ) -> Result<Arc<ServingState>, SnapshotPipelineError> {
        let path = path.unwrap_or_else(|| slot.path.clone());
        let offline = OfflineState::open(&path, self.threads)?;
        let generation = entry.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let resident = offline.resident_estimate();
        let state = Arc::new(ServingState { offline, generation, source: path.clone() });
        slot.path = path;
        slot.state = Some(Arc::clone(&state));
        entry.resident.store(resident, Ordering::Relaxed);
        self.loads.fetch_add(1, Ordering::Relaxed);
        Ok(state)
    }

    /// Evicts least-recently-used graphs (never `keep`, never a slot that
    /// is mid-load) until the resident sum fits the budget or nothing is
    /// evictable. Returns the evicted names.
    fn enforce_budget(&self, keep: &str) -> Vec<String> {
        let mut evicted = Vec::new();
        if self.budget == 0 {
            return evicted;
        }
        while self.resident_bytes() > self.budget {
            let victim = self
                .entries
                .iter()
                .filter(|e| e.name != keep && e.resident_bytes() > 0)
                .min_by_key(|e| e.last_used.load(Ordering::Relaxed));
            let Some(victim) = victim else { break };
            // A slot locked right now is being (re)opened — hot by
            // definition; skipping the whole pass (instead of spinning on
            // it) keeps eviction deadlock-free.
            let Ok(mut slot) = victim.slot.try_lock() else { break };
            if slot.state.take().is_some() {
                evicted.push(victim.name.clone());
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            victim.resident.store(0, Ordering::Relaxed);
        }
        evicted
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Graph names route as a path segment, so keep them to one URL-safe
/// token: letters, digits, `_`, `.`, `-`.
pub fn valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Scans `dir` for `*.spade` snapshots and returns `(stem, path)` pairs
/// sorted by name — the `--snapshot-dir` startup path. Entries whose stem
/// is not a valid graph name are skipped (reported by the caller's log,
/// not fatal: one oddly-named file should not take the fleet node down).
pub fn scan_snapshot_dir(dir: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut graphs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("spade") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
        if valid_graph_name(stem) {
            graphs.push((stem.to_owned(), path));
        }
    }
    graphs.sort();
    Ok(graphs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        for good in ["a", "ceos", "graph-2.v1", "A_b.C-9"] {
            assert!(valid_graph_name(good), "{good}");
        }
        for bad in ["", "a/b", "a b", "ü", "a?b", &"x".repeat(129)] {
            assert!(!valid_graph_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn catalog_rejects_bad_configurations() {
        assert!(GraphCatalog::new(Vec::new(), 0, 1).is_err());
        assert!(GraphCatalog::new(vec![("a/b".into(), "x".into())], 0, 1).is_err());
        let dup = vec![("a".into(), "x".into()), ("a".into(), "y".into())];
        assert!(GraphCatalog::new(dup, 0, 1).is_err());
    }

    #[test]
    fn position_finds_sorted_names() {
        let c = GraphCatalog::new(
            vec![("b".into(), "b.spade".into()), ("a".into(), "a.spade".into())],
            0,
            1,
        )
        .unwrap();
        assert_eq!(c.position("a"), Some(0));
        assert_eq!(c.position("b"), Some(1));
        assert_eq!(c.position("c"), None);
        assert_eq!(c.entries()[0].name(), "a");
        assert_eq!(c.entries()[0].generation(), 0);
        assert!(!c.entries()[0].is_loaded());
    }
}
