//! RDFS ontology saturation.
//!
//! Section 2 of the paper: "An ontology leads to implicit triples that
//! together with the triples explicitly present in G are the graph's
//! semantics. All the implicit triples can be materialized via saturation,
//! iteratively deriving new ones from G and the rules; we consider ontologies
//! for which this process is finite as in [23], and apply it prior to our
//! analysis."
//!
//! We implement the four core RDFS entailment rules used in [23]
//! (Goasdoué et al., EDBT 2013):
//!
//! 1. `(s rdf:type C), (C rdfs:subClassOf D) ⊢ (s rdf:type D)`
//! 2. `(s p o), (p rdfs:subPropertyOf q) ⊢ (s q o)`
//! 3. `(s p o), (p rdfs:domain C) ⊢ (s rdf:type C)`
//! 4. `(s p o), (p rdfs:range C) ⊢ (o rdf:type C)`
//!
//! plus transitivity of `subClassOf` / `subPropertyOf`.
//!
//! # Semi-naive evaluation
//!
//! The old engine ([`saturate_baseline`]) re-scanned *every* triple each
//! round with a per-candidate `contains` probe, so a subclass chain of depth
//! *d* cost *d + 1* full passes. [`saturate`] instead closes the (small)
//! schema first — transitive reachability over `subClassOf` /
//! `subPropertyOf`, and per-property effective domain/range type sets that
//! already include superproperty inheritance and superclass expansion — and
//! then derives everything in **one parallel pass** over the data triples.
//! Workers emit into per-chunk buffers (chunk boundaries depend only on the
//! data, not the thread count); the buffers are concatenated in chunk order,
//! sort+deduplicated, diffed against the graph, and bulk-inserted in sorted
//! order — no per-triple `contains` during derivation. The outer loop only
//! repeats when a derived triple *changes the schema itself* (e.g. a data
//! property declared `rdfs:subPropertyOf` of an RDFS property), which real
//! ontologies essentially never do; the common case is exactly one pass.
//!
//! Output equivalence with the fixpoint baseline (same final triple set,
//! same derivation count) is pinned by the tests below and by
//! `crates/rdf/tests/ingest_prop.rs`; determinism across thread counts
//! follows from the fixed chunking and the sorted merge.

use crate::dict::TermId;
use crate::graph::{Graph, Triple};
use crate::term::Term;
use crate::vocab;
use std::collections::HashMap;

/// Saturates `graph` in place with semi-naive evaluation on all cores and
/// returns the number of derived triples.
pub fn saturate(graph: &mut Graph) -> usize {
    saturate_with_threads(graph, 0)
}

/// [`saturate`] with an explicit thread count (`0` = all cores). The result
/// — triple set *and* insertion order of derivations — is identical for
/// every thread count.
pub fn saturate_with_threads(graph: &mut Graph, threads: usize) -> usize {
    let sub_class = graph.dict.intern_iri(vocab::RDFS_SUBCLASSOF);
    let sub_prop = graph.dict.intern_iri(vocab::RDFS_SUBPROPERTYOF);
    let domain = graph.dict.intern_iri(vocab::RDFS_DOMAIN);
    let range = graph.dict.intern_iri(vocab::RDFS_RANGE);
    let rdf_type = graph.rdf_type_id();

    let mut total = 0usize;
    loop {
        // ---- Phase 1: close the schema (small: O(classes · edges)). ----
        let sc_reach = reachability(graph.property_pairs(sub_class));
        let sp_reach = reachability(graph.property_pairs(sub_prop));
        let dom_map = edge_map(graph.property_pairs(domain));
        let rng_map = edge_map(graph.property_pairs(range));

        // Per-property derivation plan: superproperties, and the full type
        // sets its subjects/objects gain (domains/ranges of the property
        // and all its superproperties, expanded up the subclass closure).
        struct Plan {
            supers: Vec<TermId>,
            subj_types: Vec<TermId>,
            obj_types: Vec<TermId>,
        }
        let mut plans: HashMap<TermId, Plan> = HashMap::new();
        let relevant: Vec<TermId> = {
            let mut v: Vec<TermId> =
                sp_reach.keys().chain(dom_map.keys()).chain(rng_map.keys()).copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for p in relevant {
            let supers = sp_reach.get(&p).cloned().unwrap_or_default();
            let mut subj_types = Vec::new();
            let mut obj_types = Vec::new();
            for q in std::iter::once(p).chain(supers.iter().copied()) {
                for (declared, types) in
                    [(&dom_map, &mut subj_types), (&rng_map, &mut obj_types)]
                {
                    if let Some(classes) = declared.get(&q) {
                        for &c in classes {
                            types.push(c);
                            if let Some(ups) = sc_reach.get(&c) {
                                types.extend(ups);
                            }
                        }
                    }
                }
            }
            subj_types.sort_unstable();
            subj_types.dedup();
            obj_types.sort_unstable();
            obj_types.dedup();
            plans.insert(p, Plan { supers, subj_types, obj_types });
        }

        // ---- Phase 2: one parallel pass over the data triples. ----
        // Chunk boundaries depend only on the triple count, and outputs are
        // merged in chunk order, so any thread count derives the same list.
        let graph_ref: &Graph = graph;
        let triples = graph_ref.triples();
        let ranges = spade_parallel::chunk_ranges(triples.len(), 1 << 14);
        let chunk_outs: Vec<Vec<Triple>> = spade_parallel::map(ranges, threads, |(a, b)| {
            // Everything one non-type triple (s, p, o) entails through p's
            // plan: superproperty copies (with class expansion when the
            // superproperty is rdf:type itself), subject types, object
            // types. Plans are closed over superproperty chains, so one
            // application per triple suffices.
            let emit_plan = |s: TermId, o: TermId, plan: &Plan, out: &mut Vec<Triple>| {
                for &q in &plan.supers {
                    out.push(Triple { s, p: q, o });
                    // A derived rdf:type edge must itself flow up the class
                    // hierarchy (the baseline reaches it in a later round).
                    if q == rdf_type {
                        if let Some(ups) = sc_reach.get(&o) {
                            out.extend(ups.iter().map(|&d| Triple { s, p: rdf_type, o: d }));
                        }
                    }
                }
                out.extend(plan.subj_types.iter().map(|&c| Triple { s, p: rdf_type, o: c }));
                // Literals cannot be typed; only resources gain types.
                if !plan.obj_types.is_empty() && graph_ref.dict.term(o).is_resource() {
                    out.extend(plan.obj_types.iter().map(|&c| Triple {
                        s: o,
                        p: rdf_type,
                        o: c,
                    }));
                }
            };
            let mut out = Vec::new();
            for &Triple { s, p, o } in &triples[a..b] {
                if p == rdf_type {
                    if let Some(ups) = sc_reach.get(&o) {
                        out.extend(ups.iter().map(|&d| Triple { s, p: rdf_type, o: d }));
                    }
                    continue;
                }
                if let Some(plan) = plans.get(&p) {
                    emit_plan(s, o, plan, &mut out);
                }
                // Transitivity of the schema relations themselves. The
                // derived closure edges are schema triples in their own
                // right, so rdfs:subClassOf / rdfs:subPropertyOf's *own*
                // plan (they can carry superproperties, domains, ranges)
                // applies to them too — the baseline reaches those via
                // later rounds.
                if p == sub_class {
                    if let Some(reach) = sc_reach.get(&o) {
                        for &d in reach.iter().filter(|&&d| d != s) {
                            out.push(Triple { s, p: sub_class, o: d });
                            if let Some(plan) = plans.get(&sub_class) {
                                emit_plan(s, d, plan, &mut out);
                            }
                        }
                    }
                } else if p == sub_prop {
                    if let Some(reach) = sp_reach.get(&o) {
                        for &q in reach.iter().filter(|&&q| q != s) {
                            out.push(Triple { s, p: sub_prop, o: q });
                            if let Some(plan) = plans.get(&sub_prop) {
                                emit_plan(s, q, plan, &mut out);
                            }
                        }
                    }
                }
            }
            out
        });

        // ---- Phase 3: sorted merge, diff, bulk insert. ----
        let mut derived: Vec<Triple> =
            Vec::with_capacity(chunk_outs.iter().map(Vec::len).sum());
        for chunk in chunk_outs {
            derived.extend(chunk);
        }
        let mut derived = spade_parallel::par_sort(derived, threads);
        derived.dedup();

        derived.retain(|t| !graph.contains(t.s, t.p, t.o));
        // A new triple only requires another round when it extends the
        // schema beyond what the closures already account for.
        let mut schema_changed = false;
        for t in &derived {
            if t.p == sub_class {
                schema_changed |= !reaches(&sc_reach, t.s, t.o);
            } else if t.p == sub_prop {
                schema_changed |= !reaches(&sp_reach, t.s, t.o);
            } else if t.p == domain {
                schema_changed |= !edge_in(&dom_map, t.s, t.o);
            } else if t.p == range {
                schema_changed |= !edge_in(&rng_map, t.s, t.o);
            }
        }
        let inserted = graph.insert_batch(&derived);
        debug_assert_eq!(inserted, derived.len());
        total += inserted;
        if inserted == 0 || !schema_changed {
            return total;
        }
    }
}

/// Adjacency map of the given edges, target lists sorted + deduped.
fn edge_map(edges: &[(TermId, TermId)]) -> HashMap<TermId, Vec<TermId>> {
    let mut map: HashMap<TermId, Vec<TermId>> = HashMap::new();
    for &(a, b) in edges {
        map.entry(a).or_default().push(b);
    }
    for targets in map.values_mut() {
        targets.sort_unstable();
        targets.dedup();
    }
    map
}

/// Transitive reachability (≥ 1 edge) over the given edges; each node's
/// reach set is sorted. A node on a cycle reaches itself.
fn reachability(edges: &[(TermId, TermId)]) -> HashMap<TermId, Vec<TermId>> {
    let adj = edge_map(edges);
    let mut out: HashMap<TermId, Vec<TermId>> = HashMap::with_capacity(adj.len());
    let mut visited: std::collections::HashSet<TermId> = std::collections::HashSet::new();
    for (&start, firsts) in &adj {
        visited.clear();
        let mut stack: Vec<TermId> = firsts.clone();
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        let mut reach: Vec<TermId> = visited.iter().copied().collect();
        reach.sort_unstable();
        out.insert(start, reach);
    }
    out
}

fn reaches(reach: &HashMap<TermId, Vec<TermId>>, from: TermId, to: TermId) -> bool {
    reach.get(&from).is_some_and(|r| r.binary_search(&to).is_ok())
}

fn edge_in(map: &HashMap<TermId, Vec<TermId>>, from: TermId, to: TermId) -> bool {
    map.get(&from).is_some_and(|r| r.binary_search(&to).is_ok())
}

/// The preserved fixpoint re-scan engine: every round re-extracts the schema
/// and re-scans all triples with per-candidate `contains` probes. Kept as
/// the benchmark baseline and the oracle for the semi-naive path.
pub fn saturate_baseline(graph: &mut Graph) -> usize {
    let sub_class = graph.dict.intern_iri(vocab::RDFS_SUBCLASSOF);
    let sub_prop = graph.dict.intern_iri(vocab::RDFS_SUBPROPERTYOF);
    let domain = graph.dict.intern_iri(vocab::RDFS_DOMAIN);
    let range = graph.dict.intern_iri(vocab::RDFS_RANGE);
    let rdf_type = graph.rdf_type_id();

    let mut derived = 0usize;
    // Schema triples are few; re-extract at each round (they may themselves
    // grow through subPropertyOf on schema properties, though that is rare).
    loop {
        let mut sub_class_of: HashMap<_, Vec<_>> = HashMap::new();
        for &(c, d) in graph.property_pairs(sub_class) {
            sub_class_of.entry(c).or_default().push(d);
        }
        let mut sub_prop_of: HashMap<_, Vec<_>> = HashMap::new();
        for &(p, q) in graph.property_pairs(sub_prop) {
            sub_prop_of.entry(p).or_default().push(q);
        }
        let mut domains: HashMap<_, Vec<_>> = HashMap::new();
        for &(p, c) in graph.property_pairs(domain) {
            domains.entry(p).or_default().push(c);
        }
        let mut ranges: HashMap<_, Vec<_>> = HashMap::new();
        for &(p, c) in graph.property_pairs(range) {
            ranges.entry(p).or_default().push(c);
        }

        let mut new_triples: Vec<Triple> = Vec::new();
        for &Triple { s, p, o } in graph.triples() {
            if p == rdf_type {
                if let Some(supers) = sub_class_of.get(&o) {
                    for &d in supers {
                        if !graph.contains(s, rdf_type, d) {
                            new_triples.push(Triple { s, p: rdf_type, o: d });
                        }
                    }
                }
            } else {
                if let Some(supers) = sub_prop_of.get(&p) {
                    for &q in supers {
                        if !graph.contains(s, q, o) {
                            new_triples.push(Triple { s, p: q, o });
                        }
                    }
                }
                if let Some(classes) = domains.get(&p) {
                    for &c in classes {
                        if !graph.contains(s, rdf_type, c) {
                            new_triples.push(Triple { s, p: rdf_type, o: c });
                        }
                    }
                }
                if let Some(classes) = ranges.get(&p) {
                    for &c in classes {
                        // Literals cannot be typed; only resources gain types.
                        if graph.dict.term(o).is_resource() && !graph.contains(o, rdf_type, c) {
                            new_triples.push(Triple { s: o, p: rdf_type, o: c });
                        }
                    }
                }
                // Transitivity of the schema relations themselves.
                if p == sub_class {
                    if let Some(supers) = sub_class_of.get(&o) {
                        for &d in supers {
                            if d != s && !graph.contains(s, sub_class, d) {
                                new_triples.push(Triple { s, p: sub_class, o: d });
                            }
                        }
                    }
                }
                if p == sub_prop {
                    if let Some(supers) = sub_prop_of.get(&o) {
                        for &q in supers {
                            if q != s && !graph.contains(s, sub_prop, q) {
                                new_triples.push(Triple { s, p: sub_prop, o: q });
                            }
                        }
                    }
                }
            }
        }

        if new_triples.is_empty() {
            return derived;
        }
        for t in new_triples {
            if graph.insert_ids(t.s, t.p, t.o) {
                derived += 1;
            }
        }
    }
}

/// Builds a schema triple `(sub, rel, sup)` with IRI strings — test helper
/// and convenience for generators.
pub fn schema_triple(sub: &str, rel: &str, sup: &str) -> (Term, Term, Term) {
    (Term::iri(sub), Term::iri(rel), Term::iri(sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn type_term() -> Term {
        Term::iri(vocab::RDF_TYPE)
    }

    #[test]
    fn subclass_propagates_types() {
        // "any CEO is a BusinessPerson" (the paper's Section 2 example).
        let mut g = Graph::new();
        g.insert(iri("CEO"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("BusinessPerson"));
        g.insert(iri("n1"), type_term(), iri("CEO"));
        let derived = saturate(&mut g);
        assert_eq!(derived, 1);
        let bp = g.dict.id_of(&iri("BusinessPerson")).unwrap();
        assert_eq!(g.nodes_of_type(bp).len(), 1);
    }

    #[test]
    fn subclass_chain_is_transitive() {
        let mut g = Graph::new();
        g.insert(iri("A"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("B"));
        g.insert(iri("B"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("C"));
        g.insert(iri("C"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("D"));
        g.insert(iri("n"), type_term(), iri("A"));
        saturate(&mut g);
        for class in ["B", "C", "D"] {
            let c = g.dict.id_of(&iri(class)).unwrap();
            assert_eq!(g.nodes_of_type(c).len(), 1, "missing type {class}");
        }
    }

    #[test]
    fn subproperty_derives_triples() {
        let mut g = Graph::new();
        g.insert(
            iri("politicalConnection"),
            Term::iri(vocab::RDFS_SUBPROPERTYOF),
            iri("connection"),
        );
        g.insert(iri("n1"), iri("politicalConnection"), iri("n3"));
        saturate(&mut g);
        let conn = g.dict.id_of(&iri("connection")).unwrap();
        assert_eq!(g.property_pairs(conn).len(), 1);
    }

    #[test]
    fn domain_and_range_type_endpoints() {
        let mut g = Graph::new();
        g.insert(iri("manages"), Term::iri(vocab::RDFS_DOMAIN), iri("CEO"));
        g.insert(iri("manages"), Term::iri(vocab::RDFS_RANGE), iri("Company"));
        g.insert(iri("p1"), iri("manages"), iri("c1"));
        saturate(&mut g);
        let ceo = g.dict.id_of(&iri("CEO")).unwrap();
        let company = g.dict.id_of(&iri("Company")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 1);
        assert_eq!(g.nodes_of_type(company).len(), 1);
    }

    #[test]
    fn range_does_not_type_literals() {
        let mut g = Graph::new();
        g.insert(iri("age"), Term::iri(vocab::RDFS_RANGE), iri("Number"));
        g.insert(iri("p1"), iri("age"), Term::int(47));
        saturate(&mut g);
        let number = g.dict.id_of(&iri("Number")).unwrap();
        assert!(g.nodes_of_type(number).is_empty());
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut g = Graph::new();
        g.insert(iri("A"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("B"));
        g.insert(iri("n"), type_term(), iri("A"));
        let first = saturate(&mut g);
        assert!(first > 0);
        assert_eq!(saturate(&mut g), 0);
    }

    #[test]
    fn combined_rules_fixpoint() {
        // domain introduces a type which then flows up a class chain.
        let mut g = Graph::new();
        g.insert(iri("manages"), Term::iri(vocab::RDFS_DOMAIN), iri("CEO"));
        g.insert(iri("CEO"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("BusinessPerson"));
        g.insert(iri("p1"), iri("manages"), iri("c1"));
        saturate(&mut g);
        let bp = g.dict.id_of(&iri("BusinessPerson")).unwrap();
        assert_eq!(g.nodes_of_type(bp).len(), 1);
    }

    #[test]
    fn subproperty_inherits_domain_and_range() {
        // Derived (s, q, o) must itself trigger domain/range of q.
        let mut g = Graph::new();
        g.insert(iri("hires"), Term::iri(vocab::RDFS_SUBPROPERTYOF), iri("employs"));
        g.insert(iri("employs"), Term::iri(vocab::RDFS_DOMAIN), iri("Employer"));
        g.insert(iri("employs"), Term::iri(vocab::RDFS_RANGE), iri("Employee"));
        g.insert(iri("acme"), iri("hires"), iri("ada"));
        saturate(&mut g);
        let employer = g.dict.id_of(&iri("Employer")).unwrap();
        let employee = g.dict.id_of(&iri("Employee")).unwrap();
        assert_eq!(g.nodes_of_type(employer).len(), 1);
        assert_eq!(g.nodes_of_type(employee).len(), 1);
    }

    #[test]
    fn data_property_below_schema_property_reruns() {
        // A property declared subPropertyOf rdfs:subClassOf turns data
        // triples into schema triples — the outer loop must pick them up.
        let mut g = Graph::new();
        g.insert(
            iri("isKindOf"),
            Term::iri(vocab::RDFS_SUBPROPERTYOF),
            Term::iri(vocab::RDFS_SUBCLASSOF),
        );
        g.insert(iri("Cat"), iri("isKindOf"), iri("Animal"));
        g.insert(iri("felix"), type_term(), iri("Cat"));
        saturate(&mut g);
        let animal = g.dict.id_of(&iri("Animal")).unwrap();
        assert_eq!(g.nodes_of_type(animal).len(), 1, "felix should be an Animal");
    }

    /// Semi-naive and fixpoint agree — triple set and derivation count —
    /// on every fixture above and a subclass/subproperty/domain/range mix.
    #[test]
    fn semi_naive_matches_baseline_on_fixtures() {
        let fixtures: Vec<Vec<(Term, Term, Term)>> = vec![
            vec![
                (iri("CEO"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("BusinessPerson")),
                (iri("n1"), type_term(), iri("CEO")),
            ],
            vec![
                (iri("A"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("B")),
                (iri("B"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("C")),
                (iri("C"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("D")),
                (iri("n"), type_term(), iri("A")),
            ],
            vec![
                (
                    iri("politicalConnection"),
                    Term::iri(vocab::RDFS_SUBPROPERTYOF),
                    iri("connection"),
                ),
                (iri("n1"), iri("politicalConnection"), iri("n3")),
            ],
            vec![
                (iri("manages"), Term::iri(vocab::RDFS_DOMAIN), iri("CEO")),
                (iri("manages"), Term::iri(vocab::RDFS_RANGE), iri("Company")),
                (iri("CEO"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("BusinessPerson")),
                (iri("p1"), iri("manages"), iri("c1")),
                (iri("age"), Term::iri(vocab::RDFS_RANGE), iri("Number")),
                (iri("p1"), iri("age"), Term::int(47)),
            ],
            vec![
                (iri("hires"), Term::iri(vocab::RDFS_SUBPROPERTYOF), iri("employs")),
                (iri("employs"), Term::iri(vocab::RDFS_DOMAIN), iri("Employer")),
                (iri("employs"), Term::iri(vocab::RDFS_RANGE), iri("Employee")),
                (iri("acme"), iri("hires"), iri("ada")),
            ],
            // Cyclic subclass hierarchy.
            vec![
                (iri("A"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("B")),
                (iri("B"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("A")),
                (iri("n"), type_term(), iri("A")),
            ],
            // Schema-changing derivation.
            vec![
                (
                    iri("isKindOf"),
                    Term::iri(vocab::RDFS_SUBPROPERTYOF),
                    Term::iri(vocab::RDFS_SUBCLASSOF),
                ),
                (iri("Cat"), iri("isKindOf"), iri("Animal")),
                (iri("felix"), type_term(), iri("Cat")),
            ],
        ];
        let build = |fixture: &[(Term, Term, Term)]| {
            let mut g = Graph::new();
            for (s, p, o) in fixture {
                g.insert(s.clone(), p.clone(), o.clone());
            }
            g
        };
        for (i, fixture) in fixtures.iter().enumerate() {
            let mut base = build(fixture);
            let n_base = saturate_baseline(&mut base);
            let mut expect: Vec<Triple> = base.triples().to_vec();
            expect.sort_unstable();
            for threads in [1, 2, 8] {
                let mut semi = build(fixture);
                let n = saturate_with_threads(&mut semi, threads);
                assert_eq!(n, n_base, "fixture {i}: derivation count");
                let mut got: Vec<Triple> = semi.triples().to_vec();
                got.sort_unstable();
                assert_eq!(got, expect, "fixture {i}: triple sets differ");
            }
        }
    }
}
