//! RDFS ontology saturation.
//!
//! Section 2 of the paper: "An ontology leads to implicit triples that
//! together with the triples explicitly present in G are the graph's
//! semantics. All the implicit triples can be materialized via saturation,
//! iteratively deriving new ones from G and the rules; we consider ontologies
//! for which this process is finite as in [23], and apply it prior to our
//! analysis."
//!
//! We implement the four core RDFS entailment rules used in [23]
//! (Goasdoué et al., EDBT 2013):
//!
//! 1. `(s rdf:type C), (C rdfs:subClassOf D) ⊢ (s rdf:type D)`
//! 2. `(s p o), (p rdfs:subPropertyOf q) ⊢ (s q o)`
//! 3. `(s p o), (p rdfs:domain C) ⊢ (s rdf:type C)`
//! 4. `(s p o), (p rdfs:range C) ⊢ (o rdf:type C)`
//!
//! plus transitivity of `subClassOf` / `subPropertyOf`, run to fixpoint.

use crate::graph::{Graph, Triple};
use crate::term::Term;
use crate::vocab;
use std::collections::HashMap;

/// Saturates `graph` in place and returns the number of derived triples.
pub fn saturate(graph: &mut Graph) -> usize {
    let sub_class = graph.dict.intern_iri(vocab::RDFS_SUBCLASSOF);
    let sub_prop = graph.dict.intern_iri(vocab::RDFS_SUBPROPERTYOF);
    let domain = graph.dict.intern_iri(vocab::RDFS_DOMAIN);
    let range = graph.dict.intern_iri(vocab::RDFS_RANGE);
    let rdf_type = graph.rdf_type_id();

    let mut derived = 0usize;
    // Schema triples are few; re-extract at each round (they may themselves
    // grow through subPropertyOf on schema properties, though that is rare).
    loop {
        let mut sub_class_of: HashMap<_, Vec<_>> = HashMap::new();
        for &(c, d) in graph.property_pairs(sub_class) {
            sub_class_of.entry(c).or_default().push(d);
        }
        let mut sub_prop_of: HashMap<_, Vec<_>> = HashMap::new();
        for &(p, q) in graph.property_pairs(sub_prop) {
            sub_prop_of.entry(p).or_default().push(q);
        }
        let mut domains: HashMap<_, Vec<_>> = HashMap::new();
        for &(p, c) in graph.property_pairs(domain) {
            domains.entry(p).or_default().push(c);
        }
        let mut ranges: HashMap<_, Vec<_>> = HashMap::new();
        for &(p, c) in graph.property_pairs(range) {
            ranges.entry(p).or_default().push(c);
        }

        let mut new_triples: Vec<Triple> = Vec::new();
        for &Triple { s, p, o } in graph.triples() {
            if p == rdf_type {
                if let Some(supers) = sub_class_of.get(&o) {
                    for &d in supers {
                        if !graph.contains(s, rdf_type, d) {
                            new_triples.push(Triple { s, p: rdf_type, o: d });
                        }
                    }
                }
            } else {
                if let Some(supers) = sub_prop_of.get(&p) {
                    for &q in supers {
                        if !graph.contains(s, q, o) {
                            new_triples.push(Triple { s, p: q, o });
                        }
                    }
                }
                if let Some(classes) = domains.get(&p) {
                    for &c in classes {
                        if !graph.contains(s, rdf_type, c) {
                            new_triples.push(Triple { s, p: rdf_type, o: c });
                        }
                    }
                }
                if let Some(classes) = ranges.get(&p) {
                    for &c in classes {
                        // Literals cannot be typed; only resources gain types.
                        if graph.dict.term(o).is_resource() && !graph.contains(o, rdf_type, c) {
                            new_triples.push(Triple { s: o, p: rdf_type, o: c });
                        }
                    }
                }
                // Transitivity of the schema relations themselves.
                if p == sub_class {
                    if let Some(supers) = sub_class_of.get(&o) {
                        for &d in supers {
                            if d != s && !graph.contains(s, sub_class, d) {
                                new_triples.push(Triple { s, p: sub_class, o: d });
                            }
                        }
                    }
                }
                if p == sub_prop {
                    if let Some(supers) = sub_prop_of.get(&o) {
                        for &q in supers {
                            if q != s && !graph.contains(s, sub_prop, q) {
                                new_triples.push(Triple { s, p: sub_prop, o: q });
                            }
                        }
                    }
                }
            }
        }

        if new_triples.is_empty() {
            return derived;
        }
        for t in new_triples {
            if graph.insert_ids(t.s, t.p, t.o) {
                derived += 1;
            }
        }
    }
}

/// Builds a schema triple `(sub, rel, sup)` with IRI strings — test helper
/// and convenience for generators.
pub fn schema_triple(sub: &str, rel: &str, sup: &str) -> (Term, Term, Term) {
    (Term::iri(sub), Term::iri(rel), Term::iri(sup))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn type_term() -> Term {
        Term::iri(vocab::RDF_TYPE)
    }

    #[test]
    fn subclass_propagates_types() {
        // "any CEO is a BusinessPerson" (the paper's Section 2 example).
        let mut g = Graph::new();
        g.insert(iri("CEO"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("BusinessPerson"));
        g.insert(iri("n1"), type_term(), iri("CEO"));
        let derived = saturate(&mut g);
        assert_eq!(derived, 1);
        let bp = g.dict.id_of(&iri("BusinessPerson")).unwrap();
        assert_eq!(g.nodes_of_type(bp).len(), 1);
    }

    #[test]
    fn subclass_chain_is_transitive() {
        let mut g = Graph::new();
        g.insert(iri("A"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("B"));
        g.insert(iri("B"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("C"));
        g.insert(iri("C"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("D"));
        g.insert(iri("n"), type_term(), iri("A"));
        saturate(&mut g);
        for class in ["B", "C", "D"] {
            let c = g.dict.id_of(&iri(class)).unwrap();
            assert_eq!(g.nodes_of_type(c).len(), 1, "missing type {class}");
        }
    }

    #[test]
    fn subproperty_derives_triples() {
        let mut g = Graph::new();
        g.insert(
            iri("politicalConnection"),
            Term::iri(vocab::RDFS_SUBPROPERTYOF),
            iri("connection"),
        );
        g.insert(iri("n1"), iri("politicalConnection"), iri("n3"));
        saturate(&mut g);
        let conn = g.dict.id_of(&iri("connection")).unwrap();
        assert_eq!(g.property_pairs(conn).len(), 1);
    }

    #[test]
    fn domain_and_range_type_endpoints() {
        let mut g = Graph::new();
        g.insert(iri("manages"), Term::iri(vocab::RDFS_DOMAIN), iri("CEO"));
        g.insert(iri("manages"), Term::iri(vocab::RDFS_RANGE), iri("Company"));
        g.insert(iri("p1"), iri("manages"), iri("c1"));
        saturate(&mut g);
        let ceo = g.dict.id_of(&iri("CEO")).unwrap();
        let company = g.dict.id_of(&iri("Company")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 1);
        assert_eq!(g.nodes_of_type(company).len(), 1);
    }

    #[test]
    fn range_does_not_type_literals() {
        let mut g = Graph::new();
        g.insert(iri("age"), Term::iri(vocab::RDFS_RANGE), iri("Number"));
        g.insert(iri("p1"), iri("age"), Term::int(47));
        saturate(&mut g);
        let number = g.dict.id_of(&iri("Number")).unwrap();
        assert!(g.nodes_of_type(number).is_empty());
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut g = Graph::new();
        g.insert(iri("A"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("B"));
        g.insert(iri("n"), type_term(), iri("A"));
        let first = saturate(&mut g);
        assert!(first > 0);
        assert_eq!(saturate(&mut g), 0);
    }

    #[test]
    fn combined_rules_fixpoint() {
        // domain introduces a type which then flows up a class chain.
        let mut g = Graph::new();
        g.insert(iri("manages"), Term::iri(vocab::RDFS_DOMAIN), iri("CEO"));
        g.insert(iri("CEO"), Term::iri(vocab::RDFS_SUBCLASSOF), iri("BusinessPerson"));
        g.insert(iri("p1"), iri("manages"), iri("c1"));
        saturate(&mut g);
        let bp = g.dict.id_of(&iri("BusinessPerson")).unwrap();
        assert_eq!(g.nodes_of_type(bp).len(), 1);
    }
}
