//! RDF, RDFS, and XSD vocabulary IRIs used by the substrate.

/// `rdf:type` — attaches types to RDF nodes (Section 2 of the paper).
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `rdfs:subClassOf`.
pub const RDFS_SUBCLASSOF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf`.
pub const RDFS_SUBPROPERTYOF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain`.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range`.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
/// `rdfs:label`.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
pub const XSD_INT: &str = "http://www.w3.org/2001/XMLSchema#int";
pub const XSD_LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
pub const XSD_NONNEG_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
pub const XSD_FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
pub const XSD_DATETIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
pub const XSD_GYEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
