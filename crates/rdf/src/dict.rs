//! Dictionary encoding of RDF terms.
//!
//! All terms are interned into dense `u32` [`TermId`]s so the rest of the
//! system (triple store, attribute tables, bitmaps, cube cells) works on
//! integers. IDs are assigned in first-seen order and are stable for the
//! lifetime of the dictionary.
//!
//! # Two-phase str-keyed interning
//!
//! The id map is keyed by a canonical *string encoding* of each term (a tag
//! byte plus the term's text; see [`encode_term_ref`]) rather than by owned
//! [`Term`] values. The hot path — interning a borrowed [`TermRef`] straight
//! out of the N-Triples parser — therefore allocates **nothing** on a hit:
//! the key is built in a reusable scratch buffer and looked up by `&str`.
//! Only the first occurrence of a term materializes an owned `Term` (for id
//! → term decoding) and a boxed key.
//!
//! Parallel ingestion runs one such dictionary per input chunk, then merges
//! them with [`Dictionary::intern_entry`] in chunk order: because a term
//! first seen in chunk *k* gets its global id after all terms of chunks
//! `< k` and in chunk-local first-seen order, the merged id assignment is
//! bit-identical to a serial first-seen scan — for every thread count.

use crate::term::{LiteralRef, Term, TermRef};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash algorithm (rustc's internal hasher): multiply-xor over 8-byte
/// chunks. Not DoS-resistant — exactly right for interning terms from
/// trusted dumps, where SipHash otherwise dominates the parse profile.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A dense identifier for an interned [`Term`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Appends the canonical key encoding of a borrowed term to `out`.
///
/// The encoding is injective over *all* terms: a tag byte selects the term
/// kind (and literal flavor), and for tagged/typed literals the tag/datatype
/// is length-prefixed (decimal byte count + `;`) before the lexical form —
/// no separator byte to collide with, whatever bytes the fields contain.
pub fn encode_term_ref(term: &TermRef<'_>, out: &mut String) {
    out.clear();
    match term {
        TermRef::Iri(s) => {
            out.push('I');
            out.push_str(s);
        }
        TermRef::Blank(s) => {
            out.push('B');
            out.push_str(s);
        }
        TermRef::Literal(LiteralRef { lexical, lang, datatype }) => match (lang, datatype) {
            (Some(lang), _) => {
                out.push('G');
                push_len(out, lang.len());
                out.push_str(lang);
                out.push_str(lexical);
            }
            (None, Some(dt)) => {
                out.push('D');
                push_len(out, dt.len());
                out.push_str(dt);
                out.push_str(lexical);
            }
            (None, None) => {
                out.push('L');
                out.push_str(lexical);
            }
        },
    }
}

/// Appends `len` in decimal followed by `;` — a fmt-free length prefix.
#[inline]
fn push_len(out: &mut String, len: usize) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = len;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits"));
    out.push(';');
}

/// Bidirectional term ↔ id mapping.
#[derive(Default)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Box<str>, TermId>,
    scratch: String,
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary").field("len", &self.terms.len()).finish()
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_id(&self) -> TermId {
        TermId(
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"),
        )
    }

    /// Interns a borrowed term, returning its (possibly pre-existing) id.
    /// Allocation-free on a hit; materializes the owned term on a miss.
    pub fn intern_ref(&mut self, term: &TermRef<'_>) -> TermId {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_term_ref(term, &mut scratch);
        let id = match self.ids.get(scratch.as_str()) {
            Some(&id) => id,
            None => {
                let id = self.next_id();
                self.terms.push(term.to_term());
                self.ids.insert(scratch.as_str().into(), id);
                id
            }
        };
        self.scratch = scratch;
        id
    }

    /// Interns `term`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: Term) -> TermId {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_term_ref(&term.as_ref(), &mut scratch);
        let id = match self.ids.get(scratch.as_str()) {
            Some(&id) => id,
            None => {
                let id = self.next_id();
                self.ids.insert(scratch.as_str().into(), id);
                self.terms.push(term);
                id
            }
        };
        self.scratch = scratch;
        id
    }

    /// Interns a term whose canonical key the caller already encoded — the
    /// merge path of parallel ingestion, which reuses the chunk-local boxed
    /// keys instead of re-encoding. `key` **must** equal
    /// [`encode_term_ref`]`(&term.as_ref(), ..)`.
    pub fn intern_entry(&mut self, key: Box<str>, term: Term) -> TermId {
        match self.ids.get(&*key) {
            Some(&id) => id,
            None => {
                let id = self.next_id();
                self.ids.insert(key, id);
                self.terms.push(term);
                id
            }
        }
    }

    /// Interns an IRI given as a string.
    pub fn intern_iri(&mut self, iri: impl AsRef<str>) -> TermId {
        self.intern_ref(&TermRef::Iri(iri.as_ref()))
    }

    /// Looks up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        let mut key = String::new();
        encode_term_ref(&term.as_ref(), &mut key);
        self.ids.get(key.as_str()).copied()
    }

    /// Looks up the id of an IRI string.
    pub fn id_of_iri(&self, iri: &str) -> Option<TermId> {
        let mut key = String::with_capacity(iri.len() + 1);
        key.push('I');
        key.push_str(iri);
        self.ids.get(key.as_str()).copied()
    }

    /// The term for `id`. Panics on an id from another dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Human-readable rendering of `id` (IRI local name, literal lexical form).
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Iri(s) => local_name(s).to_owned(),
            Term::Blank(s) => format!("_:{s}"),
            Term::Literal(l) => l.lexical.clone(),
        }
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId(i as u32), t))
    }
}

/// The fragment / last path segment of an IRI — used for display only.
pub fn local_name(iri: &str) -> &str {
    let tail = iri.rsplit(['#', '/']).next().unwrap_or(iri);
    if tail.is_empty() {
        iri
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/b"));
        let a2 = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern(Term::int(i));
            assert_eq!(id.index(), i as usize);
        }
    }

    #[test]
    fn roundtrip_term_lookup() {
        let mut d = Dictionary::new();
        let t = Term::Literal(crate::term::Literal::lang_tagged("héllo", "fr"));
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), &t);
        assert_eq!(d.id_of(&t), Some(id));
        assert_eq!(d.id_of(&Term::lit("absent")), None);
    }

    #[test]
    fn literals_differing_only_in_tag_are_distinct() {
        let mut d = Dictionary::new();
        let plain = d.intern(Term::lit("42"));
        let typed = d.intern(Term::int(42));
        assert_ne!(plain, typed);
    }

    #[test]
    fn ref_and_owned_interning_agree() {
        let mut d = Dictionary::new();
        let owned = d.intern(Term::iri("http://x/a"));
        let by_ref = d.intern_ref(&TermRef::Iri("http://x/a"));
        assert_eq!(owned, by_ref);
        let lit = d.intern(Term::lit("hello"));
        let lit_ref = d.intern_ref(&TermRef::Literal(LiteralRef {
            lexical: Cow::Borrowed("hello"),
            lang: None,
            datatype: None,
        }));
        assert_eq!(lit, lit_ref);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn encodings_disambiguate_kinds() {
        // "x" as IRI / blank / plain / lang / typed are five distinct terms.
        let mut d = Dictionary::new();
        let ids = [
            d.intern(Term::iri("x")),
            d.intern(Term::blank("x")),
            d.intern(Term::lit("x")),
            d.intern(Term::Literal(crate::term::Literal::lang_tagged("x", "en"))),
            d.intern(Term::Literal(crate::term::Literal::typed("x", "http://t"))),
        ];
        let mut unique = ids.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn encodings_stay_injective_with_embedded_nuls() {
        // Length-prefixed fields: shifting bytes between the tag/datatype
        // and the lexical form must never collide.
        let mut d = Dictionary::new();
        let ids = [
            d.intern(Term::Literal(crate::term::Literal::typed("y\0", "x"))),
            d.intern(Term::Literal(crate::term::Literal::typed("", "x\0y"))),
            d.intern(Term::Literal(crate::term::Literal::lang_tagged("b\0", "a"))),
            d.intern(Term::Literal(crate::term::Literal::lang_tagged("", "a\0b"))),
        ];
        let mut unique = ids.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(d.id_of(d.term(id)), Some(id), "roundtrip {i}");
        }
    }

    #[test]
    fn intern_entry_matches_intern() {
        let mut a = Dictionary::new();
        let mut b = Dictionary::new();
        let term = Term::int(42);
        let mut key = String::new();
        encode_term_ref(&term.as_ref(), &mut key);
        let ia = a.intern(term.clone());
        let ib = b.intern_entry(key.into(), term);
        assert_eq!(ia, ib);
    }

    #[test]
    fn local_names() {
        assert_eq!(local_name("http://x/ns#age"), "age");
        assert_eq!(local_name("http://x/people/alice"), "alice");
        assert_eq!(local_name("plain"), "plain");
    }

    #[test]
    fn display_forms() {
        let mut d = Dictionary::new();
        let iri = d.intern(Term::iri("http://x/ns#netWorth"));
        let lit = d.intern(Term::lit("Angola"));
        assert_eq!(d.display(iri), "netWorth");
        assert_eq!(d.display(lit), "Angola");
    }
}
