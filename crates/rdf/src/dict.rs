//! Dictionary encoding of RDF terms.
//!
//! All terms are interned into dense `u32` [`TermId`]s so the rest of the
//! system (triple store, attribute tables, bitmaps, cube cells) works on
//! integers. IDs are assigned in first-seen order and are stable for the
//! lifetime of the dictionary.

use crate::term::Term;
use std::collections::HashMap;

/// A dense identifier for an interned [`Term`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Bidirectional term ↔ id mapping.
#[derive(Default, Debug)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"));
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Interns an IRI given as a string.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> TermId {
        self.intern(Term::Iri(iri.into()))
    }

    /// Looks up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Looks up the id of an IRI string.
    pub fn id_of_iri(&self, iri: &str) -> Option<TermId> {
        // Avoids allocating in the common hit path only if the caller keeps a
        // Term around; for string lookups we build the key once.
        self.ids.get(&Term::Iri(iri.to_owned())).copied()
    }

    /// The term for `id`. Panics on an id from another dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Human-readable rendering of `id` (IRI local name, literal lexical form).
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Iri(s) => local_name(s).to_owned(),
            Term::Blank(s) => format!("_:{s}"),
            Term::Literal(l) => l.lexical.clone(),
        }
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId(i as u32), t))
    }
}

/// The fragment / last path segment of an IRI — used for display only.
pub fn local_name(iri: &str) -> &str {
    let tail = iri.rsplit(['#', '/']).next().unwrap_or(iri);
    if tail.is_empty() {
        iri
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/b"));
        let a2 = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern(Term::int(i));
            assert_eq!(id.index(), i as usize);
        }
    }

    #[test]
    fn roundtrip_term_lookup() {
        let mut d = Dictionary::new();
        let t = Term::Literal(crate::term::Literal::lang_tagged("héllo", "fr"));
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), &t);
        assert_eq!(d.id_of(&t), Some(id));
        assert_eq!(d.id_of(&Term::lit("absent")), None);
    }

    #[test]
    fn literals_differing_only_in_tag_are_distinct() {
        let mut d = Dictionary::new();
        let plain = d.intern(Term::lit("42"));
        let typed = d.intern(Term::int(42));
        assert_ne!(plain, typed);
    }

    #[test]
    fn local_names() {
        assert_eq!(local_name("http://x/ns#age"), "age");
        assert_eq!(local_name("http://x/people/alice"), "alice");
        assert_eq!(local_name("plain"), "plain");
    }

    #[test]
    fn display_forms() {
        let mut d = Dictionary::new();
        let iri = d.intern(Term::iri("http://x/ns#netWorth"));
        let lit = d.intern(Term::lit("Angola"));
        assert_eq!(d.display(iri), "netWorth");
        assert_eq!(d.display(lit), "Angola");
    }
}
