//! Dictionary encoding of RDF terms.
//!
//! All terms are interned into dense `u32` [`TermId`]s so the rest of the
//! system (triple store, attribute tables, bitmaps, cube cells) works on
//! integers. IDs are assigned in first-seen order and are stable for the
//! lifetime of the dictionary.
//!
//! # Two-phase str-keyed interning
//!
//! The id map is keyed by a canonical *string encoding* of each term (a tag
//! byte plus the term's text; see [`encode_term_ref`]) rather than by owned
//! [`Term`] values. The hot path — interning a borrowed [`TermRef`] straight
//! out of the N-Triples parser — therefore allocates **nothing** on a hit:
//! the key is built in a reusable scratch buffer and looked up by `&str`.
//! Only the first occurrence of a term materializes an owned `Term` (for id
//! → term decoding) and a boxed key.
//!
//! Parallel ingestion runs one such dictionary per input chunk, then merges
//! them with [`Dictionary::intern_entry`] in chunk order: because a term
//! first seen in chunk *k* gets its global id after all terms of chunks
//! `< k` and in chunk-local first-seen order, the merged id assignment is
//! bit-identical to a serial first-seen scan — for every thread count.

use crate::term::{Literal, LiteralRef, Term, TermRef};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash algorithm (rustc's internal hasher): multiply-xor over 8-byte
/// chunks. Not DoS-resistant — exactly right for interning terms from
/// trusted dumps, where SipHash otherwise dominates the parse profile.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A dense identifier for an interned [`Term`]. `repr(transparent)` so id
/// columns can be reinterpreted as `u32` columns (and back) in place —
/// the snapshot store's zero-copy load relies on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Appends the canonical key encoding of a borrowed term to `out`.
///
/// The encoding is injective over *all* terms: a tag byte selects the term
/// kind (and literal flavor), and for tagged/typed literals the tag/datatype
/// is length-prefixed (decimal byte count + `;`) before the lexical form —
/// no separator byte to collide with, whatever bytes the fields contain.
pub fn encode_term_ref(term: &TermRef<'_>, out: &mut String) {
    out.clear();
    match term {
        TermRef::Iri(s) => {
            out.push('I');
            out.push_str(s);
        }
        TermRef::Blank(s) => {
            out.push('B');
            out.push_str(s);
        }
        TermRef::Literal(LiteralRef { lexical, lang, datatype }) => match (lang, datatype) {
            // `lang` and `datatype` are mutually exclusive by construction,
            // but the fields are public — encode both when both are set so
            // the encoding stays injective (and reversible) over every
            // representable term.
            (Some(lang), Some(dt)) => {
                out.push('H');
                push_len(out, lang.len());
                out.push_str(lang);
                push_len(out, dt.len());
                out.push_str(dt);
                out.push_str(lexical);
            }
            (Some(lang), None) => {
                out.push('G');
                push_len(out, lang.len());
                out.push_str(lang);
                out.push_str(lexical);
            }
            (None, Some(dt)) => {
                out.push('D');
                push_len(out, dt.len());
                out.push_str(dt);
                out.push_str(lexical);
            }
            (None, None) => {
                out.push('L');
                out.push_str(lexical);
            }
        },
    }
}

/// Appends `len` in decimal followed by `;` — a fmt-free length prefix.
#[inline]
fn push_len(out: &mut String, len: usize) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = len;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits"));
    out.push(';');
}

/// Decodes a canonical key encoding (as produced by [`encode_term_ref`])
/// back into an owned [`Term`]. Returns `None` on malformed input — the
/// encoding is injective *and* fully reversible, which is what lets the
/// snapshot store serialize the dictionary as nothing but its key blob.
pub fn decode_term(key: &str) -> Option<Term> {
    let (&tag, _) = key.as_bytes().split_first()?;
    let rest = key.get(1..)?; // None when the first byte opens a multi-byte char
    match tag {
        b'I' => Some(Term::Iri(rest.to_owned())),
        b'B' => Some(Term::Blank(rest.to_owned())),
        b'L' => Some(Term::Literal(Literal::plain(rest))),
        b'G' => {
            let (lang, lexical) = split_len_prefixed(rest)?;
            Some(Term::Literal(Literal::lang_tagged(lexical, lang)))
        }
        b'D' => {
            let (datatype, lexical) = split_len_prefixed(rest)?;
            Some(Term::Literal(Literal::typed(lexical, datatype)))
        }
        b'H' => {
            let (lang, rest) = split_len_prefixed(rest)?;
            let (datatype, lexical) = split_len_prefixed(rest)?;
            Some(Term::Literal(Literal {
                lexical: lexical.to_owned(),
                lang: Some(lang.to_owned()),
                datatype: Some(datatype.to_owned()),
            }))
        }
        _ => None,
    }
}

/// Splits `<decimal len>;<field of len bytes><rest>` into `(field, rest)`.
fn split_len_prefixed(s: &str) -> Option<(&str, &str)> {
    let semi = s.find(';')?;
    let digits = &s[..semi];
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let len: usize = digits.parse().ok()?;
    let body = &s[semi + 1..];
    Some((body.get(..len)?, body.get(len..)?))
}

/// The dictionary flattened into serializable columns: every term's
/// canonical key encoding concatenated into one UTF-8 blob, plus each
/// term's **end** offset (term `i` occupies `ends[i-1]..ends[i]`, with an
/// implicit 0 before the first). This is the exact on-disk representation
/// of the snapshot store's dictionary section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictionaryParts {
    /// Concatenated canonical encodings, in id order.
    pub blob: String,
    /// End byte offset of each term's encoding within `blob`.
    pub ends: Vec<u64>,
}

/// A term slice failed to decode while rebuilding a dictionary from parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermDecodeError {
    /// Index of the offending term (its would-be id).
    pub index: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TermDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "term {}: {}", self.index, self.message)
    }
}

impl std::error::Error for TermDecodeError {}

/// Bidirectional term ↔ id mapping.
///
/// The id → term direction is the dense `terms` vector. The term → id map
/// is built **lazily** from it on first use: a dictionary reconstituted
/// from a snapshot that is only ever *read* (`term`, `display`, `iter`)
/// never pays for re-keying its terms.
#[derive(Default)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: std::sync::OnceLock<FxHashMap<Box<str>, TermId>>,
    scratch: String,
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary").field("len", &self.terms.len()).finish()
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_id(terms: &[Term]) -> TermId {
        TermId(u32::try_from(terms.len()).expect("dictionary overflow: more than 2^32 terms"))
    }

    /// Builds the term → id map by re-encoding every term.
    fn build_ids(terms: &[Term]) -> FxHashMap<Box<str>, TermId> {
        let mut ids: FxHashMap<Box<str>, TermId> = FxHashMap::default();
        ids.reserve(terms.len());
        let mut scratch = String::new();
        for (i, term) in terms.iter().enumerate() {
            encode_term_ref(&term.as_ref(), &mut scratch);
            ids.insert(scratch.as_str().into(), TermId(i as u32));
        }
        ids
    }

    /// The term → id map, built on first use.
    fn ids_map(&self) -> &FxHashMap<Box<str>, TermId> {
        self.ids.get_or_init(|| Self::build_ids(&self.terms))
    }

    /// Ensures the term → id map exists, so the `intern*` paths can take a
    /// field-level re-borrow of it while still pushing to `terms`.
    fn ensure_ids(&mut self) {
        if self.ids.get().is_none() {
            let _ = self.ids.set(Self::build_ids(&self.terms));
        }
    }

    /// Interns a borrowed term, returning its (possibly pre-existing) id.
    /// Allocation-free on a hit; materializes the owned term on a miss.
    pub fn intern_ref(&mut self, term: &TermRef<'_>) -> TermId {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_term_ref(term, &mut scratch);
        self.ensure_ids();
        let ids = self.ids.get_mut().expect("initialized above");
        let id = match ids.get(scratch.as_str()) {
            Some(&id) => id,
            None => {
                let id = Self::next_id(&self.terms);
                self.terms.push(term.to_term());
                ids.insert(scratch.as_str().into(), id);
                id
            }
        };
        self.scratch = scratch;
        id
    }

    /// Interns `term`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: Term) -> TermId {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_term_ref(&term.as_ref(), &mut scratch);
        self.ensure_ids();
        let ids = self.ids.get_mut().expect("initialized above");
        let id = match ids.get(scratch.as_str()) {
            Some(&id) => id,
            None => {
                let id = Self::next_id(&self.terms);
                ids.insert(scratch.as_str().into(), id);
                self.terms.push(term);
                id
            }
        };
        self.scratch = scratch;
        id
    }

    /// Interns a term whose canonical key the caller already encoded — the
    /// merge path of parallel ingestion, which reuses the chunk-local boxed
    /// keys instead of re-encoding. `key` **must** equal
    /// [`encode_term_ref`]`(&term.as_ref(), ..)`.
    pub fn intern_entry(&mut self, key: Box<str>, term: Term) -> TermId {
        self.ensure_ids();
        let ids = self.ids.get_mut().expect("initialized above");
        match ids.get(&*key) {
            Some(&id) => id,
            None => {
                let id = Self::next_id(&self.terms);
                ids.insert(key, id);
                self.terms.push(term);
                id
            }
        }
    }

    /// Interns an IRI given as a string.
    pub fn intern_iri(&mut self, iri: impl AsRef<str>) -> TermId {
        self.intern_ref(&TermRef::Iri(iri.as_ref()))
    }

    /// Looks up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        let mut key = String::new();
        encode_term_ref(&term.as_ref(), &mut key);
        self.ids_map().get(key.as_str()).copied()
    }

    /// Looks up the id of an IRI string.
    pub fn id_of_iri(&self, iri: &str) -> Option<TermId> {
        let mut key = String::with_capacity(iri.len() + 1);
        key.push('I');
        key.push_str(iri);
        self.ids_map().get(key.as_str()).copied()
    }

    /// The term for `id`. Panics on an id from another dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Human-readable rendering of `id` (IRI local name, literal lexical form).
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Iri(s) => local_name(s).to_owned(),
            Term::Blank(s) => format!("_:{s}"),
            Term::Literal(l) => l.lexical.clone(),
        }
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId(i as u32), t))
    }

    /// Flattens the dictionary into its serializable columns (canonical key
    /// blob + end offsets). The inverse is [`Dictionary::from_parts`].
    pub fn to_parts(&self) -> DictionaryParts {
        let mut blob = String::new();
        let mut ends = Vec::with_capacity(self.terms.len());
        let mut scratch = String::new();
        for term in &self.terms {
            encode_term_ref(&term.as_ref(), &mut scratch);
            blob.push_str(&scratch);
            ends.push(blob.len() as u64);
        }
        DictionaryParts { blob, ends }
    }

    /// Reconstitutes a dictionary from its columns: term text is **borrowed
    /// by offset** out of `blob` (no intermediate per-term buffers) and
    /// terms decode in parallel over `threads` workers (`0` = auto), ids
    /// `0..n` in slice order. The term → id map is *not* rebuilt here — it
    /// materializes lazily on the first `id_of`/`intern`, which the
    /// snapshot serving path never reaches.
    ///
    /// Fails (never panics) if an offset is out of range, not a char
    /// boundary, non-monotone, or a slice is not a valid canonical
    /// encoding. Slices are trusted to be distinct (the writer emits each
    /// interned term once; the snapshot checksum guards the file).
    pub fn from_parts(
        blob: &str,
        ends: &[u64],
        threads: usize,
    ) -> Result<Dictionary, TermDecodeError> {
        let err = |index: usize, message: &str| TermDecodeError {
            index,
            message: message.to_owned(),
        };
        if ends.last().copied().unwrap_or(0) != blob.len() as u64 {
            return Err(err(ends.len().saturating_sub(1), "blob length mismatch"));
        }
        // Cut the blob into per-term slices, validating monotonicity and
        // char boundaries (`str::get` refuses both bad cases).
        let mut slices: Vec<&str> = Vec::with_capacity(ends.len());
        let mut start = 0u64;
        for (i, &end) in ends.iter().enumerate() {
            if end < start {
                return Err(err(i, "non-monotone offsets"));
            }
            let slice = blob
                .get(start as usize..end as usize)
                .ok_or_else(|| err(i, "offset out of range or not a char boundary"))?;
            slices.push(slice);
            start = end;
        }
        // Decode in parallel; chunk boundaries depend only on the data, so
        // the result is thread-count-independent.
        let ranges = spade_parallel::chunk_ranges(slices.len(), 1 << 11);
        let slices_ref = &slices;
        let chunks: Vec<Result<Vec<Term>, TermDecodeError>> =
            spade_parallel::map(ranges, threads, |(a, b)| {
                slices_ref[a..b]
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        decode_term(s).ok_or_else(|| err(a + i, "invalid canonical encoding"))
                    })
                    .collect()
            });
        let mut terms = Vec::with_capacity(slices.len());
        for chunk in chunks {
            terms.extend(chunk?);
        }
        Ok(Dictionary { terms, ids: std::sync::OnceLock::new(), scratch: String::new() })
    }
}

/// The fragment / last path segment of an IRI — used for display only.
pub fn local_name(iri: &str) -> &str {
    let tail = iri.rsplit(['#', '/']).next().unwrap_or(iri);
    if tail.is_empty() {
        iri
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/b"));
        let a2 = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern(Term::int(i));
            assert_eq!(id.index(), i as usize);
        }
    }

    #[test]
    fn roundtrip_term_lookup() {
        let mut d = Dictionary::new();
        let t = Term::Literal(crate::term::Literal::lang_tagged("héllo", "fr"));
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), &t);
        assert_eq!(d.id_of(&t), Some(id));
        assert_eq!(d.id_of(&Term::lit("absent")), None);
    }

    #[test]
    fn literals_differing_only_in_tag_are_distinct() {
        let mut d = Dictionary::new();
        let plain = d.intern(Term::lit("42"));
        let typed = d.intern(Term::int(42));
        assert_ne!(plain, typed);
    }

    #[test]
    fn ref_and_owned_interning_agree() {
        let mut d = Dictionary::new();
        let owned = d.intern(Term::iri("http://x/a"));
        let by_ref = d.intern_ref(&TermRef::Iri("http://x/a"));
        assert_eq!(owned, by_ref);
        let lit = d.intern(Term::lit("hello"));
        let lit_ref = d.intern_ref(&TermRef::Literal(LiteralRef {
            lexical: Cow::Borrowed("hello"),
            lang: None,
            datatype: None,
        }));
        assert_eq!(lit, lit_ref);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn encodings_disambiguate_kinds() {
        // "x" as IRI / blank / plain / lang / typed are five distinct terms.
        let mut d = Dictionary::new();
        let ids = [
            d.intern(Term::iri("x")),
            d.intern(Term::blank("x")),
            d.intern(Term::lit("x")),
            d.intern(Term::Literal(crate::term::Literal::lang_tagged("x", "en"))),
            d.intern(Term::Literal(crate::term::Literal::typed("x", "http://t"))),
        ];
        let mut unique = ids.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn encodings_stay_injective_with_embedded_nuls() {
        // Length-prefixed fields: shifting bytes between the tag/datatype
        // and the lexical form must never collide.
        let mut d = Dictionary::new();
        let ids = [
            d.intern(Term::Literal(crate::term::Literal::typed("y\0", "x"))),
            d.intern(Term::Literal(crate::term::Literal::typed("", "x\0y"))),
            d.intern(Term::Literal(crate::term::Literal::lang_tagged("b\0", "a"))),
            d.intern(Term::Literal(crate::term::Literal::lang_tagged("", "a\0b"))),
        ];
        let mut unique = ids.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(d.id_of(d.term(id)), Some(id), "roundtrip {i}");
        }
    }

    #[test]
    fn intern_entry_matches_intern() {
        let mut a = Dictionary::new();
        let mut b = Dictionary::new();
        let term = Term::int(42);
        let mut key = String::new();
        encode_term_ref(&term.as_ref(), &mut key);
        let ia = a.intern(term.clone());
        let ib = b.intern_entry(key.into(), term);
        assert_eq!(ia, ib);
    }

    #[test]
    fn decode_inverts_encode() {
        let terms = [
            Term::iri("http://x/a"),
            Term::blank("b0"),
            Term::lit(""),
            Term::lit("x;y\0z"),
            Term::Literal(crate::term::Literal::lang_tagged("héllo;", "fr")),
            Term::Literal(crate::term::Literal::typed("1;2", "http://t;u")),
            // Dual-tagged literal (only reachable via the public fields):
            // must round-trip rather than collapse to the lang-only form.
            Term::Literal(crate::term::Literal {
                lexical: "x".into(),
                lang: Some("en".into()),
                datatype: Some("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString".into()),
            }),
            Term::int(-7),
        ];
        let mut key = String::new();
        for t in &terms {
            encode_term_ref(&t.as_ref(), &mut key);
            assert_eq!(decode_term(&key).as_ref(), Some(t), "key {key:?}");
        }
        for bad in ["", "X", "G;x", "Gx;y", "G9;ab", "D2x", "G2"] {
            assert_eq!(decode_term(bad), None, "bad key {bad:?}");
        }
    }

    #[test]
    fn parts_roundtrip_bit_identical() {
        let mut d = Dictionary::new();
        d.intern(Term::iri("http://x/a"));
        d.intern(Term::Literal(crate::term::Literal::lang_tagged("x;3", "en")));
        d.intern(Term::lit("plain"));
        d.intern(Term::blank("n1"));
        let parts = d.to_parts();
        for threads in [1, 2, 8] {
            let back = Dictionary::from_parts(&parts.blob, &parts.ends, threads).unwrap();
            assert_eq!(back.len(), d.len());
            for (id, term) in d.iter() {
                assert_eq!(back.term(id), term);
                assert_eq!(back.id_of(term), Some(id), "id map rebuilt");
            }
            // The rebuilt dictionary interns new terms after the loaded ones.
            let mut back = back;
            assert_eq!(back.intern(Term::lit("fresh")).index(), d.len());
        }
        assert!(Dictionary::from_parts("", &[], 1).unwrap().is_empty());
    }

    #[test]
    fn from_parts_rejects_malformed_columns() {
        let parts = {
            let mut d = Dictionary::new();
            d.intern(Term::iri("http://x/a"));
            d.intern(Term::lit("v"));
            d.to_parts()
        };
        // Wrong total length.
        assert!(Dictionary::from_parts(&parts.blob, &[parts.ends[0]], 1).is_err());
        // Non-monotone offsets.
        assert!(
            Dictionary::from_parts(&parts.blob, &[parts.ends[1], parts.ends[1]], 1).is_err()
        );
        // Offset not on a char boundary.
        assert!(Dictionary::from_parts("Iaé", &[2, 4], 1).is_err());
        // Invalid tag byte.
        assert!(Dictionary::from_parts("Zoops", &[5], 1).is_err());
    }

    #[test]
    fn local_names() {
        assert_eq!(local_name("http://x/ns#age"), "age");
        assert_eq!(local_name("http://x/people/alice"), "alice");
        assert_eq!(local_name("plain"), "plain");
    }

    #[test]
    fn display_forms() {
        let mut d = Dictionary::new();
        let iri = d.intern(Term::iri("http://x/ns#netWorth"));
        let lit = d.intern(Term::lit("Angola"));
        assert_eq!(d.display(iri), "netWorth");
        assert_eq!(d.display(lit), "Angola");
    }
}
