//! Parallel, allocation-lean N-Triples ingestion.
//!
//! The offline phase the paper relies on (parse → dictionary-encode → index)
//! used to be a serial, `String`-per-term, hash-per-insert pipeline. This
//! module rebuilds it as a deterministic two-phase subsystem:
//!
//! 1. **Chunked zero-copy parse + local intern.** The input is split at line
//!    boundaries into chunks whose size depends only on the input (never on
//!    the thread count), and the chunks fan out over
//!    [`spade_parallel::map`]. Each worker parses its lines with
//!    [`crate::ntriples::parse_line_ref`] — borrowed `&str` term slices, no
//!    per-term `String` — and interns them into a *chunk-local* str-keyed
//!    dictionary, so each distinct term is materialized at most once per
//!    chunk and each occurrence costs a scratch-buffer encode + hash.
//! 2. **Deterministic merge + bulk index build.** Chunk dictionaries merge
//!    into the global [`Dictionary`] in chunk order, reusing the chunk-local
//!    boxed keys; a term first seen in chunk *k* receives its global id
//!    after all terms of earlier chunks and in chunk-local first-seen order,
//!    which equals the serial first-seen order. Local triples remap through
//!    the per-chunk id table and the graph is assembled with
//!    [`Graph::from_parts`] (sort + dedup instead of per-insert probes).
//!
//! The result is **bit-identical** — same `TermId` assignment, same triple
//! order — for every thread count, and to the preserved serial path
//! [`ingest_baseline`]; `crates/rdf/tests/ingest_prop.rs` pins this.
//!
//! Parse errors carry global 1-based line numbers: each worker reports its
//! chunk-local line, and the earliest failing chunk's offset is computed
//! from the (complete) line counts of the chunks before it.

use crate::dict::{encode_term_ref, Dictionary, FxHashMap, TermId};
use crate::graph::{Graph, Triple};
use crate::ntriples::{parse_line_ref, NtParseError};
use crate::term::{Term, TermRef};
use crate::vocab;

/// Default parse-chunk size in bytes (snapped forward to a line boundary).
pub const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;

/// Parses an N-Triples document with the parallel zero-copy pipeline.
/// `threads = 0` uses all cores; every thread count produces a bit-identical
/// graph.
pub fn ingest(input: &str, threads: usize) -> Result<Graph, NtParseError> {
    ingest_chunked(input, threads, DEFAULT_CHUNK_BYTES)
}

/// [`ingest`] with an explicit chunk size — exposed so tests can exercise
/// multi-chunk merging on small inputs. Chunk boundaries depend only on the
/// input and `chunk_bytes`, keeping the output thread-count-independent.
pub fn ingest_chunked(
    input: &str,
    threads: usize,
    chunk_bytes: usize,
) -> Result<Graph, NtParseError> {
    let chunks = chunk_at_lines(input, chunk_bytes);
    // One worker (or one chunk) needs no local dictionaries or merge: intern
    // straight into the global dictionary. Identical output by construction
    // — the merge path exists to reproduce exactly this serial order.
    if chunks.len() <= 1 || spade_parallel::resolve_threads(threads) == 1 {
        return ingest_serial(input, threads);
    }
    let outs: Vec<ChunkParse> = spade_parallel::map(chunks, threads, parse_chunk);

    // Surface the earliest error with its global line number. Chunks before
    // the earliest failing one completed fully, so their line counts are
    // exact.
    let mut line_offset = 0usize;
    for out in &outs {
        if let Some((local_line, message)) = &out.error {
            return Err(NtParseError {
                line: line_offset + local_line,
                message: message.clone(),
            });
        }
        line_offset += out.lines;
    }

    // Merge chunk dictionaries in chunk order; remap chunk-local triples.
    let mut dict = Dictionary::new();
    dict.intern_iri(vocab::RDF_TYPE); // match Graph::new()'s eager intern
    let total: usize = outs.iter().map(|o| o.triples.len()).sum();
    let mut triples: Vec<Triple> = Vec::with_capacity(total);
    let mut remap: Vec<TermId> = Vec::new();
    for out in outs {
        remap.clear();
        remap.extend(out.entries.into_iter().map(|(key, term)| dict.intern_entry(key, term)));
        triples.extend(out.triples.iter().map(|&[s, p, o]| Triple {
            s: remap[s as usize],
            p: remap[p as usize],
            o: remap[o as usize],
        }));
    }
    Ok(Graph::from_parts(dict, triples, threads))
}

/// The one-worker fast path: zero-copy parse interning directly into the
/// global dictionary (no chunk-local maps, no merge), then the bulk sort +
/// dedup graph build.
fn ingest_serial(input: &str, threads: usize) -> Result<Graph, NtParseError> {
    let mut dict = Dictionary::new();
    dict.intern_iri(vocab::RDF_TYPE); // match Graph::new()'s eager intern
    let mut triples: Vec<Triple> = Vec::with_capacity(input.len() / 96);
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line_ref(line)
            .map_err(|message| NtParseError { line: lineno + 1, message })?;
        let s = dict.intern_ref(&s);
        let p = dict.intern_ref(&p);
        let o = dict.intern_ref(&o);
        triples.push(Triple { s, p, o });
    }
    Ok(Graph::from_parts(dict, triples, threads))
}

/// The preserved serial baseline: line-at-a-time owned-`Term` parsing and
/// per-insert interning/indexing, exactly the cost model the optimized
/// pipeline replaces. Kept for benchmarks (`bench_ingest`) and as the
/// equivalence oracle in tests.
pub fn ingest_baseline(input: &str) -> Result<Graph, NtParseError> {
    let mut graph = Graph::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line_ref(line)
            .map_err(|message| NtParseError { line: lineno + 1, message })?;
        graph.insert(s.to_term(), p.to_term(), o.to_term());
    }
    Ok(graph)
}

/// Splits `input` into chunks of at least `chunk_bytes` bytes, each ending
/// on a line boundary (or EOF). Depends only on the input text.
fn chunk_at_lines(input: &str, chunk_bytes: usize) -> Vec<&str> {
    let bytes = input.as_bytes();
    let step = chunk_bytes.max(1);
    let mut out = Vec::with_capacity(bytes.len() / step + 1);
    let mut start = 0;
    while start < bytes.len() {
        let mut end = (start + step).min(bytes.len());
        while end < bytes.len() && bytes[end - 1] != b'\n' {
            end += 1;
        }
        out.push(&input[start..end]);
        start = end;
    }
    out
}

/// One chunk's parse output: the chunk-local dictionary in first-seen order
/// (canonical key + owned term) and triples as local-id triangles.
struct ChunkParse {
    entries: Vec<(Box<str>, Term)>,
    triples: Vec<[u32; 3]>,
    lines: usize,
    /// Chunk-local 1-based line and message of the first parse error.
    error: Option<(usize, String)>,
}

fn parse_chunk(chunk: &str) -> ChunkParse {
    let mut keys: FxHashMap<Box<str>, u32> = FxHashMap::default();
    let mut terms: Vec<Term> = Vec::new();
    let mut scratch = String::new();
    let mut triples: Vec<[u32; 3]> = Vec::new();
    let mut lines = 0usize;
    let mut error = None;

    fn local_id(
        term: &TermRef<'_>,
        keys: &mut FxHashMap<Box<str>, u32>,
        terms: &mut Vec<Term>,
        scratch: &mut String,
    ) -> u32 {
        encode_term_ref(term, scratch);
        match keys.get(scratch.as_str()) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(terms.len()).expect("more than 2^32 terms in one chunk");
                keys.insert(scratch.as_str().into(), id);
                terms.push(term.to_term());
                id
            }
        }
    }

    for (lineno, raw) in chunk.lines().enumerate() {
        lines = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line_ref(line) {
            Ok((s, p, o)) => {
                // Intern in s, p, o order — the serial first-seen order.
                let s = local_id(&s, &mut keys, &mut terms, &mut scratch);
                let p = local_id(&p, &mut keys, &mut terms, &mut scratch);
                let o = local_id(&o, &mut keys, &mut terms, &mut scratch);
                triples.push([s, p, o]);
            }
            Err(message) => {
                error = Some((lineno + 1, message));
                break;
            }
        }
    }

    // Reunite each local id with its boxed key, in id order.
    let mut key_by_id: Vec<Option<Box<str>>> = (0..terms.len()).map(|_| None).collect();
    for (key, id) in keys {
        key_by_id[id as usize] = Some(key);
    }
    let entries = key_by_id
        .into_iter()
        .map(|k| k.expect("every local id has a key"))
        .zip(terms)
        .collect();
    ChunkParse { entries, triples, lines, error }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
<http://x/a> <http://x/p> \"v1\" .
<http://x/b> <http://x/p> \"v2\" .
# comment
<http://x/a> <http://x/q> <http://x/b> .
<http://x/c> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/C> .
<http://x/a> <http://x/p> \"v1\" .
";

    #[test]
    fn chunking_covers_input_at_line_boundaries() {
        for chunk_bytes in [1, 7, 64, 1 << 20] {
            let chunks = chunk_at_lines(SRC, chunk_bytes);
            assert_eq!(chunks.concat(), SRC);
            for c in &chunks[..chunks.len() - 1] {
                assert!(c.ends_with('\n'), "chunk not line-aligned: {c:?}");
            }
        }
        assert!(chunk_at_lines("", 16).is_empty());
        // No trailing newline: last chunk absorbs the partial line.
        let chunks = chunk_at_lines("a\nb", 1);
        assert_eq!(chunks, vec!["a\n", "b"]);
    }

    #[test]
    fn parallel_ingest_matches_baseline_exactly() {
        let baseline = ingest_baseline(SRC).unwrap();
        for threads in [1, 2, 8] {
            for chunk_bytes in [16, 64, DEFAULT_CHUNK_BYTES] {
                let g = ingest_chunked(SRC, threads, chunk_bytes).unwrap();
                assert_eq!(g.triples(), baseline.triples());
                assert_eq!(g.dict.len(), baseline.dict.len());
                for (id, term) in baseline.dict.iter() {
                    assert_eq!(g.dict.term(id), term);
                }
            }
        }
    }

    #[test]
    fn error_line_numbers_are_global_across_chunks() {
        let src = "<http://x/a> <http://x/p> \"ok\" .\n\
                   <http://x/a> <http://x/p> \"ok\" .\n\
                   <http://x/a> <http://x/p> \"ok\" .\n\
                   broken\n";
        for chunk_bytes in [8, 40, 1 << 20] {
            let err = ingest_chunked(src, 4, chunk_bytes).unwrap_err();
            assert_eq!(err.line, 4, "chunk_bytes {chunk_bytes}");
        }
        // Earliest error wins even when later chunks also fail.
        let src2 = "broken1\nbroken2\n<http://x/a> <http://x/p> \"ok\" .\n";
        let err = ingest_chunked(src2, 4, 8).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn baseline_and_parallel_agree_on_errors() {
        let src = "<http://x/a> <http://x/p> \"ok\" .\nbad line\n";
        let a = ingest_baseline(src).unwrap_err();
        let b = ingest(src, 4).unwrap_err();
        assert_eq!(a, b);
    }
}
