//! RDF terms and literal value typing.

use std::borrow::Cow;
use std::fmt;

/// A literal value: lexical form plus either a language tag or a datatype IRI.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, e.g. `"66"` or `"Isabel dos Santos"`.
    pub lexical: String,
    /// Language tag (`@en`), mutually exclusive with `datatype`.
    pub lang: Option<String>,
    /// Datatype IRI (`^^xsd:integer`); `None` means a plain literal.
    pub datatype: Option<String>,
}

impl Literal {
    /// Plain string literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), lang: None, datatype: None }
    }

    /// Language-tagged literal.
    pub fn lang_tagged(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), lang: Some(lang.into()), datatype: None }
    }

    /// Typed literal.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), lang: None, datatype: Some(datatype.into()) }
    }

    /// Integer literal with `xsd:integer` datatype.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::XSD_INTEGER)
    }

    /// Decimal literal with `xsd:double` datatype.
    pub fn double(v: f64) -> Self {
        Literal::typed(format!("{v}"), crate::vocab::XSD_DOUBLE)
    }
}

/// An RDF term.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A URI/IRI reference.
    Iri(String),
    /// A blank node with its local label.
    Blank(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Convenience IRI constructor.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Convenience blank-node constructor.
    pub fn blank(s: impl Into<String>) -> Self {
        Term::Blank(s.into())
    }

    /// Convenience plain-literal constructor.
    pub fn lit(s: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(s))
    }

    /// Convenience integer-literal constructor.
    pub fn int(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// Convenience double-literal constructor.
    pub fn num(v: f64) -> Self {
        Term::Literal(Literal::double(v))
    }

    /// `true` for IRIs and blank nodes (things that can be subjects).
    pub fn is_resource(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }

    /// `true` for literals.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The literal, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// The IRI string, if this term is one.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// Classifies the term's value for attribute statistics (the paper's
    /// Offline Attribute Analysis gathers "the type of property values, e.g.
    /// String, Integer, Date").
    pub fn value_kind(&self) -> ValueKind {
        match self {
            Term::Iri(_) | Term::Blank(_) => ValueKind::Resource,
            Term::Literal(l) => literal_kind(l),
        }
    }

    /// Numeric interpretation of the term, when it has one.
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Term::Literal(l) => parse_numeric(&l.lexical),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Blank(s) => write!(f, "_:{s}"),
            Term::Literal(l) => {
                write!(f, "\"{}\"", l.lexical)?;
                if let Some(lang) = &l.lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = &l.datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

/// A borrowed literal: the zero-copy view the N-Triples parser produces.
///
/// `lexical` is a [`Cow`] because escape-free literals (the overwhelming
/// majority in real dumps) borrow straight from the input buffer, while
/// escape-bearing ones decode into an owned spill string. Language tags and
/// datatype IRIs never contain escapes, so they always borrow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiteralRef<'a> {
    /// The (unescaped) lexical form.
    pub lexical: Cow<'a, str>,
    /// Language tag, mutually exclusive with `datatype`.
    pub lang: Option<&'a str>,
    /// Datatype IRI; `None` means a plain literal.
    pub datatype: Option<&'a str>,
}

impl LiteralRef<'_> {
    /// Materializes an owned [`Literal`].
    pub fn to_literal(&self) -> Literal {
        Literal {
            lexical: self.lexical.clone().into_owned(),
            lang: self.lang.map(str::to_owned),
            datatype: self.datatype.map(str::to_owned),
        }
    }
}

/// A borrowed RDF term — slices into a parse buffer, no per-term `String`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TermRef<'a> {
    /// IRI reference.
    Iri(&'a str),
    /// Blank node label.
    Blank(&'a str),
    /// Literal.
    Literal(LiteralRef<'a>),
}

impl TermRef<'_> {
    /// Materializes an owned [`Term`] (allocates; done once per *distinct*
    /// term by the dictionary, not once per occurrence).
    pub fn to_term(&self) -> Term {
        match self {
            TermRef::Iri(s) => Term::Iri((*s).to_owned()),
            TermRef::Blank(s) => Term::Blank((*s).to_owned()),
            TermRef::Literal(l) => Term::Literal(l.to_literal()),
        }
    }

    /// `true` for IRIs and blank nodes.
    pub fn is_resource(&self) -> bool {
        !matches!(self, TermRef::Literal(_))
    }
}

impl Term {
    /// The borrowed view of this term.
    pub fn as_ref(&self) -> TermRef<'_> {
        match self {
            Term::Iri(s) => TermRef::Iri(s),
            Term::Blank(s) => TermRef::Blank(s),
            Term::Literal(l) => TermRef::Literal(LiteralRef {
                lexical: Cow::Borrowed(&l.lexical),
                lang: l.lang.as_deref(),
                datatype: l.datatype.as_deref(),
            }),
        }
    }
}

/// Coarse value classification used by attribute statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// IRI or blank node — a link to another graph node.
    Resource,
    /// Integer-valued literal.
    Integer,
    /// Floating-point literal.
    Decimal,
    /// ISO `YYYY-MM-DD`-shaped literal.
    Date,
    /// `true` / `false` literal.
    Boolean,
    /// Everything else: free text.
    String,
}

impl ValueKind {
    /// Numeric kinds can serve as measures.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueKind::Integer | ValueKind::Decimal)
    }
}

fn literal_kind(l: &Literal) -> ValueKind {
    use crate::vocab::*;
    if let Some(dt) = &l.datatype {
        match dt.as_str() {
            XSD_INTEGER | XSD_INT | XSD_LONG | XSD_NONNEG_INTEGER => return ValueKind::Integer,
            XSD_DOUBLE | XSD_FLOAT | XSD_DECIMAL => return ValueKind::Decimal,
            XSD_DATE | XSD_DATETIME | XSD_GYEAR => return ValueKind::Date,
            XSD_BOOLEAN => return ValueKind::Boolean,
            XSD_STRING => return sniff_kind(&l.lexical),
            _ => {}
        }
    }
    sniff_kind(&l.lexical)
}

/// Infers a value kind from an untyped lexical form. Real RDF graphs often
/// carry plain literals for numeric data, so the offline analysis sniffs them.
fn sniff_kind(lexical: &str) -> ValueKind {
    let t = lexical.trim();
    if t.is_empty() {
        return ValueKind::String;
    }
    if t == "true" || t == "false" {
        return ValueKind::Boolean;
    }
    if t.parse::<i64>().is_ok() {
        return ValueKind::Integer;
    }
    if t.parse::<f64>().is_ok() {
        return ValueKind::Decimal;
    }
    if is_iso_date(t) {
        return ValueKind::Date;
    }
    ValueKind::String
}

fn is_iso_date(t: &str) -> bool {
    // YYYY-MM-DD with optional time suffix.
    let bytes = t.as_bytes();
    if bytes.len() < 10 {
        return false;
    }
    bytes[..4].iter().all(|b| b.is_ascii_digit())
        && bytes[4] == b'-'
        && bytes[5..7].iter().all(|b| b.is_ascii_digit())
        && bytes[7] == b'-'
        && bytes[8..10].iter().all(|b| b.is_ascii_digit())
}

fn parse_numeric(lexical: &str) -> Option<f64> {
    let t = lexical.trim();
    t.parse::<f64>().ok().filter(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_kind_classification() {
        assert_eq!(Term::int(5).value_kind(), ValueKind::Integer);
        assert_eq!(Term::num(2.5).value_kind(), ValueKind::Decimal);
        assert_eq!(Term::lit("hello world").value_kind(), ValueKind::String);
        assert_eq!(Term::lit("42").value_kind(), ValueKind::Integer);
        assert_eq!(Term::lit("3.14").value_kind(), ValueKind::Decimal);
        assert_eq!(Term::lit("true").value_kind(), ValueKind::Boolean);
        assert_eq!(Term::lit("1969-07-20").value_kind(), ValueKind::Date);
        assert_eq!(Term::iri("http://x").value_kind(), ValueKind::Resource);
        assert_eq!(Term::blank("b0").value_kind(), ValueKind::Resource);
    }

    #[test]
    fn numeric_values() {
        assert_eq!(Term::int(-3).numeric_value(), Some(-3.0));
        assert_eq!(Term::lit("2.8e9").numeric_value(), Some(2.8e9));
        assert_eq!(Term::lit("NaN"), Term::lit("NaN"));
        assert_eq!(Term::lit("NaN").numeric_value(), None);
        assert_eq!(Term::iri("http://x").numeric_value(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
        assert_eq!(Term::blank("n1").to_string(), "_:n1");
        assert_eq!(Term::lit("x").to_string(), "\"x\"");
        assert_eq!(
            Term::Literal(Literal::lang_tagged("chat", "fr")).to_string(),
            "\"chat\"@fr"
        );
        assert_eq!(Term::int(7).to_string(), format!("\"7\"^^<{}>", crate::vocab::XSD_INTEGER));
    }

    #[test]
    fn date_shapes() {
        assert!(is_iso_date("2021-06-20"));
        assert!(is_iso_date("2021-06-20T10:00:00Z"));
        assert!(!is_iso_date("20210620"));
        assert!(!is_iso_date("not-a-date"));
    }

    #[test]
    fn numeric_kinds_are_measure_candidates() {
        assert!(ValueKind::Integer.is_numeric());
        assert!(ValueKind::Decimal.is_numeric());
        assert!(!ValueKind::String.is_numeric());
        assert!(!ValueKind::Resource.is_numeric());
        assert!(!ValueKind::Date.is_numeric());
    }
}
