//! N-Triples parsing and serialization.
//!
//! Supports the line-based N-Triples syntax used by the paper's datasets
//! (all six Table-2 graphs ship as `.nt` dumps): IRIs in angle brackets,
//! `_:`-prefixed blank nodes, literals with `\"`-style escapes, `@lang`
//! tags, and `^^<datatype>` annotations. `#` comment lines, blank lines,
//! and CRLF line endings are accepted; `\u` escapes in the surrogate range
//! decode to U+FFFD instead of failing.
//!
//! # Zero-copy line parser
//!
//! [`parse_line_ref`] produces **borrowed** [`TermRef`] slices into the
//! input line — no per-term `String`. Only literals that actually contain
//! escape sequences decode into an owned spill buffer (`Cow::Owned`);
//! everything else, including every IRI, blank-node label, language tag,
//! and datatype, is a plain `&str` slice. The parallel ingestion pipeline
//! ([`crate::ingest`]) feeds these straight into the str-keyed dictionary,
//! so a term occurrence costs one scratch-buffer encode + hash, never an
//! allocation. [`parse_ntriples`] is the convenience wrapper that runs that
//! pipeline over a whole document.

use crate::graph::Graph;
use crate::term::{LiteralRef, Term, TermRef};
use std::borrow::Cow;

/// Error produced while parsing N-Triples input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for NtParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtParseError {}

/// Parses an N-Triples document into a [`Graph`] via the parallel zero-copy
/// ingestion pipeline (`threads = 0`, i.e. all cores; the result is
/// bit-identical for every thread count).
pub fn parse_ntriples(input: &str) -> Result<Graph, NtParseError> {
    crate::ingest::ingest(input, 0)
}

/// Parses one (already trimmed, non-empty, non-comment) N-Triples line into
/// three borrowed terms.
pub fn parse_line_ref(line: &str) -> Result<(TermRef<'_>, TermRef<'_>, TermRef<'_>), String> {
    let mut cursor = Cursor { bytes: line.as_bytes(), line, pos: 0 };
    let s = cursor.parse_term()?;
    cursor.skip_ws();
    let p = cursor.parse_term()?;
    if !matches!(p, TermRef::Iri(_)) {
        return Err("predicate must be an IRI".into());
    }
    cursor.skip_ws();
    let o = cursor.parse_term()?;
    cursor.skip_ws();
    if cursor.peek() != Some(b'.') {
        return Err("missing terminating '.'".into());
    }
    cursor.pos += 1;
    cursor.skip_ws();
    if cursor.pos != cursor.bytes.len() {
        return Err("trailing content after '.'".into());
    }
    Ok((s, p, o))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    line: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Borrows `self.line[start..end]`. Always called with `start`/`end` on
    /// ASCII delimiter positions, hence on char boundaries.
    fn slice(&self, start: usize, end: usize) -> &'a str {
        &self.line[start..end]
    }

    fn parse_term(&mut self) -> Result<TermRef<'a>, String> {
        match self.peek() {
            Some(b'<') => self.parse_iri().map(TermRef::Iri),
            Some(b'_') => self.parse_blank(),
            Some(b'"') => self.parse_literal(),
            other => Err(format!("unexpected term start: {:?}", other.map(char::from))),
        }
    }

    fn parse_iri(&mut self) -> Result<&'a str, String> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let iri = self.slice(start, self.pos);
                self.pos += 1;
                return Ok(iri);
            }
            self.pos += 1;
        }
        Err("unterminated IRI".into())
    }

    fn parse_blank(&mut self) -> Result<TermRef<'a>, String> {
        if self.bytes.get(self.pos + 1) != Some(&b':') {
            return Err("blank node must start with '_:'".into());
        }
        self.pos += 2;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'.' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err("empty blank node label".into());
        }
        Ok(TermRef::Blank(self.slice(start, self.pos)))
    }

    fn parse_literal(&mut self) -> Result<TermRef<'a>, String> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let start = self.pos;
        // Fast path: scan for the closing quote; borrow if escape-free.
        let lexical: Cow<'a, str> = loop {
            match self.peek() {
                None => return Err("unterminated literal".into()),
                Some(b'"') => {
                    let s = self.slice(start, self.pos);
                    self.pos += 1;
                    break Cow::Borrowed(s);
                }
                Some(b'\\') => break Cow::Owned(self.parse_escaped_tail(start)?),
                Some(_) => self.pos += 1,
            }
        };
        // Optional @lang or ^^<datatype>.
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err("empty language tag".into());
                }
                Ok(TermRef::Literal(LiteralRef {
                    lexical,
                    lang: Some(self.slice(start, self.pos)),
                    datatype: None,
                }))
            }
            Some(b'^') => {
                if self.bytes.get(self.pos + 1) != Some(&b'^') {
                    return Err("expected '^^<datatype>'".into());
                }
                self.pos += 2;
                if self.peek() != Some(b'<') {
                    return Err("datatype must be an IRI".into());
                }
                let datatype = self.parse_iri()?;
                Ok(TermRef::Literal(LiteralRef {
                    lexical,
                    lang: None,
                    datatype: Some(datatype),
                }))
            }
            _ => Ok(TermRef::Literal(LiteralRef { lexical, lang: None, datatype: None })),
        }
    }

    /// Slow path, entered at the first backslash: copies the escape-free
    /// prefix `[start..pos]` then decodes escapes until the closing quote.
    fn parse_escaped_tail(&mut self, start: usize) -> Result<String, String> {
        debug_assert_eq!(self.peek(), Some(b'\\'));
        let mut lexical = String::with_capacity(self.pos - start + 16);
        lexical.push_str(self.slice(start, self.pos));
        loop {
            match self.peek() {
                None => return Err("unterminated literal".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(lexical);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or("dangling escape")?;
                    self.pos += 1;
                    match escaped {
                        b'"' => lexical.push('"'),
                        b'\\' => lexical.push('\\'),
                        b'n' => lexical.push('\n'),
                        b'r' => lexical.push('\r'),
                        b't' => lexical.push('\t'),
                        b'u' => lexical.push(self.parse_unicode(4)?),
                        b'U' => lexical.push(self.parse_unicode(8)?),
                        other => return Err(format!("unknown escape \\{}", char::from(other))),
                    }
                }
                Some(b) if b < 0x80 => {
                    lexical.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one multi-byte UTF-8 scalar.
                    let rest = &self.line[self.pos..];
                    let ch = rest.chars().next().expect("non-empty rest");
                    lexical.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_unicode(&mut self, digits: usize) -> Result<char, String> {
        if self.pos + digits > self.bytes.len() {
            return Err("truncated unicode escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + digits])
            .map_err(|_| "invalid unicode escape".to_string())?;
        self.pos += digits;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid hex in unicode escape")?;
        // Surrogate-range escapes appear in real dumps produced by UTF-16
        // systems; decode them to U+FFFD rather than rejecting the file.
        if (0xD800..=0xDFFF).contains(&code) {
            return Ok('\u{FFFD}');
        }
        char::from_u32(code).ok_or_else(|| "invalid code point".into())
    }
}

/// Serializes a [`Graph`] back to N-Triples (one triple per line, insertion
/// order preserved). Appends into one output buffer — no per-term
/// allocation.
pub fn write_ntriples(graph: &Graph) -> String {
    // Pre-size: average real-world triple lines run ~100 bytes.
    let mut out = String::with_capacity(graph.len() * 96);
    for t in graph.triples() {
        write_term(graph.dict.term(t.s), &mut out);
        out.push(' ');
        write_term(graph.dict.term(t.p), &mut out);
        out.push(' ');
        write_term(graph.dict.term(t.o), &mut out);
        out.push_str(" .\n");
    }
    out
}

/// Appends one term in N-Triples syntax.
pub fn write_term(term: &Term, out: &mut String) {
    match term {
        Term::Iri(s) => {
            out.push('<');
            out.push_str(s);
            out.push('>');
        }
        Term::Blank(s) => {
            out.push_str("_:");
            out.push_str(s);
        }
        Term::Literal(l) => {
            out.push('"');
            for ch in l.lexical.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
            match (&l.lang, &l.datatype) {
                (Some(lang), _) => {
                    out.push('@');
                    out.push_str(lang);
                }
                (None, Some(dt)) => {
                    out.push_str("^^<");
                    out.push_str(dt);
                    out.push('>');
                }
                (None, None) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab;

    #[test]
    fn parses_basic_triples() {
        let src = r#"
# a comment
<http://x/n1> <http://x/name> "Isabel dos Santos" .
<http://x/n1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/CEO> .
<http://x/n1> <http://x/age> "47"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://x/label> "blank"@en .
"#;
        let g = parse_ntriples(src).unwrap();
        assert_eq!(g.len(), 4);
        let ceo = g.dict.id_of(&Term::iri("http://x/CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 1);
    }

    #[test]
    fn escapes_roundtrip() {
        let mut g = Graph::new();
        g.insert(
            Term::iri("http://x/a"),
            Term::iri("http://x/desc"),
            Term::lit("line1\nline2 \"quoted\" tab\there \\ backslash"),
        );
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(g2.len(), 1);
        let o = g2.triples()[0].o;
        assert_eq!(
            g2.dict.term(o).as_literal().unwrap().lexical,
            "line1\nline2 \"quoted\" tab\there \\ backslash"
        );
    }

    #[test]
    fn unicode_escapes() {
        let src = "<http://x/a> <http://x/p> \"caf\\u00E9 \\U0001F600\" .\n";
        let g = parse_ntriples(src).unwrap();
        let o = g.triples()[0].o;
        assert_eq!(g.dict.term(o).as_literal().unwrap().lexical, "café 😀");
    }

    #[test]
    fn surrogate_escape_decodes_to_replacement_char() {
        let src = "<http://x/a> <http://x/p> \"bad \\uD83D surrogate\" .\n";
        let g = parse_ntriples(src).unwrap();
        let o = g.triples()[0].o;
        assert_eq!(g.dict.term(o).as_literal().unwrap().lexical, "bad \u{FFFD} surrogate");
    }

    #[test]
    fn crlf_and_comments_accepted() {
        let src = "# header\r\n<http://x/a> <http://x/p> \"v\" .\r\n\r\n<http://x/b> <http://x/p> \"w\" .\r\n";
        let g = parse_ntriples(src).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn datatype_and_lang_roundtrip() {
        let mut g = Graph::new();
        g.insert(Term::iri("http://x/a"), Term::iri("http://x/p"), Term::int(7));
        g.insert(
            Term::iri("http://x/a"),
            Term::iri(vocab::RDFS_LABEL),
            Term::Literal(Literal::lang_tagged("sept", "fr")),
        );
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(write_ntriples(&g2), nt);
    }

    #[test]
    fn reports_error_with_line_number() {
        let src = "<http://x/a> <http://x/p> \"ok\" .\nbroken line\n";
        let err = parse_ntriples(src).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_literal_predicate() {
        let err = parse_ntriples("<http://x/a> \"p\" <http://x/b> .\n").unwrap_err();
        assert!(err.message.contains("IRI"));
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse_ntriples("<http://x/a> <http://x/p> <http://x/b>\n").unwrap_err();
        assert!(err.message.contains('.'));
    }

    #[test]
    fn borrowed_terms_are_zero_copy() {
        let line = "<http://x/a> <http://x/p> \"plain value\" .";
        let (s, _, o) = parse_line_ref(line).unwrap();
        assert!(matches!(s, TermRef::Iri("http://x/a")));
        match o {
            TermRef::Literal(LiteralRef { lexical: Cow::Borrowed(v), .. }) => {
                assert_eq!(v, "plain value");
            }
            other => panic!("expected borrowed literal, got {other:?}"),
        }
    }
}
