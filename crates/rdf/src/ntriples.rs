//! N-Triples parsing and serialization.
//!
//! Supports the line-based N-Triples syntax used by the paper's datasets
//! (all six Table-2 graphs ship as `.nt` dumps): IRIs in angle brackets,
//! `_:`-prefixed blank nodes, literals with `\"`-style escapes, `@lang`
//! tags, and `^^<datatype>` annotations. `#` comment lines and blank lines
//! are skipped.

use crate::graph::Graph;
use crate::term::{Literal, Term};
use std::fmt::Write as _;

/// Error produced while parsing N-Triples input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for NtParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtParseError {}

/// Parses an N-Triples document into a [`Graph`].
pub fn parse_ntriples(input: &str) -> Result<Graph, NtParseError> {
    let mut graph = Graph::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(line).map_err(|message| NtParseError {
            line: lineno + 1,
            message,
        })?;
        graph.insert(s, p, o);
    }
    Ok(graph)
}

fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor { bytes: line.as_bytes(), pos: 0 };
    let s = cursor.parse_term()?;
    cursor.skip_ws();
    let p = cursor.parse_term()?;
    if !matches!(p, Term::Iri(_)) {
        return Err("predicate must be an IRI".into());
    }
    cursor.skip_ws();
    let o = cursor.parse_term()?;
    cursor.skip_ws();
    if cursor.peek() != Some(b'.') {
        return Err("missing terminating '.'".into());
    }
    cursor.pos += 1;
    cursor.skip_ws();
    if cursor.pos != cursor.bytes.len() {
        return Err("trailing content after '.'".into());
    }
    Ok((s, p, o))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_term(&mut self) -> Result<Term, String> {
        match self.peek() {
            Some(b'<') => self.parse_iri().map(Term::Iri),
            Some(b'_') => self.parse_blank(),
            Some(b'"') => self.parse_literal(),
            other => Err(format!("unexpected term start: {:?}", other.map(char::from))),
        }
    }

    fn parse_iri(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let iri = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in IRI".to_string())?
                    .to_owned();
                self.pos += 1;
                return Ok(iri);
            }
            self.pos += 1;
        }
        Err("unterminated IRI".into())
    }

    fn parse_blank(&mut self) -> Result<Term, String> {
        if self.bytes.get(self.pos + 1) != Some(&b':') {
            return Err("blank node must start with '_:'".into());
        }
        self.pos += 2;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'.' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err("empty blank node label".into());
        }
        let label = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in blank node".to_string())?
            .to_owned();
        Ok(Term::Blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term, String> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut lexical = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated literal".into()),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or("dangling escape")?;
                    self.pos += 1;
                    match escaped {
                        b'"' => lexical.push('"'),
                        b'\\' => lexical.push('\\'),
                        b'n' => lexical.push('\n'),
                        b'r' => lexical.push('\r'),
                        b't' => lexical.push('\t'),
                        b'u' => lexical.push(self.parse_unicode(4)?),
                        b'U' => lexical.push(self.parse_unicode(8)?),
                        other => return Err(format!("unknown escape \\{}", char::from(other))),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in literal".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    lexical.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        // Optional @lang or ^^<datatype>.
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err("empty language tag".into());
                }
                let lang = std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap()
                    .to_owned();
                Ok(Term::Literal(Literal::lang_tagged(lexical, lang)))
            }
            Some(b'^') => {
                if self.bytes.get(self.pos + 1) != Some(&b'^') {
                    return Err("expected '^^<datatype>'".into());
                }
                self.pos += 2;
                if self.peek() != Some(b'<') {
                    return Err("datatype must be an IRI".into());
                }
                let datatype = self.parse_iri()?;
                Ok(Term::Literal(Literal::typed(lexical, datatype)))
            }
            _ => Ok(Term::Literal(Literal::plain(lexical))),
        }
    }

    fn parse_unicode(&mut self, digits: usize) -> Result<char, String> {
        if self.pos + digits > self.bytes.len() {
            return Err("truncated unicode escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + digits])
            .map_err(|_| "invalid unicode escape".to_string())?;
        self.pos += digits;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid hex in unicode escape")?;
        char::from_u32(code).ok_or_else(|| "invalid code point".into())
    }
}

/// Serializes a [`Graph`] back to N-Triples (one triple per line, insertion
/// order preserved).
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.triples() {
        let s = graph.dict.term(t.s);
        let p = graph.dict.term(t.p);
        let o = graph.dict.term(t.o);
        let _ = writeln!(out, "{} {} {} .", fmt_term(s), fmt_term(p), fmt_term(o));
    }
    out
}

fn fmt_term(term: &Term) -> String {
    match term {
        Term::Iri(s) => format!("<{s}>"),
        Term::Blank(s) => format!("_:{s}"),
        Term::Literal(l) => {
            let mut escaped = String::with_capacity(l.lexical.len() + 2);
            for ch in l.lexical.chars() {
                match ch {
                    '"' => escaped.push_str("\\\""),
                    '\\' => escaped.push_str("\\\\"),
                    '\n' => escaped.push_str("\\n"),
                    '\r' => escaped.push_str("\\r"),
                    '\t' => escaped.push_str("\\t"),
                    c => escaped.push(c),
                }
            }
            match (&l.lang, &l.datatype) {
                (Some(lang), _) => format!("\"{escaped}\"@{lang}"),
                (None, Some(dt)) => format!("\"{escaped}\"^^<{dt}>"),
                (None, None) => format!("\"{escaped}\""),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn parses_basic_triples() {
        let src = r#"
# a comment
<http://x/n1> <http://x/name> "Isabel dos Santos" .
<http://x/n1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/CEO> .
<http://x/n1> <http://x/age> "47"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://x/label> "blank"@en .
"#;
        let g = parse_ntriples(src).unwrap();
        assert_eq!(g.len(), 4);
        let ceo = g.dict.id_of(&Term::iri("http://x/CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 1);
    }

    #[test]
    fn escapes_roundtrip() {
        let mut g = Graph::new();
        g.insert(
            Term::iri("http://x/a"),
            Term::iri("http://x/desc"),
            Term::lit("line1\nline2 \"quoted\" tab\there \\ backslash"),
        );
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(g2.len(), 1);
        let o = g2.triples()[0].o;
        assert_eq!(
            g2.dict.term(o).as_literal().unwrap().lexical,
            "line1\nline2 \"quoted\" tab\there \\ backslash"
        );
    }

    #[test]
    fn unicode_escapes() {
        let src = "<http://x/a> <http://x/p> \"caf\\u00E9 \\U0001F600\" .\n";
        let g = parse_ntriples(src).unwrap();
        let o = g.triples()[0].o;
        assert_eq!(g.dict.term(o).as_literal().unwrap().lexical, "café 😀");
    }

    #[test]
    fn datatype_and_lang_roundtrip() {
        let mut g = Graph::new();
        g.insert(Term::iri("http://x/a"), Term::iri("http://x/p"), Term::int(7));
        g.insert(
            Term::iri("http://x/a"),
            Term::iri(vocab::RDFS_LABEL),
            Term::Literal(Literal::lang_tagged("sept", "fr")),
        );
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(write_ntriples(&g2), nt);
    }

    #[test]
    fn reports_error_with_line_number() {
        let src = "<http://x/a> <http://x/p> \"ok\" .\nbroken line\n";
        let err = parse_ntriples(src).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_literal_predicate() {
        let err = parse_ntriples("<http://x/a> \"p\" <http://x/b> .\n").unwrap_err();
        assert!(err.message.contains("IRI"));
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse_ntriples("<http://x/a> <http://x/p> <http://x/b>\n").unwrap_err();
        assert!(err.message.contains('.'));
    }
}
