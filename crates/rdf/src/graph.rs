//! In-memory RDF triple store.
//!
//! Storage layout follows the access paths the paper's pipeline needs:
//! per-property `(s, o)` pair lists (the attribute tables of Section 4.3),
//! per-subject outgoing edge lists (for path derivation and summarization),
//! and per-class extents (for type-based CFS selection). Duplicate triples
//! are ignored, matching RDF set semantics.

use crate::dict::{Dictionary, TermId};
use crate::term::Term;
use crate::vocab;
use std::collections::{HashMap, HashSet};

/// A dictionary-encoded RDF triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Property id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

/// An RDF graph: a set of triples plus the dictionary interning its terms.
#[derive(Default, Debug)]
pub struct Graph {
    /// Term dictionary; public so downstream crates can decode ids.
    pub dict: Dictionary,
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    by_property: HashMap<TermId, Vec<(TermId, TermId)>>,
    outgoing: HashMap<TermId, Vec<(TermId, TermId)>>,
    type_extents: HashMap<TermId, Vec<TermId>>,
    rdf_type: Option<TermId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `rdf:type` in this graph's dictionary (interned on demand).
    pub fn rdf_type_id(&mut self) -> TermId {
        match self.rdf_type {
            Some(id) => id,
            None => {
                let id = self.dict.intern_iri(vocab::RDF_TYPE);
                self.rdf_type = Some(id);
                id
            }
        }
    }

    /// Inserts a triple of [`Term`]s; returns `false` if it was a duplicate.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts a triple given pre-interned ids.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let t = Triple { s, p, o };
        if !self.seen.insert(t) {
            return false;
        }
        self.triples.push(t);
        self.by_property.entry(p).or_default().push((s, o));
        self.outgoing.entry(s).or_default().push((p, o));
        if Some(p) == self.rdf_type || self.is_rdf_type(p) {
            self.type_extents.entry(o).or_default().push(s);
        }
        true
    }

    fn is_rdf_type(&mut self, p: TermId) -> bool {
        if self.rdf_type.is_none() {
            if let Term::Iri(iri) = self.dict.term(p) {
                if iri == vocab::RDF_TYPE {
                    self.rdf_type = Some(p);
                    return true;
                }
            }
            false
        } else {
            self.rdf_type == Some(p)
        }
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when the graph holds no triple.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Membership test.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.seen.contains(&Triple { s, p, o })
    }

    /// The distinct properties occurring in the graph.
    pub fn properties(&self) -> impl Iterator<Item = TermId> + '_ {
        self.by_property.keys().copied()
    }

    /// The `(s, o)` pairs of property `p` — the paper's attribute table `t_a`.
    pub fn property_pairs(&self, p: TermId) -> &[(TermId, TermId)] {
        self.by_property.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Outgoing `(p, o)` edges of subject `s`.
    pub fn outgoing(&self, s: TermId) -> &[(TermId, TermId)] {
        self.outgoing.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.outgoing(s).iter().filter(move |(pp, _)| *pp == p).map(|(_, o)| *o)
    }

    /// The distinct classes used as objects of `rdf:type`.
    pub fn classes(&self) -> impl Iterator<Item = TermId> + '_ {
        self.type_extents.keys().copied()
    }

    /// The subjects typed with class `c` (with duplicates removed).
    pub fn nodes_of_type(&self, c: TermId) -> Vec<TermId> {
        let mut nodes = self.type_extents.get(&c).cloned().unwrap_or_default();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The types of node `s`.
    pub fn types_of(&self, s: TermId) -> Vec<TermId> {
        match self.rdf_type {
            Some(t) => self.objects(s, t).collect(),
            None => Vec::new(),
        }
    }

    /// All distinct subjects.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.outgoing.keys().copied()
    }

    /// The distinct subjects having *all* the given outgoing properties —
    /// property-based CFS selection (Section 3, Step 1 (ii)).
    pub fn subjects_with_properties(&self, props: &[TermId]) -> Vec<TermId> {
        let Some((first, rest)) = props.split_first() else {
            return Vec::new();
        };
        let mut nodes: HashSet<TermId> =
            self.property_pairs(*first).iter().map(|(s, _)| *s).collect();
        for p in rest {
            let with_p: HashSet<TermId> =
                self.property_pairs(*p).iter().map(|(s, _)| *s).collect();
            nodes.retain(|s| with_p.contains(s));
        }
        let mut out: Vec<TermId> = nodes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.outgoing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn insert_and_dedup() {
        let mut g = Graph::new();
        assert!(g.insert(t("a"), t("p"), t("b")));
        assert!(!g.insert(t("a"), t("p"), t("b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn property_pairs_and_objects() {
        let mut g = Graph::new();
        g.insert(t("ceo1"), t("nationality"), Term::lit("Angola"));
        g.insert(t("ceo2"), t("nationality"), Term::lit("France"));
        g.insert(t("ceo2"), t("nationality"), Term::lit("Brazil"));
        let p = g.dict.id_of(&t("nationality")).unwrap();
        assert_eq!(g.property_pairs(p).len(), 3);
        let ceo2 = g.dict.id_of(&t("ceo2")).unwrap();
        assert_eq!(g.objects(ceo2, p).count(), 2);
    }

    #[test]
    fn type_extents() {
        let mut g = Graph::new();
        let ty = Term::iri(vocab::RDF_TYPE);
        g.insert(t("n1"), ty.clone(), t("CEO"));
        g.insert(t("n2"), ty.clone(), t("CEO"));
        g.insert(t("n2"), ty.clone(), t("Politician"));
        let ceo = g.dict.id_of(&t("CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 2);
        let n2 = g.dict.id_of(&t("n2")).unwrap();
        assert_eq!(g.types_of(n2).len(), 2);
        assert_eq!(g.classes().count(), 2);
    }

    #[test]
    fn type_index_works_regardless_of_first_use_order() {
        // rdf:type id discovered lazily from inserted data, not pre-interned.
        let mut g = Graph::new();
        g.insert(t("n1"), t("p"), t("v"));
        g.insert(t("n1"), Term::iri(vocab::RDF_TYPE), t("CEO"));
        let ceo = g.dict.id_of(&t("CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo), vec![g.dict.id_of(&t("n1")).unwrap()]);
    }

    #[test]
    fn subjects_with_properties_intersects() {
        let mut g = Graph::new();
        g.insert(t("a"), t("p"), Term::lit("1"));
        g.insert(t("a"), t("q"), Term::lit("2"));
        g.insert(t("b"), t("p"), Term::lit("3"));
        let p = g.dict.id_of(&t("p")).unwrap();
        let q = g.dict.id_of(&t("q")).unwrap();
        let a = g.dict.id_of(&t("a")).unwrap();
        let b = g.dict.id_of(&t("b")).unwrap();
        assert_eq!(g.subjects_with_properties(&[p, q]), vec![a]);
        let mut both = g.subjects_with_properties(&[p]);
        both.sort_unstable();
        assert_eq!(both, {
            let mut v = vec![a, b];
            v.sort_unstable();
            v
        });
        assert!(g.subjects_with_properties(&[]).is_empty());
    }

    #[test]
    fn outgoing_edges() {
        let mut g = Graph::new();
        g.insert(t("ceo"), t("company"), t("sonangol"));
        g.insert(t("sonangol"), t("area"), Term::lit("Natural gas"));
        let ceo = g.dict.id_of(&t("ceo")).unwrap();
        let sonangol = g.dict.id_of(&t("sonangol")).unwrap();
        assert_eq!(g.outgoing(ceo).len(), 1);
        assert_eq!(g.outgoing(sonangol).len(), 1);
        assert_eq!(g.subject_count(), 2);
    }
}
