//! In-memory RDF triple store.
//!
//! Storage layout follows the access paths the paper's pipeline needs:
//! per-property `(s, o)` pair lists (the attribute tables of Section 4.3),
//! per-subject outgoing edge lists (for path derivation and summarization),
//! and per-class extents (for type-based CFS selection). Duplicate triples
//! are ignored, matching RDF set semantics.
//!
//! Graphs are built two ways: incrementally via [`Graph::insert`] (tests,
//! generators, saturation), or in bulk via [`Graph::from_parts`] — the
//! parallel-ingestion path, which replaces per-insert hash probes with one
//! sort + dedup pass and sort-grouped index construction.
//!
//! `rdf:type` is interned once at construction, so every read accessor
//! (including [`Graph::rdf_type_id`]) borrows `&self`.

use crate::dict::{Dictionary, TermId};
use crate::term::Term;
use crate::vocab;
use std::collections::{HashMap, HashSet};

/// A dictionary-encoded RDF triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Property id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

/// An RDF graph: a set of triples plus the dictionary interning its terms.
#[derive(Debug)]
pub struct Graph {
    /// Term dictionary; public so downstream crates can decode ids.
    pub dict: Dictionary,
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    by_property: HashMap<TermId, Vec<(TermId, TermId)>>,
    outgoing: HashMap<TermId, Vec<(TermId, TermId)>>,
    type_extents: HashMap<TermId, Vec<TermId>>,
    rdf_type: TermId,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty graph. `rdf:type` is interned eagerly (always id 0)
    /// so type-index maintenance and the read path need no `&mut` probing.
    pub fn new() -> Self {
        let mut dict = Dictionary::new();
        let rdf_type = dict.intern_iri(vocab::RDF_TYPE);
        Graph {
            dict,
            triples: Vec::new(),
            seen: HashSet::new(),
            by_property: HashMap::new(),
            outgoing: HashMap::new(),
            type_extents: HashMap::new(),
            rdf_type,
        }
    }

    /// The id of `rdf:type` in this graph's dictionary.
    pub fn rdf_type_id(&self) -> TermId {
        self.rdf_type
    }

    /// Builds a graph in bulk from a dictionary and a triple list in input
    /// order (duplicates allowed). Instead of one hash probe per insert,
    /// duplicates are removed with a sort + dedup pass that keeps each
    /// triple's **first** occurrence position, and the per-property /
    /// per-subject / per-class indexes are built by sort-grouped runs — all
    /// sorts fan out over `threads` (`0` = auto) with thread-count-independent
    /// results. The outcome is bit-identical to inserting the same list
    /// through [`Graph::insert_ids`] on a fresh graph sharing `dict`.
    pub fn from_parts(mut dict: Dictionary, triples: Vec<Triple>, threads: usize) -> Graph {
        let rdf_type = dict.intern_iri(vocab::RDF_TYPE);

        // Dedup keeping first occurrences: sort (triple, position), keep the
        // lowest position of each run, then restore input order by position.
        let tagged: Vec<(Triple, u32)> = triples
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, u32::try_from(i).expect("more than 2^32 triples")))
            .collect();
        let tagged = spade_parallel::par_sort(tagged, threads);
        let mut firsts: Vec<(u32, Triple)> = Vec::with_capacity(tagged.len());
        let mut prev: Option<Triple> = None;
        for (t, pos) in tagged {
            if prev != Some(t) {
                firsts.push((pos, t));
                prev = Some(t);
            }
        }
        let firsts = spade_parallel::par_sort(firsts, threads);
        let triples: Vec<Triple> = firsts.into_iter().map(|(_, t)| t).collect();

        let seen: HashSet<Triple> = triples.iter().copied().collect();

        // Index construction by stable counting-sort scatter over the dense
        // TermId key space: one counting pass, one scatter pass in input
        // order (so each group keeps insertion order, matching the
        // incremental push-per-insert layout), and one map insert per
        // *distinct* key instead of per triple.
        let n_terms = dict.len();
        let by_property =
            group_by_key(&triples, n_terms, |t| (t.p, (t.s, t.o)));
        let outgoing = group_by_key(&triples, n_terms, |t| (t.s, (t.p, t.o)));
        let typed: Vec<Triple> = triples.iter().filter(|t| t.p == rdf_type).copied().collect();
        let type_extents = group_by_key(&typed, n_terms, |t| (t.o, t.s));

        Graph { dict, triples, seen, by_property, outgoing, type_extents, rdf_type }
    }

    /// Inserts a triple of [`Term`]s; returns `false` if it was a duplicate.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts a triple given pre-interned ids.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let t = Triple { s, p, o };
        if !self.seen.insert(t) {
            return false;
        }
        self.triples.push(t);
        self.by_property.entry(p).or_default().push((s, o));
        self.outgoing.entry(s).or_default().push((p, o));
        if p == self.rdf_type {
            self.type_extents.entry(o).or_default().push(s);
        }
        true
    }

    /// Bulk-inserts `batch`, skipping duplicates (against the graph and
    /// within the batch), and returns how many triples were new. Equivalent
    /// to [`Graph::insert_ids`] per triple, but index updates are grouped —
    /// one map probe per *distinct* key instead of several per triple —
    /// which is what makes the saturation merge allocation-lean.
    pub fn insert_batch(&mut self, batch: &[Triple]) -> usize {
        self.seen.reserve(batch.len());
        self.triples.reserve(batch.len());
        let mut fresh: Vec<Triple> = Vec::with_capacity(batch.len());
        for &t in batch {
            if self.seen.insert(t) {
                self.triples.push(t);
                fresh.push(t);
            }
        }
        let n_terms = self.dict.len();
        for (k, vals) in group_by_key(&fresh, n_terms, |t| (t.p, (t.s, t.o))) {
            self.by_property.entry(k).or_default().extend(vals);
        }
        for (k, vals) in group_by_key(&fresh, n_terms, |t| (t.s, (t.p, t.o))) {
            self.outgoing.entry(k).or_default().extend(vals);
        }
        let typed: Vec<Triple> =
            fresh.iter().filter(|t| t.p == self.rdf_type).copied().collect();
        for (k, vals) in group_by_key(&typed, n_terms, |t| (t.o, t.s)) {
            self.type_extents.entry(k).or_default().extend(vals);
        }
        fresh.len()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when the graph holds no triple.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Membership test.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.seen.contains(&Triple { s, p, o })
    }

    /// The distinct properties occurring in the graph.
    pub fn properties(&self) -> impl Iterator<Item = TermId> + '_ {
        self.by_property.keys().copied()
    }

    /// The `(s, o)` pairs of property `p` — the paper's attribute table `t_a`.
    pub fn property_pairs(&self, p: TermId) -> &[(TermId, TermId)] {
        self.by_property.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Outgoing `(p, o)` edges of subject `s`.
    pub fn outgoing(&self, s: TermId) -> &[(TermId, TermId)] {
        self.outgoing.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.outgoing(s).iter().filter(move |(pp, _)| *pp == p).map(|(_, o)| *o)
    }

    /// The distinct classes used as objects of `rdf:type`.
    pub fn classes(&self) -> impl Iterator<Item = TermId> + '_ {
        self.type_extents.keys().copied()
    }

    /// The subjects typed with class `c` (with duplicates removed).
    pub fn nodes_of_type(&self, c: TermId) -> Vec<TermId> {
        let mut nodes = self.type_extents.get(&c).cloned().unwrap_or_default();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The types of node `s`.
    pub fn types_of(&self, s: TermId) -> Vec<TermId> {
        self.objects(s, self.rdf_type).collect()
    }

    /// All distinct subjects.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.outgoing.keys().copied()
    }

    /// The distinct subjects having *all* the given outgoing properties —
    /// property-based CFS selection (Section 3, Step 1 (ii)).
    pub fn subjects_with_properties(&self, props: &[TermId]) -> Vec<TermId> {
        let Some((first, rest)) = props.split_first() else {
            return Vec::new();
        };
        let mut nodes: HashSet<TermId> =
            self.property_pairs(*first).iter().map(|(s, _)| *s).collect();
        for p in rest {
            let with_p: HashSet<TermId> =
                self.property_pairs(*p).iter().map(|(s, _)| *s).collect();
            nodes.retain(|s| with_p.contains(s));
        }
        let mut out: Vec<TermId> = nodes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.outgoing.len()
    }
}

/// Groups triples by a dense [`TermId`] key with a stable counting-sort
/// scatter: count per key, prefix-sum into offsets, scatter values in input
/// order, then carve per-key `Vec`s. `O(n + n_terms)`, one hash insert per
/// distinct key, insertion order preserved within each group.
fn group_by_key<V: Copy>(
    triples: &[Triple],
    n_terms: usize,
    key_val: impl Fn(&Triple) -> (TermId, V),
) -> HashMap<TermId, Vec<V>> {
    let Some(first) = triples.first() else {
        return HashMap::new();
    };
    let fill = key_val(first).1;
    let mut counts = vec![0u32; n_terms];
    for t in triples {
        counts[key_val(t).0.index()] += 1;
    }
    let mut offsets = counts;
    let mut running = 0u32;
    for slot in offsets.iter_mut() {
        let c = *slot;
        *slot = running;
        running += c;
    }
    let starts = offsets.clone();
    let mut flat: Vec<V> = vec![fill; triples.len()];
    for t in triples {
        let (k, v) = key_val(t);
        let pos = &mut offsets[k.index()];
        flat[*pos as usize] = v;
        *pos += 1;
    }
    let mut out: HashMap<TermId, Vec<V>> = HashMap::new();
    for (idx, (&start, &end)) in starts.iter().zip(offsets.iter()).enumerate() {
        if end > start {
            out.insert(
                TermId(idx as u32),
                flat[start as usize..end as usize].to_vec(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn insert_and_dedup() {
        let mut g = Graph::new();
        assert!(g.insert(t("a"), t("p"), t("b")));
        assert!(!g.insert(t("a"), t("p"), t("b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn property_pairs_and_objects() {
        let mut g = Graph::new();
        g.insert(t("ceo1"), t("nationality"), Term::lit("Angola"));
        g.insert(t("ceo2"), t("nationality"), Term::lit("France"));
        g.insert(t("ceo2"), t("nationality"), Term::lit("Brazil"));
        let p = g.dict.id_of(&t("nationality")).unwrap();
        assert_eq!(g.property_pairs(p).len(), 3);
        let ceo2 = g.dict.id_of(&t("ceo2")).unwrap();
        assert_eq!(g.objects(ceo2, p).count(), 2);
    }

    #[test]
    fn type_extents() {
        let mut g = Graph::new();
        let ty = Term::iri(vocab::RDF_TYPE);
        g.insert(t("n1"), ty.clone(), t("CEO"));
        g.insert(t("n2"), ty.clone(), t("CEO"));
        g.insert(t("n2"), ty.clone(), t("Politician"));
        let ceo = g.dict.id_of(&t("CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 2);
        let n2 = g.dict.id_of(&t("n2")).unwrap();
        assert_eq!(g.types_of(n2).len(), 2);
        assert_eq!(g.classes().count(), 2);
    }

    #[test]
    fn type_index_works_regardless_of_first_use_order() {
        // rdf:type is pre-interned at construction; the type index catches
        // typed triples whenever they arrive.
        let mut g = Graph::new();
        g.insert(t("n1"), t("p"), t("v"));
        g.insert(t("n1"), Term::iri(vocab::RDF_TYPE), t("CEO"));
        let ceo = g.dict.id_of(&t("CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo), vec![g.dict.id_of(&t("n1")).unwrap()]);
        assert_eq!(g.rdf_type_id(), g.dict.id_of(&Term::iri(vocab::RDF_TYPE)).unwrap());
    }

    #[test]
    fn subjects_with_properties_intersects() {
        let mut g = Graph::new();
        g.insert(t("a"), t("p"), Term::lit("1"));
        g.insert(t("a"), t("q"), Term::lit("2"));
        g.insert(t("b"), t("p"), Term::lit("3"));
        let p = g.dict.id_of(&t("p")).unwrap();
        let q = g.dict.id_of(&t("q")).unwrap();
        let a = g.dict.id_of(&t("a")).unwrap();
        let b = g.dict.id_of(&t("b")).unwrap();
        assert_eq!(g.subjects_with_properties(&[p, q]), vec![a]);
        let mut both = g.subjects_with_properties(&[p]);
        both.sort_unstable();
        assert_eq!(both, {
            let mut v = vec![a, b];
            v.sort_unstable();
            v
        });
        assert!(g.subjects_with_properties(&[]).is_empty());
    }

    #[test]
    fn outgoing_edges() {
        let mut g = Graph::new();
        g.insert(t("ceo"), t("company"), t("sonangol"));
        g.insert(t("sonangol"), t("area"), Term::lit("Natural gas"));
        let ceo = g.dict.id_of(&t("ceo")).unwrap();
        let sonangol = g.dict.id_of(&t("sonangol")).unwrap();
        assert_eq!(g.outgoing(ceo).len(), 1);
        assert_eq!(g.outgoing(sonangol).len(), 1);
        assert_eq!(g.subject_count(), 2);
    }

    #[test]
    fn from_parts_matches_incremental_build() {
        // The same triple list (with duplicates, out-of-order types) through
        // both construction paths yields identical state.
        let mut incremental = Graph::new();
        let ty = Term::iri(vocab::RDF_TYPE);
        let spec: Vec<(Term, Term, Term)> = vec![
            (t("a"), t("p"), Term::lit("1")),
            (t("b"), ty.clone(), t("CEO")),
            (t("a"), t("p"), Term::lit("1")), // duplicate
            (t("a"), t("q"), t("b")),
            (t("b"), t("p"), Term::lit("2")),
            (t("c"), ty.clone(), t("CEO")),
        ];
        let mut dict = Dictionary::new();
        dict.intern_iri(vocab::RDF_TYPE);
        let mut ids = Vec::new();
        for (s, p, o) in &spec {
            let s = dict.intern(s.clone());
            let p = dict.intern(p.clone());
            let o = dict.intern(o.clone());
            ids.push(Triple { s, p, o });
            incremental.insert(
                spec_term(s, &dict),
                spec_term(p, &dict),
                spec_term(o, &dict),
            );
        }
        for threads in [1, 2, 8] {
            let bulk = Graph::from_parts(clone_dict(&dict), ids.clone(), threads);
            assert_eq!(bulk.triples(), incremental.triples());
            assert_eq!(bulk.dict.len(), incremental.dict.len());
            for p in incremental.properties() {
                assert_eq!(bulk.property_pairs(p), incremental.property_pairs(p));
            }
            let mut a: Vec<TermId> = bulk.classes().collect();
            let mut b: Vec<TermId> = incremental.classes().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            for c in b {
                assert_eq!(bulk.nodes_of_type(c), incremental.nodes_of_type(c));
            }
            for s in incremental.subjects() {
                assert_eq!(bulk.outgoing(s), incremental.outgoing(s));
            }
        }
    }

    fn spec_term(id: TermId, dict: &Dictionary) -> Term {
        dict.term(id).clone()
    }

    fn clone_dict(d: &Dictionary) -> Dictionary {
        let mut out = Dictionary::new();
        for (_, term) in d.iter() {
            out.intern(term.clone());
        }
        out
    }
}
