//! In-memory RDF triple store.
//!
//! Storage layout follows the access paths the paper's pipeline needs:
//! per-property `(s, o)` pair lists (the attribute tables of Section 4.3),
//! per-subject outgoing edge lists (for path derivation and summarization),
//! and per-class extents (for type-based CFS selection). Duplicate triples
//! are ignored, matching RDF set semantics.
//!
//! Graphs are built two ways: incrementally via [`Graph::insert`] (tests,
//! generators, saturation), or in bulk via [`Graph::from_parts`] — the
//! parallel-ingestion path, which replaces per-insert hash probes with one
//! sort + dedup pass and sort-grouped index construction.
//!
//! `rdf:type` is interned once at construction, so every read accessor
//! (including [`Graph::rdf_type_id`]) borrows `&self`.

use crate::dict::{Dictionary, FxHashMap, FxHashSet, TermId};
use crate::term::Term;
use crate::vocab;
use std::sync::OnceLock;

/// A dictionary-encoded RDF triple. `repr(C)` so a `[s, p, o]` id column
/// (as the snapshot store lays it out on disk) reinterprets in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Property id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

/// An RDF graph: a set of triples plus the dictionary interning its terms.
#[derive(Debug)]
pub struct Graph {
    /// Term dictionary; public so downstream crates can decode ids.
    pub dict: Dictionary,
    triples: Vec<Triple>,
    /// Triple membership set, built **lazily** from `triples` on first use
    /// (duplicate checks during mutation, [`Graph::contains`]): a graph
    /// that is only *read* — the snapshot serving path — never pays for it.
    seen: OnceLock<FxHashSet<Triple>>,
    by_property: FxHashMap<TermId, Vec<(TermId, TermId)>>,
    outgoing: FxHashMap<TermId, Vec<(TermId, TermId)>>,
    type_extents: FxHashMap<TermId, Vec<TermId>>,
    rdf_type: TermId,
}

/// Externally supplied graph parts were inconsistent (see
/// [`Graph::from_indexed_parts`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphPartsError(pub String);

impl std::fmt::Display for GraphPartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid graph parts: {}", self.0)
    }
}

impl std::error::Error for GraphPartsError {}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty graph. `rdf:type` is interned eagerly (always id 0)
    /// so type-index maintenance and the read path need no `&mut` probing.
    pub fn new() -> Self {
        let mut dict = Dictionary::new();
        let rdf_type = dict.intern_iri(vocab::RDF_TYPE);
        Graph {
            dict,
            triples: Vec::new(),
            seen: OnceLock::new(),
            by_property: FxHashMap::default(),
            outgoing: FxHashMap::default(),
            type_extents: FxHashMap::default(),
            rdf_type,
        }
    }

    /// The membership set, initialized from the triple list on first use.
    fn seen_set(&self) -> &FxHashSet<Triple> {
        self.seen.get_or_init(|| self.triples.iter().copied().collect())
    }

    /// Mutable access to the membership set, initializing it first.
    fn seen_set_mut(&mut self) -> &mut FxHashSet<Triple> {
        if self.seen.get().is_none() {
            let set: FxHashSet<Triple> = self.triples.iter().copied().collect();
            let _ = self.seen.set(set);
        }
        self.seen.get_mut().expect("just initialized")
    }

    /// The id of `rdf:type` in this graph's dictionary.
    pub fn rdf_type_id(&self) -> TermId {
        self.rdf_type
    }

    /// Builds a graph in bulk from a dictionary and a triple list in input
    /// order (duplicates allowed). Instead of one hash probe per insert,
    /// duplicates are removed with a sort + dedup pass that keeps each
    /// triple's **first** occurrence position, and the per-property /
    /// per-subject / per-class indexes are built by sort-grouped runs — all
    /// sorts fan out over `threads` (`0` = auto) with thread-count-independent
    /// results. The outcome is bit-identical to inserting the same list
    /// through [`Graph::insert_ids`] on a fresh graph sharing `dict`.
    pub fn from_parts(mut dict: Dictionary, triples: Vec<Triple>, threads: usize) -> Graph {
        let rdf_type = dict.intern_iri(vocab::RDF_TYPE);

        // Dedup keeping first occurrences: sort (triple, position), keep the
        // lowest position of each run, then restore input order by position.
        let tagged: Vec<(Triple, u32)> = triples
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, u32::try_from(i).expect("more than 2^32 triples")))
            .collect();
        let tagged = spade_parallel::par_sort(tagged, threads);
        let mut firsts: Vec<(u32, Triple)> = Vec::with_capacity(tagged.len());
        let mut prev: Option<Triple> = None;
        for (t, pos) in tagged {
            if prev != Some(t) {
                firsts.push((pos, t));
                prev = Some(t);
            }
        }
        let firsts = spade_parallel::par_sort(firsts, threads);
        let triples: Vec<Triple> = firsts.into_iter().map(|(_, t)| t).collect();

        // Index construction by stable counting-sort scatter over the dense
        // TermId key space: one counting pass, one scatter pass in input
        // order (so each group keeps insertion order, matching the
        // incremental push-per-insert layout), and one map insert per
        // *distinct* key instead of per triple.
        let n_terms = dict.len();
        let by_property = group_by_key(&triples, n_terms, |t| (t.p, (t.s, t.o)));
        let outgoing = group_by_key(&triples, n_terms, |t| (t.s, (t.p, t.o)));
        let typed: Vec<Triple> = triples.iter().filter(|t| t.p == rdf_type).copied().collect();
        let type_extents = group_by_key(&typed, n_terms, |t| (t.o, t.s));

        Graph {
            dict,
            triples,
            seen: OnceLock::new(),
            by_property,
            outgoing,
            type_extents,
            rdf_type,
        }
    }

    /// Inserts a triple of [`Term`]s; returns `false` if it was a duplicate.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts a triple given pre-interned ids.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let t = Triple { s, p, o };
        if !self.seen_set_mut().insert(t) {
            return false;
        }
        self.triples.push(t);
        self.by_property.entry(p).or_default().push((s, o));
        self.outgoing.entry(s).or_default().push((p, o));
        if p == self.rdf_type {
            self.type_extents.entry(o).or_default().push(s);
        }
        true
    }

    /// Bulk-inserts `batch`, skipping duplicates (against the graph and
    /// within the batch), and returns how many triples were new. Equivalent
    /// to [`Graph::insert_ids`] per triple, but index updates are grouped —
    /// one map probe per *distinct* key instead of several per triple —
    /// which is what makes the saturation merge allocation-lean.
    pub fn insert_batch(&mut self, batch: &[Triple]) -> usize {
        self.seen_set_mut();
        // Field-level re-borrow, so `triples` stays pushable in the loop.
        let seen = self.seen.get_mut().expect("initialized above");
        seen.reserve(batch.len());
        self.triples.reserve(batch.len());
        let mut fresh: Vec<Triple> = Vec::with_capacity(batch.len());
        for &t in batch {
            if seen.insert(t) {
                self.triples.push(t);
                fresh.push(t);
            }
        }
        let n_terms = self.dict.len();
        for (k, vals) in group_by_key(&fresh, n_terms, |t| (t.p, (t.s, t.o))) {
            self.by_property.entry(k).or_default().extend(vals);
        }
        for (k, vals) in group_by_key(&fresh, n_terms, |t| (t.s, (t.p, t.o))) {
            self.outgoing.entry(k).or_default().extend(vals);
        }
        let typed: Vec<Triple> =
            fresh.iter().filter(|t| t.p == self.rdf_type).copied().collect();
        for (k, vals) in group_by_key(&typed, n_terms, |t| (t.o, t.s)) {
            self.type_extents.entry(k).or_default().extend(vals);
        }
        fresh.len()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when the graph holds no triple.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Membership test.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.seen_set().contains(&Triple { s, p, o })
    }

    /// The distinct properties occurring in the graph.
    pub fn properties(&self) -> impl Iterator<Item = TermId> + '_ {
        self.by_property.keys().copied()
    }

    /// The `(s, o)` pairs of property `p` — the paper's attribute table `t_a`.
    pub fn property_pairs(&self, p: TermId) -> &[(TermId, TermId)] {
        self.by_property.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Outgoing `(p, o)` edges of subject `s`.
    pub fn outgoing(&self, s: TermId) -> &[(TermId, TermId)] {
        self.outgoing.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.outgoing(s).iter().filter(move |(pp, _)| *pp == p).map(|(_, o)| *o)
    }

    /// The distinct classes used as objects of `rdf:type`.
    pub fn classes(&self) -> impl Iterator<Item = TermId> + '_ {
        self.type_extents.keys().copied()
    }

    /// The raw per-class extent — the subjects of `(?, rdf:type, c)` in
    /// insertion order, duplicates included (a node typed twice appears
    /// twice). This is the exact index column the snapshot store persists;
    /// use [`Graph::nodes_of_type`] for the deduplicated view.
    pub fn type_extent_raw(&self, c: TermId) -> &[TermId] {
        self.type_extents.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The subjects typed with class `c` (with duplicates removed).
    pub fn nodes_of_type(&self, c: TermId) -> Vec<TermId> {
        let mut nodes = self.type_extents.get(&c).cloned().unwrap_or_default();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The types of node `s`.
    pub fn types_of(&self, s: TermId) -> Vec<TermId> {
        self.objects(s, self.rdf_type).collect()
    }

    /// All distinct subjects.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.outgoing.keys().copied()
    }

    /// The distinct subjects having *all* the given outgoing properties —
    /// property-based CFS selection (Section 3, Step 1 (ii)).
    pub fn subjects_with_properties(&self, props: &[TermId]) -> Vec<TermId> {
        let Some((first, rest)) = props.split_first() else {
            return Vec::new();
        };
        let mut nodes: FxHashSet<TermId> =
            self.property_pairs(*first).iter().map(|(s, _)| *s).collect();
        for p in rest {
            let with_p: FxHashSet<TermId> =
                self.property_pairs(*p).iter().map(|(s, _)| *s).collect();
            nodes.retain(|s| with_p.contains(s));
        }
        let mut out: Vec<TermId> = nodes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.outgoing.len()
    }

    /// Reassembles a graph from an already-deduplicated triple list **and**
    /// prebuilt indexes — the snapshot-load path, which replaces the
    /// sort + dedup + counting-sort work of [`Graph::from_parts`] with
    /// cheap linear validation:
    ///
    /// * every triple id must be interned in `dict`;
    /// * `rdf:type` must be interned (graphs always intern it eagerly);
    /// * each index must account for exactly the right number of entries
    ///   (`by_property` and `outgoing` one per triple, `type_extents` one
    ///   per `rdf:type` triple).
    ///
    /// The triple list is trusted to be duplicate-free, and index
    /// *contents* beyond the count checks are trusted too: the snapshot
    /// store guards both with its checksum, and the round-trip property
    /// tests pin writer/loader agreement. The membership set rebuilds
    /// lazily if the graph is ever mutated again.
    ///
    /// `rdf_type` is taken as a parameter (and verified against the
    /// dictionary) instead of looked up, so the dictionary's lazy term → id
    /// map stays unbuilt on the read-only serving path.
    pub fn from_indexed_parts(
        dict: Dictionary,
        rdf_type: TermId,
        triples: Vec<Triple>,
        by_property: FxHashMap<TermId, Vec<(TermId, TermId)>>,
        outgoing: FxHashMap<TermId, Vec<(TermId, TermId)>>,
        type_extents: FxHashMap<TermId, Vec<TermId>>,
    ) -> Result<Graph, GraphPartsError> {
        let err = |m: String| GraphPartsError(m);
        if rdf_type.index() >= dict.len()
            || dict.term(rdf_type).as_iri() != Some(vocab::RDF_TYPE)
        {
            return Err(err(format!("{rdf_type} is not rdf:type")));
        }
        let n_terms =
            u32::try_from(dict.len()).map_err(|_| err("dictionary too large".into()))?;
        let mut max_id = 0u32;
        let mut typed = 0usize;
        for t in &triples {
            max_id = max_id.max(t.s.0).max(t.p.0).max(t.o.0);
            typed += usize::from(t.p == rdf_type);
        }
        if !triples.is_empty() && max_id >= n_terms {
            return Err(err(format!("triples reference unknown term id {max_id}")));
        }
        let check_total = |name: &str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(err(format!("{name} index covers {got} entries, expected {want}")))
            }
        };
        check_total("property", by_property.values().map(Vec::len).sum(), triples.len())?;
        check_total("subject", outgoing.values().map(Vec::len).sum(), triples.len())?;
        check_total("type", type_extents.values().map(Vec::len).sum(), typed)?;
        Ok(Graph {
            dict,
            triples,
            seen: OnceLock::new(),
            by_property,
            outgoing,
            type_extents,
            rdf_type,
        })
    }
}

/// Groups triples by a dense [`TermId`] key with a stable counting-sort
/// scatter: count per key, prefix-sum into offsets, scatter values in input
/// order, then carve per-key `Vec`s. `O(n + n_terms)`, one hash insert per
/// distinct key, insertion order preserved within each group.
fn group_by_key<V: Copy>(
    triples: &[Triple],
    n_terms: usize,
    key_val: impl Fn(&Triple) -> (TermId, V),
) -> FxHashMap<TermId, Vec<V>> {
    let Some(first) = triples.first() else {
        return FxHashMap::default();
    };
    let fill = key_val(first).1;
    let mut counts = vec![0u32; n_terms];
    for t in triples {
        counts[key_val(t).0.index()] += 1;
    }
    let mut offsets = counts;
    let mut running = 0u32;
    for slot in offsets.iter_mut() {
        let c = *slot;
        *slot = running;
        running += c;
    }
    let starts = offsets.clone();
    let mut flat: Vec<V> = vec![fill; triples.len()];
    for t in triples {
        let (k, v) = key_val(t);
        let pos = &mut offsets[k.index()];
        flat[*pos as usize] = v;
        *pos += 1;
    }
    let mut out: FxHashMap<TermId, Vec<V>> = FxHashMap::default();
    for (idx, (&start, &end)) in starts.iter().zip(offsets.iter()).enumerate() {
        if end > start {
            out.insert(TermId(idx as u32), flat[start as usize..end as usize].to_vec());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn insert_and_dedup() {
        let mut g = Graph::new();
        assert!(g.insert(t("a"), t("p"), t("b")));
        assert!(!g.insert(t("a"), t("p"), t("b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn property_pairs_and_objects() {
        let mut g = Graph::new();
        g.insert(t("ceo1"), t("nationality"), Term::lit("Angola"));
        g.insert(t("ceo2"), t("nationality"), Term::lit("France"));
        g.insert(t("ceo2"), t("nationality"), Term::lit("Brazil"));
        let p = g.dict.id_of(&t("nationality")).unwrap();
        assert_eq!(g.property_pairs(p).len(), 3);
        let ceo2 = g.dict.id_of(&t("ceo2")).unwrap();
        assert_eq!(g.objects(ceo2, p).count(), 2);
    }

    #[test]
    fn type_extents() {
        let mut g = Graph::new();
        let ty = Term::iri(vocab::RDF_TYPE);
        g.insert(t("n1"), ty.clone(), t("CEO"));
        g.insert(t("n2"), ty.clone(), t("CEO"));
        g.insert(t("n2"), ty.clone(), t("Politician"));
        let ceo = g.dict.id_of(&t("CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 2);
        let n2 = g.dict.id_of(&t("n2")).unwrap();
        assert_eq!(g.types_of(n2).len(), 2);
        assert_eq!(g.classes().count(), 2);
    }

    #[test]
    fn type_index_works_regardless_of_first_use_order() {
        // rdf:type is pre-interned at construction; the type index catches
        // typed triples whenever they arrive.
        let mut g = Graph::new();
        g.insert(t("n1"), t("p"), t("v"));
        g.insert(t("n1"), Term::iri(vocab::RDF_TYPE), t("CEO"));
        let ceo = g.dict.id_of(&t("CEO")).unwrap();
        assert_eq!(g.nodes_of_type(ceo), vec![g.dict.id_of(&t("n1")).unwrap()]);
        assert_eq!(g.rdf_type_id(), g.dict.id_of(&Term::iri(vocab::RDF_TYPE)).unwrap());
    }

    #[test]
    fn subjects_with_properties_intersects() {
        let mut g = Graph::new();
        g.insert(t("a"), t("p"), Term::lit("1"));
        g.insert(t("a"), t("q"), Term::lit("2"));
        g.insert(t("b"), t("p"), Term::lit("3"));
        let p = g.dict.id_of(&t("p")).unwrap();
        let q = g.dict.id_of(&t("q")).unwrap();
        let a = g.dict.id_of(&t("a")).unwrap();
        let b = g.dict.id_of(&t("b")).unwrap();
        assert_eq!(g.subjects_with_properties(&[p, q]), vec![a]);
        let mut both = g.subjects_with_properties(&[p]);
        both.sort_unstable();
        assert_eq!(both, {
            let mut v = vec![a, b];
            v.sort_unstable();
            v
        });
        assert!(g.subjects_with_properties(&[]).is_empty());
    }

    #[test]
    fn outgoing_edges() {
        let mut g = Graph::new();
        g.insert(t("ceo"), t("company"), t("sonangol"));
        g.insert(t("sonangol"), t("area"), Term::lit("Natural gas"));
        let ceo = g.dict.id_of(&t("ceo")).unwrap();
        let sonangol = g.dict.id_of(&t("sonangol")).unwrap();
        assert_eq!(g.outgoing(ceo).len(), 1);
        assert_eq!(g.outgoing(sonangol).len(), 1);
        assert_eq!(g.subject_count(), 2);
    }

    #[test]
    fn from_parts_matches_incremental_build() {
        // The same triple list (with duplicates, out-of-order types) through
        // both construction paths yields identical state.
        let mut incremental = Graph::new();
        let ty = Term::iri(vocab::RDF_TYPE);
        let spec: Vec<(Term, Term, Term)> = vec![
            (t("a"), t("p"), Term::lit("1")),
            (t("b"), ty.clone(), t("CEO")),
            (t("a"), t("p"), Term::lit("1")), // duplicate
            (t("a"), t("q"), t("b")),
            (t("b"), t("p"), Term::lit("2")),
            (t("c"), ty.clone(), t("CEO")),
        ];
        let mut dict = Dictionary::new();
        dict.intern_iri(vocab::RDF_TYPE);
        let mut ids = Vec::new();
        for (s, p, o) in &spec {
            let s = dict.intern(s.clone());
            let p = dict.intern(p.clone());
            let o = dict.intern(o.clone());
            ids.push(Triple { s, p, o });
            incremental.insert(spec_term(s, &dict), spec_term(p, &dict), spec_term(o, &dict));
        }
        for threads in [1, 2, 8] {
            let bulk = Graph::from_parts(clone_dict(&dict), ids.clone(), threads);
            assert_eq!(bulk.triples(), incremental.triples());
            assert_eq!(bulk.dict.len(), incremental.dict.len());
            for p in incremental.properties() {
                assert_eq!(bulk.property_pairs(p), incremental.property_pairs(p));
            }
            let mut a: Vec<TermId> = bulk.classes().collect();
            let mut b: Vec<TermId> = incremental.classes().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            for c in b {
                assert_eq!(bulk.nodes_of_type(c), incremental.nodes_of_type(c));
            }
            for s in incremental.subjects() {
                assert_eq!(bulk.outgoing(s), incremental.outgoing(s));
            }
        }
    }

    /// Extracts the index columns of `g` the way the snapshot store does.
    #[allow(clippy::type_complexity)]
    fn extract_parts(
        g: &Graph,
    ) -> (
        Dictionary,
        Vec<Triple>,
        FxHashMap<TermId, Vec<(TermId, TermId)>>,
        FxHashMap<TermId, Vec<(TermId, TermId)>>,
        FxHashMap<TermId, Vec<TermId>>,
    ) {
        let parts = g.dict.to_parts();
        let dict = Dictionary::from_parts(&parts.blob, &parts.ends, 1).unwrap();
        let by_property = g.properties().map(|p| (p, g.property_pairs(p).to_vec())).collect();
        let outgoing = g.subjects().map(|s| (s, g.outgoing(s).to_vec())).collect();
        let type_extents = g.classes().map(|c| (c, g.type_extent_raw(c).to_vec())).collect();
        (dict, g.triples().to_vec(), by_property, outgoing, type_extents)
    }

    #[test]
    fn from_indexed_parts_reassembles_identically() {
        let mut g = Graph::new();
        let ty = Term::iri(vocab::RDF_TYPE);
        g.insert(t("a"), t("p"), Term::lit("1"));
        g.insert(t("b"), ty.clone(), t("CEO"));
        g.insert(t("b"), ty.clone(), t("CEO")); // duplicate, dropped
        g.insert(t("a"), t("q"), t("b"));
        let (dict, triples, by_property, outgoing, type_extents) = extract_parts(&g);
        let back = Graph::from_indexed_parts(
            dict,
            g.rdf_type_id(),
            triples,
            by_property,
            outgoing,
            type_extents,
        )
        .unwrap();
        assert_eq!(back.triples(), g.triples());
        assert_eq!(back.rdf_type_id(), g.rdf_type_id());
        for p in g.properties() {
            assert_eq!(back.property_pairs(p), g.property_pairs(p));
        }
        for s in g.subjects() {
            assert_eq!(back.outgoing(s), g.outgoing(s));
        }
        for c in g.classes() {
            assert_eq!(back.type_extent_raw(c), g.type_extent_raw(c));
        }
        let (s, p, o) = (g.triples()[0].s, g.triples()[0].p, g.triples()[0].o);
        assert!(back.contains(s, p, o));
        // The reassembled graph keeps working as a mutable graph.
        let mut back = back;
        assert!(back.insert(t("c"), t("p"), Term::lit("2")));
    }

    #[test]
    fn from_indexed_parts_rejects_inconsistencies() {
        let mut g = Graph::new();
        g.insert(t("a"), t("p"), Term::lit("1"));
        g.insert(t("b"), Term::iri(vocab::RDF_TYPE), t("CEO"));

        let ty = g.rdf_type_id();

        // Out-of-range term id.
        let (dict, mut triples, bp, og, te) = extract_parts(&g);
        triples[0].o = TermId(9999);
        assert!(Graph::from_indexed_parts(dict, ty, triples, bp, og, te).is_err());

        // An extra triple the indexes do not account for.
        let (dict, mut triples, bp, og, te) = extract_parts(&g);
        triples.push(triples[0]);
        assert!(Graph::from_indexed_parts(dict, ty, triples, bp, og, te).is_err());

        // Index entry-count mismatch.
        let (dict, triples, mut bp, og, te) = extract_parts(&g);
        bp.values_mut().next().unwrap().pop();
        assert!(Graph::from_indexed_parts(dict, ty, triples, bp, og, te).is_err());

        // An id that is not rdf:type.
        let (dict, triples, bp, og, te) = extract_parts(&g);
        let not_type = g.triples()[0].p;
        assert!(Graph::from_indexed_parts(dict, not_type, triples, bp, og, te).is_err());

        // rdf:type out of dictionary range.
        assert!(Graph::from_indexed_parts(
            Dictionary::new(),
            TermId(0),
            Vec::new(),
            FxHashMap::default(),
            FxHashMap::default(),
            FxHashMap::default()
        )
        .is_err());
    }

    fn spec_term(id: TermId, dict: &Dictionary) -> Term {
        dict.term(id).clone()
    }

    fn clone_dict(d: &Dictionary) -> Dictionary {
        let mut out = Dictionary::new();
        for (_, term) in d.iter() {
            out.intern(term.clone());
        }
        out
    }
}
