//! RDF substrate for Spade.
//!
//! The paper (Section 2) works over RDF graphs: finite sets of triples
//! `(s, p, o)` with `s ∈ U ∪ B`, `p ∈ U`, `o ∈ U ∪ B ∪ L`, optionally
//! accompanied by an RDFS ontology whose implicit triples are materialized by
//! *saturation* before any analysis. This crate provides exactly that
//! substrate:
//!
//! * [`term`] — the term model (IRIs, blank nodes, plain/lang/typed literals),
//!   borrowed [`TermRef`] views for zero-copy parsing, and literal value
//!   typing (integer/decimal/date/boolean/string);
//! * [`dict`] — str-keyed dictionary encoding of terms into dense `u32`
//!   [`TermId`]s (allocation-free hit path, deterministic chunk merge);
//! * [`graph`] — an in-memory triple store with subject/property/type
//!   indexes, mirroring the access paths Spade needs (per-property `(s,o)`
//!   tables, type extents, outgoing edges), built incrementally or in bulk;
//! * [`ntriples`] — a zero-copy N-Triples line parser and a writer;
//! * [`ingest`] — the parallel two-phase ingestion pipeline (chunked parse +
//!   local intern, deterministic merge), with the serial baseline preserved;
//! * [`ontology`] — RDFS saturation (subClassOf, subPropertyOf, domain,
//!   range): semi-naive parallel evaluation, plus the fixpoint baseline;
//! * [`vocab`] — the handful of RDF/RDFS IRIs used throughout.

pub mod dict;
pub mod graph;
pub mod ingest;
pub mod ntriples;
pub mod ontology;
pub mod term;
pub mod vocab;

pub use dict::{Dictionary, DictionaryParts, TermId};
pub use graph::{Graph, GraphPartsError, Triple};
pub use ingest::{ingest, ingest_baseline, ingest_chunked};
pub use ntriples::{parse_ntriples, write_ntriples, NtParseError};
pub use ontology::{saturate, saturate_baseline, saturate_with_threads};
pub use term::{Literal, LiteralRef, Term, TermRef, ValueKind};
