//! RDF substrate for Spade.
//!
//! The paper (Section 2) works over RDF graphs: finite sets of triples
//! `(s, p, o)` with `s ∈ U ∪ B`, `p ∈ U`, `o ∈ U ∪ B ∪ L`, optionally
//! accompanied by an RDFS ontology whose implicit triples are materialized by
//! *saturation* before any analysis. This crate provides exactly that
//! substrate:
//!
//! * [`term`] — the term model (IRIs, blank nodes, plain/lang/typed literals)
//!   and literal value typing (integer/decimal/date/boolean/string);
//! * [`dict`] — dictionary encoding of terms into dense `u32` [`TermId`]s;
//! * [`graph`] — an in-memory triple store with subject/property/type
//!   indexes, mirroring the access paths Spade needs (per-property `(s,o)`
//!   tables, type extents, outgoing edges);
//! * [`ntriples`] — an N-Triples parser and writer;
//! * [`ontology`] — RDFS saturation (subClassOf, subPropertyOf, domain,
//!   range) run to fixpoint, as in the paper's preprocessing;
//! * [`vocab`] — the handful of RDF/RDFS IRIs used throughout.

pub mod dict;
pub mod graph;
pub mod ntriples;
pub mod ontology;
pub mod term;
pub mod vocab;

pub use dict::{Dictionary, TermId};
pub use graph::{Graph, Triple};
pub use ntriples::{parse_ntriples, write_ntriples, NtParseError};
pub use ontology::saturate;
pub use term::{Literal, Term, ValueKind};
