//! Property tests for the parallel ingestion + saturation subsystem:
//!
//! * parallel ingestion at 1/2/8 threads (and across chunk sizes) is
//!   **bit-identical** to the serial `ingest_baseline` — same `TermId`
//!   assignment, same triple order, same dictionary contents;
//! * semi-naive saturation matches the fixpoint baseline's triple set and
//!   derivation count, at every thread count.

use proptest::prelude::*;
use spade_rdf::{
    ingest_baseline, ingest_chunked, saturate_baseline, saturate_with_threads, write_ntriples,
    Graph, Literal, Term, Triple,
};

fn iri() -> impl Strategy<Value = Term> {
    "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}")))
}

fn literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[ -~äöüé北京\\n\\t]{0,24}".prop_map(Term::lit),
        any::<i64>().prop_map(Term::int),
        (-1e9f64..1e9).prop_map(Term::num),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(s, l)| Term::Literal(Literal::lang_tagged(s, l))),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![iri(), literal(), "[a-z][a-z0-9]{0,6}".prop_map(Term::blank)]
}

fn assert_graphs_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.triples(), b.triples(), "triple order differs");
    assert_eq!(a.dict.len(), b.dict.len(), "dictionary size differs");
    for (id, term) in a.dict.iter() {
        assert_eq!(b.dict.term(id), term, "term at {id} differs");
    }
}

proptest! {
    /// Ingestion at 1/2/8 threads and small/large chunk sizes is bit-identical
    /// to the serial baseline (same ids, same order).
    #[test]
    fn parallel_ingest_bit_identical(
        triples in prop::collection::vec((iri(), iri(), term()), 0..80)
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.insert(s.clone(), p.clone(), o.clone());
        }
        let nt = write_ntriples(&g);
        let baseline = ingest_baseline(&nt).unwrap();
        // The writer emits what the graph holds, so the baseline reparse is
        // the original graph again.
        assert_graphs_identical(&baseline, &g);
        for threads in [1usize, 2, 8] {
            for chunk_bytes in [32usize, 256, 1 << 20] {
                let parallel = ingest_chunked(&nt, threads, chunk_bytes).unwrap();
                assert_graphs_identical(&parallel, &baseline);
            }
        }
    }

    /// Semi-naive saturation reaches the same fixpoint as the baseline —
    /// same triple set, same derivation count — for any thread count.
    #[test]
    fn saturation_equivalent_to_fixpoint(
        schema in prop::collection::vec((0u8..6, 0u8..4, 0u8..6), 0..12),
        data in prop::collection::vec((0u8..20, 0u8..4, 0u8..20), 0..30),
        typed in prop::collection::vec((0u8..20, 0u8..6), 0..20),
    ) {
        let build = || {
            let mut g = Graph::new();
            for &(a, rel, b) in &schema {
                let rel = match rel {
                    0 => spade_rdf::vocab::RDFS_SUBCLASSOF,
                    1 => spade_rdf::vocab::RDFS_SUBPROPERTYOF,
                    2 => spade_rdf::vocab::RDFS_DOMAIN,
                    _ => spade_rdf::vocab::RDFS_RANGE,
                };
                // Class ids double as property ids so subPropertyOf edges
                // sometimes hit properties the data actually uses.
                g.insert(
                    Term::iri(format!("http://x/e{a}")),
                    Term::iri(rel),
                    Term::iri(format!("http://x/e{b}")),
                );
            }
            for &(s, p, o) in &data {
                g.insert(
                    Term::iri(format!("http://x/n{s}")),
                    Term::iri(format!("http://x/e{p}")),
                    Term::iri(format!("http://x/n{o}")),
                );
            }
            for &(node, class) in &typed {
                g.insert(
                    Term::iri(format!("http://x/n{node}")),
                    Term::iri(spade_rdf::vocab::RDF_TYPE),
                    Term::iri(format!("http://x/e{class}")),
                );
            }
            g
        };
        let mut base = build();
        let n_base = saturate_baseline(&mut base);
        let mut expect: Vec<Triple> = base.triples().to_vec();
        expect.sort_unstable();
        for threads in [1usize, 2, 8] {
            let mut semi = build();
            let n = saturate_with_threads(&mut semi, threads);
            prop_assert_eq!(n, n_base, "derivation count at {} threads", threads);
            let mut got: Vec<Triple> = semi.triples().to_vec();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "triple set at {} threads", threads);
        }
    }
}
