//! Property tests: N-Triples writing and parsing are mutually inverse for
//! arbitrary graphs over printable terms.

use proptest::prelude::*;
use spade_rdf::{parse_ntriples, write_ntriples, Graph, Literal, Term};

fn iri() -> impl Strategy<Value = Term> {
    "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}")))
}

fn literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Plain literals with whitespace, quotes, escapes, unicode.
        "[ -~äöüé北京\\n\\t]{0,24}".prop_map(Term::lit),
        any::<i64>().prop_map(Term::int),
        (-1e9f64..1e9).prop_map(Term::num),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(s, l)| Term::Literal(Literal::lang_tagged(s, l))),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![iri(), literal(), "[a-z][a-z0-9]{0,6}".prop_map(Term::blank)]
}

proptest! {
    #[test]
    fn roundtrip_preserves_graphs(
        triples in prop::collection::vec((iri(), iri(), term()), 0..60)
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.insert(s.clone(), p.clone(), o.clone());
        }
        let nt = write_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        // Same triple *set* (term-level equality via re-serialization).
        let mut a: Vec<String> = nt.lines().map(str::to_owned).collect();
        let mut b: Vec<String> = write_ntriples(&g2).lines().map(str::to_owned).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Dictionary ids are stable and bijective per graph.
    #[test]
    fn dictionary_bijective(terms in prop::collection::vec(term(), 1..100)) {
        let mut g = Graph::new();
        let p = Term::iri("http://example.org/p");
        let s = Term::iri("http://example.org/s");
        for t in &terms {
            g.insert(s.clone(), p.clone(), t.clone());
        }
        for t in &terms {
            let id = g.dict.id_of(t).expect("interned");
            prop_assert_eq!(g.dict.term(id), t);
        }
    }

    /// Saturation is monotone (only adds triples) and idempotent.
    #[test]
    fn saturation_monotone_idempotent(
        schema in prop::collection::vec((0u8..6, 0u8..6), 0..10),
        typed in prop::collection::vec((0u8..20, 0u8..6), 0..20),
    ) {
        let mut g = Graph::new();
        for (sub, sup) in &schema {
            g.insert(
                Term::iri(format!("http://x/C{sub}")),
                Term::iri(spade_rdf::vocab::RDFS_SUBCLASSOF),
                Term::iri(format!("http://x/C{sup}")),
            );
        }
        for (node, class) in &typed {
            g.insert(
                Term::iri(format!("http://x/n{node}")),
                Term::iri(spade_rdf::vocab::RDF_TYPE),
                Term::iri(format!("http://x/C{class}")),
            );
        }
        let before = g.len();
        spade_rdf::saturate(&mut g);
        prop_assert!(g.len() >= before);
        let after = g.len();
        prop_assert_eq!(spade_rdf::saturate(&mut g), 0);
        prop_assert_eq!(g.len(), after);
    }
}
