//! Lattice machinery: MMST construction and maximal-frequent-set mining.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_bitmap::Bitmap;
use spade_core::mfs::{maximal_frequent_sets, Item};
use spade_cube::Lattice;

fn bench_mmst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmst");
    for &n in &[4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let l = Lattice::new(vec![100; n], vec![25; n]);
            b.iter(|| l.mmst().total_memory())
        });
    }
    group.finish();
}

fn bench_mfs(c: &mut Criterion) {
    let n_facts = 20_000u32;
    let items: Vec<Item> = (0..12usize)
        .map(|a| Item {
            attr: a,
            tidset: Bitmap::from_iter(
                (0..n_facts).filter(move |f| !(*f as usize + a).is_multiple_of(a + 2)),
            ),
        })
        .collect();
    c.bench_function("mfs_12_items_20k_facts", |b| {
        b.iter(|| maximal_frequent_sets(&items, n_facts as u64 / 3, 4, |_, _| true).len())
    });
}

criterion_group!(benches, bench_mmst, bench_mfs);
criterion_main!(benches);
