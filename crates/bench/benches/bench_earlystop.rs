//! Early-stop pruning: MVDCube with vs without ES (Table 4's comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use spade_cube::{mvd_cube, mvd_cube_with_earlystop, CubeSpec, EarlyStopConfig, MeasureSpec,
    MvdCubeOptions};
use spade_datagen::{synthetic, SyntheticConfig};
use spade_storage::AggFn;

fn bench_es(c: &mut Criterion) {
    let cols = synthetic::generate_columns(&SyntheticConfig {
        n_facts: 50_000,
        dim_values: vec![100, 50, 20],
        n_measures: 10,
        sparsity: 0.1,
        ..Default::default()
    });
    let dims: Vec<_> = cols.dims.iter().collect();
    let measures: Vec<_> = cols
        .measures
        .iter()
        .map(|m| MeasureSpec { preagg: m, fns: vec![AggFn::Sum, AggFn::Avg] })
        .collect();
    let spec = CubeSpec::new(dims, measures, cols.n_facts);
    let opts = MvdCubeOptions::default();

    let mut group = c.benchmark_group("earlystop");
    group.sample_size(10);
    group.bench_function("mvd_plain", |b| {
        b.iter(|| mvd_cube(&spec, &opts).total_groups())
    });
    group.bench_function("mvd_es_k10", |b| {
        let es = EarlyStopConfig { k: 10, ..Default::default() };
        b.iter(|| mvd_cube_with_earlystop(&spec, &opts, &es).0.total_groups())
    });
    group.bench_function("mvd_es_k3", |b| {
        let es = EarlyStopConfig { k: 3, ..Default::default() };
        b.iter(|| mvd_cube_with_earlystop(&spec, &opts, &es).0.total_groups())
    });
    group.finish();
}

criterion_group!(benches, bench_es);
criterion_main!(benches);
