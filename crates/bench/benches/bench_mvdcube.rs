//! MVDCube evaluation cost on the synthetic benchmark (Figure 12's
//! workload): scaling in facts and dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_cube::{mvd_cube, CubeSpec, MeasureSpec, MvdCubeOptions};
use spade_datagen::{synthetic, SyntheticConfig};
use spade_storage::AggFn;

fn bench_facts(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvdcube_facts");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000, 100_000] {
        let cols = synthetic::generate_columns(&SyntheticConfig {
            n_facts: n,
            dim_values: vec![100, 100, 100],
            n_measures: 5,
            sparsity: 0.1,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &cols, |b, cols| {
            let dims: Vec<_> = cols.dims.iter().collect();
            let measures: Vec<_> = cols
                .measures
                .iter()
                .map(|m| MeasureSpec { preagg: m, fns: vec![AggFn::Sum, AggFn::Avg] })
                .collect();
            let spec = CubeSpec::new(dims, measures, cols.n_facts);
            b.iter(|| mvd_cube(&spec, &MvdCubeOptions::default()).total_groups())
        });
    }
    group.finish();
}

fn bench_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvdcube_dims");
    group.sample_size(10);
    for &n_dims in &[1usize, 2, 3, 4] {
        let cols = synthetic::generate_columns(&SyntheticConfig {
            n_facts: 20_000,
            dim_values: vec![50; n_dims],
            n_measures: 5,
            sparsity: 0.2,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(n_dims), &cols, |b, cols| {
            let dims: Vec<_> = cols.dims.iter().collect();
            let measures: Vec<_> = cols
                .measures
                .iter()
                .map(|m| MeasureSpec { preagg: m, fns: vec![AggFn::Sum] })
                .collect();
            let spec = CubeSpec::new(dims, measures, cols.n_facts);
            b.iter(|| mvd_cube(&spec, &MvdCubeOptions::default()).total_groups())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_facts, bench_dims);
criterion_main!(benches);
