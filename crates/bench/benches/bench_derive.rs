//! Offline phase: property statistics and derived-property enumeration
//! (the Experiment 1 / Table 2 workload at micro-benchmark granularity).

use criterion::{criterion_group, criterion_main, Criterion};
use spade_core::{offline, SpadeConfig};
use spade_datagen::{realistic, RealisticConfig};

fn bench_offline(c: &mut Criterion) {
    let g = realistic::ceos(&RealisticConfig { scale: 2_000, seed: 1 });
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    group.bench_function("analyze_ceos_2k", |b| {
        b.iter(|| offline::analyze(&g).property_count())
    });
    let stats = offline::analyze(&g);
    let config = SpadeConfig::default();
    group.bench_function("derive_ceos_2k", |b| {
        b.iter(|| offline::enumerate_derivations(&g, &stats, &config).1.total())
    });
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
