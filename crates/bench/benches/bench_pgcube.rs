//! PGCube baseline cost on the same workload as `bench_mvdcube` — the
//! Figure 9 / Figure 12 comparison at micro-benchmark granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_cube::{pg_cube, CubeSpec, MeasureSpec, MvdCubeOptions, PgCubeVariant};
use spade_datagen::{synthetic, SyntheticConfig};
use spade_storage::AggFn;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("pgcube_facts");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000, 100_000] {
        let cols = synthetic::generate_columns(&SyntheticConfig {
            n_facts: n,
            dim_values: vec![100, 100, 100],
            n_measures: 5,
            sparsity: 0.1,
            ..Default::default()
        });
        for (name, variant) in
            [("star", PgCubeVariant::Star), ("distinct", PgCubeVariant::Distinct)]
        {
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &cols,
                |b, cols| {
                    let dims: Vec<_> = cols.dims.iter().collect();
                    let measures: Vec<_> = cols
                        .measures
                        .iter()
                        .map(|m| MeasureSpec { preagg: m, fns: vec![AggFn::Sum, AggFn::Avg] })
                        .collect();
                    let spec = CubeSpec::new(dims, measures, cols.n_facts);
                    b.iter(|| {
                        pg_cube(&spec, variant, &MvdCubeOptions::default()).total_groups()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
