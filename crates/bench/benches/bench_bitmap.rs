//! Substrate micro-benchmarks: the Roaring bitmap operations MVDCube leans
//! on (union during propagation, iteration during measure computation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_bitmap::Bitmap;

fn sparse(n: u32, stride: u32) -> Bitmap {
    Bitmap::from_iter((0..n).map(|i| i * stride))
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_union");
    for &(n, stride) in &[(10_000u32, 1u32), (10_000, 64), (100_000, 7)] {
        let a = sparse(n, stride);
        let b = Bitmap::from_iter((0..n).map(|i| i * stride + stride / 2 + 1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{stride}")),
            &(a, b),
            |bencher, (a, b)| {
                bencher.iter(|| {
                    let mut x = a.clone();
                    x.union_with(black_box(b));
                    x.cardinality()
                })
            },
        );
    }
    group.finish();
}

fn bench_iterate(c: &mut Criterion) {
    let bm = sparse(100_000, 3);
    c.bench_function("bitmap_iterate_100k", |b| {
        b.iter(|| black_box(&bm).iter().map(|v| v as u64).sum::<u64>())
    });
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("bitmap_insert_50k_random", |b| {
        b.iter(|| {
            let mut bm = Bitmap::new();
            let mut x = 12345u32;
            for _ in 0..50_000 {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                bm.insert(x % 1_000_000);
            }
            bm.cardinality()
        })
    });
}

criterion_group!(benches, bench_union, bench_iterate, bench_insert);
criterion_main!(benches);
