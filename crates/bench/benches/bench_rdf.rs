//! RDF substrate: N-Triples parsing and triple-store ingestion.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spade_datagen::{realistic, RealisticConfig};
use spade_rdf::{parse_ntriples, write_ntriples};

fn bench_parse(c: &mut Criterion) {
    let g = realistic::ceos(&RealisticConfig { scale: 2_000, seed: 1 });
    let nt = write_ntriples(&g);
    let mut group = c.benchmark_group("ntriples");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(nt.len() as u64));
    group.bench_function("parse_ceos_2k", |b| {
        b.iter(|| parse_ntriples(&nt).unwrap().len())
    });
    group.bench_function("write_ceos_2k", |b| b.iter(|| write_ntriples(&g).len()));
    group.finish();
}

fn bench_saturate(c: &mut Criterion) {
    use spade_rdf::{vocab, Graph, Term};
    c.bench_function("saturate_class_chain", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            for i in 0..20 {
                g.insert(
                    Term::iri(format!("http://x/C{i}")),
                    Term::iri(vocab::RDFS_SUBCLASSOF),
                    Term::iri(format!("http://x/C{}", i + 1)),
                );
            }
            for n in 0..500 {
                g.insert(
                    Term::iri(format!("http://x/n{n}")),
                    Term::iri(vocab::RDF_TYPE),
                    Term::iri(format!("http://x/C{}", n % 5)),
                );
            }
            spade_rdf::saturate(&mut g)
        })
    });
}

criterion_group!(benches, bench_parse, bench_saturate);
criterion_main!(benches);
