//! `bench_store` — the snapshot-store trajectory: offline phase vs. load.
//!
//! For each Table-2-like corpus of the shared catalog
//! (`spade_datagen::corpus::NT_CASES`) this bench measures how long it takes
//! to make the offline state servable two ways:
//!
//! * **offline** — what `Spade::run_ntriples` does before the online steps:
//!   parallel zero-copy parse + dictionary intern + index build, RDFS
//!   saturation, and offline attribute analysis;
//! * **snapshot** — `Snapshot::open(..).load(..)` on the file written once
//!   by the snapshot store, plus rebuilding `OfflineStats` from its records.
//!
//! The loaded state is cross-checked against the freshly computed one for
//! exact agreement (ids, triple order, indexes, statistics) and saturation
//! idempotence, so the bench doubles as a correctness smoke test. Results
//! land in `BENCH_store.json` (triples/sec both ways and the speedup).
//!
//! A second section, **open_mode**, compares the two [`OpenMode`]s of
//! `Snapshot::open_with` per case — `Mmap` (map the file, validate, no
//! copy) against `Read` (allocate + read the whole image) — and probes the
//! resident-memory story behind the multi-graph catalog: VmRSS deltas
//! while holding 1 and 4 materialized [`OfflineState`]s per mode (mapped
//! images are released with `MADV_DONTNEED` after materialization, so the
//! mapped states should cost roughly the heap graph alone).
//!
//! Usage: `cargo run --release -p spade-bench --bin bench_store
//! [--scale <facts>] [--seed <n>] [--threads <n>] [--out <path>]`

use spade_bench::{geo_mean, HarnessArgs};
use spade_core::json::JsonWriter;
use spade_core::{offline, OfflineState};
use spade_datagen::corpus::{NtCase, NT_CASES};
use spade_rdf::{ingest, saturate_with_threads, Graph};
use spade_store::{write_snapshot, OpenMode, Snapshot};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Outcome {
    name: String,
    n_input_lines: usize,
    n_triples: usize,
    file_bytes: usize,
    offline_secs: f64,
    load_secs: f64,
    offline_triples_per_sec: f64,
    load_triples_per_sec: f64,
    speedup: f64,
    /// `Snapshot::open_with` latency (validate + checksum, no `load`).
    mmap_open_secs: f64,
    read_open_secs: f64,
    open_speedup: f64,
}

fn check_agreement(loaded: &Graph, fresh: &Graph, case: &str) {
    assert_eq!(loaded.triples(), fresh.triples(), "{case}: triple order");
    assert_eq!(loaded.dict.len(), fresh.dict.len(), "{case}: dictionary size");
    for (id, term) in fresh.dict.iter() {
        assert_eq!(loaded.dict.term(id), term, "{case}: term {id}");
    }
    assert_eq!(loaded.rdf_type_id(), fresh.rdf_type_id(), "{case}: rdf:type id");
    for p in fresh.properties() {
        assert_eq!(loaded.property_pairs(p), fresh.property_pairs(p), "{case}: property {p}");
    }
    for s in fresh.subjects() {
        assert_eq!(loaded.outgoing(s), fresh.outgoing(s), "{case}: subject {s}");
    }
    for c in fresh.classes() {
        assert_eq!(loaded.type_extent_raw(c), fresh.type_extent_raw(c), "{case}: class {c}");
    }
}

fn run_case(
    case: &NtCase,
    scale: usize,
    seed: u64,
    threads: usize,
    repeats: usize,
    dir: &Path,
) -> Outcome {
    let nt = case.generate(scale, seed);
    let n_input_lines = nt.lines().count();

    // The offline phase runs once (untimed here) to produce the state the
    // snapshot captures.
    let mut graph = ingest(&nt, threads).expect("corpus parses");
    saturate_with_threads(&mut graph, threads);
    let stats = offline::analyze(&graph);
    let records = offline::to_records(&stats);
    let path = dir.join(format!("{}.spade", case.name));
    write_snapshot(&path, &graph, &records).expect("snapshot writes");
    let file_bytes = std::fs::metadata(&path).expect("snapshot file").len() as usize;

    // Round-trip identity: the loaded state is the computed state, bit for
    // bit, and saturating it again derives nothing.
    let loaded =
        Snapshot::open(&path, threads).expect("snapshot opens").load(threads).expect("loads");
    check_agreement(&loaded.graph, &graph, case.name);
    assert_eq!(loaded.stats, records, "{}: statistics records", case.name);
    let mut resaturate = Snapshot::open(&path, threads).unwrap().load(threads).unwrap().graph;
    assert_eq!(
        saturate_with_threads(&mut resaturate, threads),
        0,
        "{}: loaded graph is already saturated",
        case.name
    );

    let mut offline_secs = f64::INFINITY;
    let mut load_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let mut g = ingest(&nt, threads).unwrap();
        saturate_with_threads(&mut g, threads);
        let s = offline::analyze(&g);
        offline_secs = offline_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box((&g, &s));

        let t = Instant::now();
        let loaded = Snapshot::open(&path, threads).unwrap().load(threads).unwrap();
        let s = offline::from_records(&loaded.graph, &loaded.stats);
        load_secs = load_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box((&loaded.graph, &s));
    }

    // Open-mode comparison: the same validated open (header, sections,
    // checksum) without materialization. Mmap skips the image allocation
    // and copy; both still stream every byte once for the checksum. More
    // repeats than the load loop — opens are cheap and the page cache is
    // warm either way after the loops above.
    let mut mmap_open_secs = f64::INFINITY;
    let mut read_open_secs = f64::INFINITY;
    for _ in 0..repeats.max(5) {
        let t = Instant::now();
        let snap = Snapshot::open_with(&path, threads, OpenMode::Mmap).unwrap();
        mmap_open_secs = mmap_open_secs.min(t.elapsed().as_secs_f64());
        assert!(snap.is_mapped(), "{}: mmap open must actually map", case.name);
        std::hint::black_box(&snap);

        let t = Instant::now();
        let snap = Snapshot::open_with(&path, threads, OpenMode::Read).unwrap();
        read_open_secs = read_open_secs.min(t.elapsed().as_secs_f64());
        assert!(!snap.is_mapped(), "{}: read open must copy", case.name);
        std::hint::black_box(&snap);
    }
    // The snapshot file is left in place: main's RSS probe reuses it, then
    // removes the whole directory.

    let n_triples = graph.len();
    Outcome {
        name: case.name.to_owned(),
        n_input_lines,
        n_triples,
        file_bytes,
        offline_secs,
        load_secs,
        offline_triples_per_sec: n_triples as f64 / offline_secs,
        load_triples_per_sec: n_triples as f64 / load_secs,
        speedup: offline_secs / load_secs,
        mmap_open_secs,
        read_open_secs,
        open_speedup: read_open_secs / mmap_open_secs,
    }
}

/// Current VmRSS in bytes from `/proc/self/status` (0 when unavailable —
/// the probe then reports zeros instead of failing the bench).
fn vm_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

struct RssProbe {
    mode: &'static str,
    file_bytes: u64,
    /// VmRSS delta over the pre-open baseline while holding 1 state.
    held_1_bytes: u64,
    /// … and while holding 4 states of the same snapshot.
    held_4_bytes: u64,
}

/// Opens 1 then 4 [`OfflineState`]s of `path` under `mode` and records the
/// VmRSS growth over a fresh baseline — the catalog's "what does one more
/// resident graph cost" number. Mapped images are `MADV_DONTNEED`-released
/// after materialization, so `Mmap` should grow by roughly the heap graph
/// alone while `Read` also pays the full image per state.
fn rss_probe(path: &Path, threads: usize, mode: OpenMode, label: &'static str) -> RssProbe {
    let file_bytes = std::fs::metadata(path).expect("snapshot file").len();
    let baseline = vm_rss_bytes();
    let mut states = Vec::new();
    states.push(OfflineState::open_with(path, threads, mode).expect("state opens"));
    let held_1 = vm_rss_bytes().saturating_sub(baseline);
    for _ in 0..3 {
        states.push(OfflineState::open_with(path, threads, mode).expect("state opens"));
    }
    let held_4 = vm_rss_bytes().saturating_sub(baseline);
    std::hint::black_box(&states);
    drop(states);
    RssProbe { mode: label, file_bytes, held_1_bytes: held_1, held_4_bytes: held_4 }
}

fn main() {
    let args = HarnessArgs::parse();
    // Same default corpus size as bench_ingest, so the two artifacts
    // describe the same offline workload.
    let scale = args.scale_or(2_000);
    let out_path = args.out_path("BENCH_store.json");

    let dir: PathBuf =
        std::env::temp_dir().join(format!("spade_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");

    let mut outcomes = Vec::new();
    for case in &NT_CASES {
        let o = run_case(case, scale, args.seed, args.threads, 3, &dir);
        eprintln!(
            "{:14} {:7} triples ({:8} B file) | offline {:8.1} ms ({:9.0} t/s) | load {:8.2} ms ({:9.0} t/s) | speedup {:.1}x | open mmap {:7.3} ms vs read {:7.3} ms ({:.1}x)",
            o.name,
            o.n_triples,
            o.file_bytes,
            o.offline_secs * 1e3,
            o.offline_triples_per_sec,
            o.load_secs * 1e3,
            o.load_triples_per_sec,
            o.speedup,
            o.mmap_open_secs * 1e3,
            o.read_open_secs * 1e3,
            o.open_speedup,
        );
        outcomes.push(o);
    }

    // RSS probe on the largest snapshot left behind by the case loop —
    // Mmap first so the Read probe's heap churn cannot inflate it.
    let largest = outcomes
        .iter()
        .max_by_key(|o| o.file_bytes)
        .map(|o| dir.join(format!("{}.spade", o.name)))
        .expect("at least one case");
    let probes = [
        rss_probe(&largest, args.threads, OpenMode::Mmap, "mmap"),
        rss_probe(&largest, args.threads, OpenMode::Read, "read"),
    ];
    for p in &probes {
        eprintln!(
            "rss[{:4}] {:9} B file | held 1 state: +{:9} B | held 4 states: +{:9} B",
            p.mode, p.file_bytes, p.held_1_bytes, p.held_4_bytes,
        );
    }

    std::fs::remove_dir_all(&dir).ok();

    let speedups: Vec<f64> = outcomes.iter().map(|o| o.speedup).collect();
    let geo_mean_speedup = geo_mean(&speedups);
    let open_speedups: Vec<f64> = outcomes.iter().map(|o| o.open_speedup).collect();
    let geo_mean_open_speedup = geo_mean(&open_speedups);

    // Shared deterministic writer (spade_core::json) — no serde offline.
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("bench").string("snapshot_store");
    w.key("offline").string(
        "parallel ingest + semi-naive saturation + offline analysis (run_ntriples offline phase)",
    );
    w.key("snapshot").string("Snapshot::open + zero-copy load + stats reconstitution");
    w.key("geo_mean_speedup").f64_fixed(geo_mean_speedup, 4);
    w.key("cases").begin_array();
    for o in &outcomes {
        w.begin_object();
        w.key("name").string(&o.name);
        w.key("n_input_lines").usize(o.n_input_lines);
        w.key("n_triples").usize(o.n_triples);
        w.key("file_bytes").usize(o.file_bytes);
        w.key("offline_secs").f64_fixed(o.offline_secs, 6);
        w.key("load_secs").f64_fixed(o.load_secs, 6);
        w.key("offline_triples_per_sec").f64_fixed(o.offline_triples_per_sec, 1);
        w.key("load_triples_per_sec").f64_fixed(o.load_triples_per_sec, 1);
        w.key("speedup").f64_fixed(o.speedup, 4);
        w.key("mmap_open_secs").f64_fixed(o.mmap_open_secs, 6);
        w.key("read_open_secs").f64_fixed(o.read_open_secs, 6);
        w.key("open_speedup").f64_fixed(o.open_speedup, 4);
        w.end_object();
    }
    w.end_array();
    w.key("open_mode").begin_object();
    w.key("mmap").string("Snapshot::open_with(OpenMode::Mmap): map + validate, no copy");
    w.key("read").string("Snapshot::open_with(OpenMode::Read): allocate + read whole image");
    w.key("geo_mean_open_speedup").f64_fixed(geo_mean_open_speedup, 4);
    w.key("rss_probes").begin_array();
    for p in &probes {
        w.begin_object();
        w.key("mode").string(p.mode);
        w.key("file_bytes").uint(p.file_bytes);
        w.key("held_1_rss_bytes").uint(p.held_1_bytes);
        w.key("held_4_rss_bytes").uint(p.held_4_bytes);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write BENCH_store.json");
    println!("{json}");
    eprintln!(
        "geo-mean snapshot-load speedup {geo_mean_speedup:.1}x, \
         mmap-vs-read open speedup {geo_mean_open_speedup:.1}x → {out_path}"
    );
}
