//! `bench_serve` — the serving trajectory: throughput and tail latency of
//! the `spade-serve` daemon over loopback.
//!
//! One snapshot of the CEOs corpus is served by two in-process servers —
//! **cold** (result cache disabled: every request runs the five online
//! steps) and **warm** (cache enabled and primed: every request is an
//! exact byte hit) — and each is driven at 1, 4, and 16 concurrent
//! keep-alive connections. Per-request wall times aggregate into req/sec
//! and p50/p99 latency per `(cache, concurrency)` cell; every response
//! body is checked byte-identical to the serial `run_snapshot` oracle, so
//! the bench doubles as a concurrency-determinism smoke test. Results land
//! in `BENCH_serve.json`.
//!
//! Every run also measures the telemetry substrate's warm-path cost: the
//! exact per-request record sequence (counters, gauges, two histogram
//! observations, one analytics-ledger ring write) is timed in isolation
//! against live registry handles and related to the measured warm request
//! latency. With the `noop` feature those operations compile to nothing
//! (and the ledger ring has zero slots), so the sequence cost *is* the
//! telemetry-on vs noop delta; the run asserts it stays under a 2%
//! throughput regression and pins the numbers under `profile_overhead` in
//! `BENCH_serve.json`. `--profile-overhead` runs only the warm mode and
//! this check (a quick gate, skipping the cold cells).
//!
//! A short mixed cheap/expensive cold sequence additionally scrapes
//! `/debug/queries` and pins the estimate-vs-actual **cost scorecard**
//! (q-error geo-mean and quantiles of `admission::estimate_cost` against
//! measured work) under `cost_scorecard` in `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p spade-bench --bin bench_serve
//! [--scale <facts>] [--seed <n>] [--threads <n>] [--out <path>]
//! [--profile-overhead]`

use spade_bench::HarnessArgs;
use spade_core::json::JsonWriter;
use spade_core::{Spade, SpadeConfig};
use spade_datagen::{realistic, RealisticConfig};
use spade_serve::client::Client;
use spade_serve::server::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const CONCURRENCY: [usize; 3] = [1, 4, 16];

struct Cell {
    cache: &'static str,
    concurrency: usize,
    requests: usize,
    wall_secs: f64,
    req_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Drives `concurrency` keep-alive connections, each sending
/// `requests_per_conn` empty `/explore` requests, and checks every body
/// against `expected`.
fn drive(
    addr: SocketAddr,
    concurrency: usize,
    requests_per_conn: usize,
    expected: &str,
) -> (Vec<f64>, f64) {
    let wall = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut out = Vec::with_capacity(requests_per_conn);
                    for _ in 0..requests_per_conn {
                        let t = Instant::now();
                        let r = client.post("/explore", b"").expect("explore");
                        out.push((t.elapsed().as_secs_f64() * 1e3, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .map(|(ms, r)| {
                assert_eq!(r.status, 200);
                assert_eq!(r.text(), expected, "concurrent body equals the serial oracle");
                ms
            })
            .collect()
    });
    (latencies, wall.elapsed().as_secs_f64())
}

fn run_mode(
    cache: &'static str,
    cache_bytes: usize,
    snapshot: &std::path::Path,
    base: &SpadeConfig,
    expected: &str,
    requests_per_conn: usize,
    cells: &mut Vec<Cell>,
) {
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: *CONCURRENCY.last().expect("non-empty"),
            cache_bytes,
            ..Default::default()
        },
        base.clone(),
        snapshot,
    )
    .expect("server starts");
    let addr = server.local_addr();
    if cache_bytes > 0 {
        // Prime the cache so the warm mode measures pure hits.
        let (_, _) = drive(addr, 1, 1, expected);
    }
    for &concurrency in &CONCURRENCY {
        let (mut latencies, wall_secs) = drive(addr, concurrency, requests_per_conn, expected);
        latencies.sort_by(f64::total_cmp);
        let requests = latencies.len();
        let cell = Cell {
            cache,
            concurrency,
            requests,
            wall_secs,
            req_per_sec: requests as f64 / wall_secs,
            p50_ms: percentile(&latencies, 50.0),
            p99_ms: percentile(&latencies, 99.0),
        };
        eprintln!(
            "{cache:4} cache, {concurrency:2} conns: {:6} req in {:7.2} s | {:8.1} req/s | p50 {:8.2} ms | p99 {:8.2} ms",
            cell.requests, cell.wall_secs, cell.req_per_sec, cell.p50_ms, cell.p99_ms,
        );
        cells.push(cell);
    }
    assert!(server.shutdown(Duration::from_secs(30)), "bench server drains");
}

/// The warm-path telemetry record sequence, timed in isolation: what a
/// cache-hit `/explore` drives through the registry (connection + request
/// counters, in-flight/queue gauges, queue-wait and route-latency
/// histograms) plus one analytics-ledger record (ring write; hits never
/// touch the profile locks). Returns the mean cost per request in
/// nanoseconds.
fn telemetry_ns_per_request() -> f64 {
    use spade_telemetry::ledger::key_hash;
    use spade_telemetry::{CacheOutcome, Ledger, LedgerRecord, ResponseClass};
    let registry = spade_telemetry::Registry::new();
    let requests = registry.counter("bench_requests_total", "requests");
    let explore = registry.counter("bench_explore_total", "explores");
    let cached = registry.counter("bench_explore_cached_total", "cache hits");
    let in_flight = registry.gauge("bench_in_flight", "in flight");
    let queue_depth = registry.gauge("bench_queue_depth", "queued");
    let queue_wait = registry.histogram(
        "bench_queue_wait_seconds",
        "queue wait",
        &spade_telemetry::FINE_DURATION_BOUNDS_SECONDS,
    );
    let warm = registry.histogram_with(
        "bench_request_seconds",
        "latency",
        &[("route", "explore_warm")],
        &spade_telemetry::DURATION_BOUNDS_SECONDS,
    );
    let ledger = Ledger::new(256, &["bench".to_owned()]);
    let hash = key_hash("{}");
    const ITERS: u32 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        queue_depth.add(1);
        queue_depth.sub(1);
        queue_wait.observe(1e-6);
        requests.inc();
        in_flight.add(1);
        explore.inc();
        cached.inc();
        warm.observe(2e-5 + f64::from(i & 1023) * 1e-6);
        ledger.record(LedgerRecord {
            id: u64::from(i),
            graph: "bench".to_owned(),
            generation: 1,
            route: "explore",
            key_hash: hash,
            estimated_cost: 1000,
            actual_cost: 0,
            cells: 0,
            facts: 0,
            cache: CacheOutcome::Hit,
            class: ResponseClass::Ok,
            total_us: 20,
            stages: Vec::new(),
            slo_breach: false,
            unix_ms: 0,
        });
        in_flight.sub(1);
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    assert_eq!(requests.get(), u64::from(ITERS), "sequence not optimized away");
    // Under `spade-telemetry/noop` the ring has zero slots and `record`
    // returns immediately; otherwise every write must have landed.
    if ledger.capacity() > 0 {
        assert_eq!(
            ledger.recorded_total(),
            u64::from(ITERS),
            "ledger writes not optimized away"
        );
    }
    ns
}

/// Drives a short mixed cheap/expensive request sequence against a cold
/// server and returns the ledger's estimate-vs-actual scorecard: how well
/// the admission estimator tracked measured work on this corpus.
fn measure_scorecard(
    snapshot: &std::path::Path,
    base: &SpadeConfig,
) -> (usize, f64, f64, f64, f64, f64) {
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            cache_bytes: 0,
            ..Default::default()
        },
        base.clone(),
        snapshot,
    )
    .expect("scorecard server starts");
    let mut client = Client::new(server.local_addr());
    // Expensive: the unfiltered default (every CFS, low support floor).
    // Cheap: a narrow CFS filter and a tightened support threshold.
    let bodies: [&[u8]; 4] = [
        b"",
        br#"{"cfs_filter": ["type:CEO"]}"#,
        br#"{"min_support": 0.6}"#,
        br#"{"k": 2, "cfs_filter": ["type:Company"]}"#,
    ];
    for body in bodies {
        assert_eq!(client.post("/explore", body).expect("scorecard explore").status, 200);
    }
    let queries = client.get("/debug/queries").expect("debug/queries");
    let doc = spade_core::json::parse(&queries.text()).expect("ledger JSON");
    let sc = doc.get("scorecard").expect("scorecard");
    let f = |k: &str| sc.get(k).and_then(|v| v.as_f64()).unwrap_or_else(|| panic!("{k}"));
    let out = (
        sc.get("count").and_then(|v| v.as_usize()).expect("count"),
        f("q_error_geo_mean"),
        f("q_error_p50"),
        f("q_error_p95"),
        f("q_error_p99"),
        f("q_error_max"),
    );
    assert_eq!(out.0, bodies.len(), "every cold completion grades the estimator");
    assert!(
        out.1.is_finite() && out.1 >= 1.0,
        "q-error geo-mean must be finite and ≥ 1: {}",
        out.1
    );
    assert!(server.shutdown(Duration::from_secs(30)), "scorecard server drains");
    out
}

fn main() {
    let args = HarnessArgs::parse();
    let profile_overhead_only = args.rest.iter().any(|a| a == "--profile-overhead");
    let scale = args.scale_or(250);
    let out_path = args.out_path("BENCH_serve.json");
    let base = SpadeConfig {
        min_support: 0.3,
        min_cfs_size: 20,
        max_cfs: 8,
        threads: args.threads,
        ..Default::default()
    };

    let graph = realistic::ceos(&RealisticConfig { scale, seed: args.seed });
    let nt = spade_rdf::write_ntriples(&graph);
    let dir = std::env::temp_dir().join(format!("spade_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let snapshot = dir.join("ceos.spade");
    let spade = Spade::new(base.clone());
    spade.snapshot_ntriples(&nt, &snapshot).expect("snapshot written");

    // The serial oracle every served body must match, byte for byte.
    let expected = spade.run_snapshot(&snapshot).expect("serial oracle").to_json(false);

    let mut cells = Vec::new();
    if !profile_overhead_only {
        run_mode("cold", 0, &snapshot, &base, &expected, 8, &mut cells);
    }
    run_mode("warm", 64 << 20, &snapshot, &base, &expected, 64, &mut cells);
    let (sc_count, sc_geo, sc_p50, sc_p95, sc_p99, sc_max) =
        measure_scorecard(&snapshot, &base);
    eprintln!(
        "cost scorecard: {sc_count} graded | q-error geo-mean {sc_geo:.2} | \
         p50 {sc_p50:.2} | p95 {sc_p95:.2} | p99 {sc_p99:.2} | max {sc_max:.2}"
    );
    std::fs::remove_dir_all(&dir).ok();

    let throughput = |cache: &str, concurrency: usize| {
        cells
            .iter()
            .find(|c| c.cache == cache && c.concurrency == concurrency)
            .map_or(0.0, |c| c.req_per_sec)
    };
    let warm_speedup_1 = throughput("warm", 1) / throughput("cold", 1).max(f64::MIN_POSITIVE);

    // —— telemetry overhead gate ——
    // The warm path is the worst case for the substrate: the request does
    // almost no other work, so the record sequence is its largest relative
    // cost. Relate the isolated sequence cost to the measured warm request
    // time; under `noop` the sequence is free, so this ratio is the
    // telemetry-on vs noop throughput regression.
    let telemetry_ns = telemetry_ns_per_request();
    let warm_rps = throughput("warm", 1);
    let warm_request_ns = 1e9 / warm_rps.max(f64::MIN_POSITIVE);
    let overhead_pct = 100.0 * telemetry_ns / warm_request_ns;
    let projected_noop_rps = 1e9 / (warm_request_ns - telemetry_ns).max(1.0);
    eprintln!(
        "telemetry warm-path overhead: {telemetry_ns:.1} ns/req of {warm_request_ns:.0} ns \
         ({overhead_pct:.3}% | {warm_rps:.0} req/s on vs {projected_noop_rps:.0} projected noop)"
    );
    assert!(
        overhead_pct < 2.0,
        "telemetry warm-path overhead {overhead_pct:.3}% breaches the 2% budget \
         ({telemetry_ns:.1} ns/req against a {warm_request_ns:.0} ns warm request)"
    );

    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("bench").string("serve");
    w.key("corpus").string("CEOs");
    w.key("scale").usize(scale);
    w.key("n_triples").usize(graph.len());
    w.key("workers").usize(*CONCURRENCY.last().expect("non-empty"));
    w.key("warm_speedup_1conn").f64_fixed(warm_speedup_1, 2);
    w.key("profile_overhead").begin_object();
    w.key("telemetry_ns_per_request").f64_fixed(telemetry_ns, 1);
    w.key("warm_request_ns").f64_fixed(warm_request_ns, 0);
    w.key("overhead_pct").f64_fixed(overhead_pct, 4);
    w.key("warm_req_per_sec").f64_fixed(warm_rps, 2);
    w.key("projected_noop_req_per_sec").f64_fixed(projected_noop_rps, 2);
    w.key("budget_pct").f64_fixed(2.0, 1);
    w.end_object();
    w.key("cost_scorecard").begin_object();
    w.key("requests_graded").usize(sc_count);
    w.key("q_error_geo_mean").f64_fixed(sc_geo, 4);
    w.key("q_error_p50").f64_fixed(sc_p50, 4);
    w.key("q_error_p95").f64_fixed(sc_p95, 4);
    w.key("q_error_p99").f64_fixed(sc_p99, 4);
    w.key("q_error_max").f64_fixed(sc_max, 4);
    w.end_object();
    w.key("cells").begin_array();
    for c in &cells {
        w.begin_object();
        w.key("cache").string(c.cache);
        w.key("concurrency").usize(c.concurrency);
        w.key("requests").usize(c.requests);
        w.key("wall_secs").f64_fixed(c.wall_secs, 6);
        w.key("req_per_sec").f64_fixed(c.req_per_sec, 2);
        w.key("p50_ms").f64_fixed(c.p50_ms, 3);
        w.key("p99_ms").f64_fixed(c.p99_ms, 3);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("warm/cold throughput at 1 connection: {warm_speedup_1:.1}x → {out_path}");
}
