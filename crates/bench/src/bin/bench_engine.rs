//! `bench_engine` — the cube-engine performance trajectory.
//!
//! Evaluates the full MVDCube lattice on the Section 6.5 synthetic
//! generator with (a) the optimized engine (flat per-region cell storage,
//! batched bitmap-to-CSR measure joins, move-into-last-child propagation)
//! and (b) the preserved serial nested-HashMap baseline
//! (`spade_cube::engine_baseline`), then writes `BENCH_engine.json` with
//! facts/sec for both and the speedup. Results are also cross-checked for
//! exact agreement, so the bench doubles as a correctness smoke test.
//!
//! Usage: `cargo run --release -p spade-bench --bin bench_engine
//! [--scale <facts>] [--seed <n>] [--out <path>]`

use spade_bench::HarnessArgs;
use spade_cube::engine_baseline::run_engine_baseline;
use spade_cube::mvdcube::{mvd_cube_pruned, prepare, MvdCubeOptions};
use spade_cube::{CubeResult, CubeSpec, MeasureSpec};
use spade_datagen::synthetic::generate_columns;
use spade_datagen::SyntheticConfig;
use spade_storage::AggFn;
use std::collections::HashMap;
use std::time::Instant;

/// One measured configuration.
struct Case {
    name: &'static str,
    dim_values: Vec<u32>,
    multi_valued_prob: f64,
    chunk_size: Option<u32>,
}

struct Outcome {
    name: String,
    n_facts: usize,
    baseline_secs: f64,
    engine_secs: f64,
    baseline_facts_per_sec: f64,
    engine_facts_per_sec: f64,
    speedup: f64,
    total_groups: usize,
}

fn check_agreement(a: &CubeResult, b: &CubeResult, case: &str) {
    assert_eq!(a.nodes.len(), b.nodes.len(), "{case}: node count");
    for (mask, node) in &a.nodes {
        let other = &b.nodes[mask];
        assert_eq!(node.groups.len(), other.groups.len(), "{case}: node {mask:b}");
        for (key, values) in &node.groups {
            assert_eq!(&other.groups[key], values, "{case}: node {mask:b} group {key:?}");
        }
    }
}

fn run_case(case: &Case, scale: usize, seed: u64, repeats: usize) -> Outcome {
    let cfg = SyntheticConfig {
        n_facts: scale,
        dim_values: case.dim_values.clone(),
        n_measures: 3,
        sparsity: 0.1,
        multi_valued_prob: case.multi_valued_prob,
        seed,
    };
    let columns = generate_columns(&cfg);
    let measures: Vec<MeasureSpec<'_>> = columns
        .measures
        .iter()
        .map(|preagg| MeasureSpec {
            preagg,
            fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max],
        })
        .collect();
    let spec = CubeSpec::new(columns.dims.iter().collect(), measures, columns.n_facts);
    let options = MvdCubeOptions { chunk_size: case.chunk_size, ..Default::default() };

    // Data translation is identical for both engines and not part of the
    // Aggregate Evaluation step being measured: prepare once, untimed.
    let (lattice, translation) = prepare(&spec, &options, None);
    let all_alive: HashMap<u32, Vec<bool>> = lattice
        .nodes()
        .iter()
        .map(|&m| (m, vec![true; spec.mdas().len()]))
        .collect();

    // Warm-up + agreement check (not timed).
    let reference = run_engine_baseline(&spec, &lattice, &translation, None);
    let optimized = mvd_cube_pruned(&spec, &options, &lattice, &translation, &all_alive);
    check_agreement(&optimized, &reference, case.name);
    let total_groups = optimized.total_groups();

    let mut baseline_secs = f64::INFINITY;
    let mut engine_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let r = run_engine_baseline(&spec, &lattice, &translation, None);
        baseline_secs = baseline_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);

        let t = Instant::now();
        let r = mvd_cube_pruned(&spec, &options, &lattice, &translation, &all_alive);
        engine_secs = engine_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }

    Outcome {
        name: case.name.to_owned(),
        n_facts: scale,
        baseline_secs,
        engine_secs,
        baseline_facts_per_sec: scale as f64 / baseline_secs,
        engine_facts_per_sec: scale as f64 / engine_secs,
        speedup: baseline_secs / engine_secs,
        total_groups,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    // This bench defaults to a larger graph than the shared harness
    // (30k facts give representative engine-vs-baseline ratios); an
    // explicit --scale always wins, whatever its value.
    let scale = if std::env::args().any(|a| a == "--scale") { args.scale } else { 30_000 };
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_owned());

    let cases = [
        Case {
            name: "single_valued_100x10x5",
            dim_values: vec![100, 10, 5],
            multi_valued_prob: 0.0,
            chunk_size: None,
        },
        Case {
            name: "multi_valued_100x10x5",
            dim_values: vec![100, 10, 5],
            multi_valued_prob: 0.3,
            chunk_size: None,
        },
        // Chunk 12 ≈ the auto heuristic's memory-bounded operating point
        // for these domains (⌈|D|/4⌉ ≈ 13).
        Case {
            name: "chunked_50x20x10",
            dim_values: vec![50, 20, 10],
            multi_valued_prob: 0.1,
            chunk_size: Some(12),
        },
    ];

    let mut outcomes = Vec::new();
    for case in &cases {
        let o = run_case(case, scale, args.seed, 3);
        eprintln!(
            "{:28} baseline {:8.1} ms ({:9.0} facts/s) | engine {:8.1} ms ({:9.0} facts/s) | speedup {:.2}x",
            o.name,
            o.baseline_secs * 1e3,
            o.baseline_facts_per_sec,
            o.engine_secs * 1e3,
            o.engine_facts_per_sec,
            o.speedup,
        );
        outcomes.push(o);
    }

    let geo_mean_speedup =
        (outcomes.iter().map(|o| o.speedup.ln()).sum::<f64>() / outcomes.len() as f64).exp();

    // Hand-rolled JSON (no external crates offline).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"mvdcube_engine\",\n");
    json.push_str("  \"baseline\": \"serial nested-HashMap engine (engine_baseline)\",\n");
    json.push_str("  \"engine\": \"flat dense/sparse region storage + batched CSR emit\",\n");
    json.push_str(&format!("  \"geo_mean_speedup\": {geo_mean_speedup:.4},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n_facts\": {}, \"total_groups\": {}, \
             \"baseline_secs\": {:.6}, \"engine_secs\": {:.6}, \
             \"baseline_facts_per_sec\": {:.1}, \"engine_facts_per_sec\": {:.1}, \
             \"speedup\": {:.4}}}{}\n",
            o.name,
            o.n_facts,
            o.total_groups,
            o.baseline_secs,
            o.engine_secs,
            o.baseline_facts_per_sec,
            o.engine_facts_per_sec,
            o.speedup,
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("geo-mean speedup {geo_mean_speedup:.2}x → {out_path}");
}
