//! `bench_engine` — the cube-engine performance trajectory.
//!
//! Evaluates the full MVDCube lattice on the Section 6.5 synthetic
//! generator with (a) the optimized region-sharded engine (flat per-region
//! cell storage, batched bitmap-to-CSR measure joins) and (b) the preserved
//! serial nested-HashMap baseline (`spade_cube::engine_baseline`), then
//! writes `BENCH_engine.json` with facts/sec for both and the speedup.
//! Results are also cross-checked for exact agreement, so the bench doubles
//! as a correctness smoke test.
//!
//! The bench additionally sweeps the engine's **intra-lattice** thread
//! count over each single-lattice case (default 1,2,8 — override with
//! `--threads 1,2,8`-style lists) and records per-case multi-thread scaling
//! (speedup vs. 1 thread) alongside the optimized-vs-baseline ratio; every
//! sweep result is checked bit-identical against the 1-thread run. The
//! headline optimized-vs-baseline ratio is always measured at 1 thread so
//! it stays comparable across PRs and machines.
//!
//! A bitmap kernel micro-suite rides along (`--suite bitmap` runs it
//! alone, `--suite engine` the engine comparison alone; the default `all`
//! runs both): container-kernel ns/op across sparse×sparse, sparse×dense,
//! run-friendly, and skewed operand shapes, for every binary op plus the
//! in-place and k-way variants, written into the same JSON under
//! `bitmap_suite`.
//!
//! Usage: `cargo run --release -p spade-bench --bin bench_engine
//! [--scale <facts>] [--seed <n>] [--threads <n[,m,…]>] [--out <path>]
//! [--suite all|engine|bitmap]`

use spade_bench::{geo_mean, HarnessArgs};
use spade_bitmap::Bitmap;
use spade_core::json::JsonWriter;
use spade_cube::engine_baseline::run_engine_baseline;
use spade_cube::mvdcube::{mvd_cube_pruned, prepare, MvdCubeOptions};
use spade_cube::{CubeResult, CubeSpec, MeasureSpec};
use spade_datagen::corpus::{SyntheticCase, SYNTHETIC_CASES};
use spade_datagen::synthetic::generate_columns;
use spade_datagen::ColumnSet;
use spade_storage::AggFn;
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Outcome {
    name: String,
    n_facts: usize,
    baseline_secs: f64,
    engine_secs: f64,
    baseline_facts_per_sec: f64,
    engine_facts_per_sec: f64,
    speedup: f64,
    total_groups: usize,
    /// `(threads, best seconds)` per sweep entry, in sweep order.
    sweep: Vec<(usize, f64)>,
}

impl Outcome {
    /// The sweep's 1-thread anchor, when present — the denominator of every
    /// scaling number this bench reports.
    fn one_thread_secs(&self) -> Option<f64> {
        self.sweep.iter().find(|(t, _)| *t == 1).map(|(_, s)| *s)
    }

    /// Speedup of the widest sweep entry over the 1-thread anchor (1.0 when
    /// the sweep has no anchor).
    fn max_scaling(&self) -> f64 {
        let best =
            self.sweep.iter().max_by_key(|(t, _)| *t).filter(|(t, _)| *t != 1).map(|(_, s)| *s);
        match (self.one_thread_secs(), best) {
            (Some(one), Some(best)) if best > 0.0 => one / best,
            _ => 1.0,
        }
    }
}

fn check_agreement(a: &CubeResult, b: &CubeResult, case: &str) {
    assert_eq!(a.nodes.len(), b.nodes.len(), "{case}: node count");
    for (mask, node) in &a.nodes {
        let other = &b.nodes[mask];
        assert_eq!(node.groups.len(), other.groups.len(), "{case}: node {mask:b}");
        for (key, values) in &node.groups {
            assert_eq!(&other.groups[key], values, "{case}: node {mask:b} group {key:?}");
        }
    }
}

fn run_case(
    case: &SyntheticCase,
    columns: &ColumnSet,
    scale: usize,
    repeats: usize,
    sweep: &[usize],
) -> Outcome {
    let measures: Vec<MeasureSpec<'_>> = columns
        .measures
        .iter()
        .map(|preagg| MeasureSpec {
            preagg,
            fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max],
        })
        .collect();
    let spec = CubeSpec::new(columns.dims.iter().collect(), measures, columns.n_facts);
    let options = MvdCubeOptions { chunk_size: case.chunk_size, ..Default::default() };

    // Data translation is identical for both engines and not part of the
    // Aggregate Evaluation step being measured: prepare once, untimed.
    let (lattice, translation) = prepare(&spec, &options, None);
    let all_alive: HashMap<u32, Vec<bool>> =
        lattice.nodes().iter().map(|&m| (m, vec![true; spec.mdas().len()])).collect();

    // Warm-up + agreement check (not timed).
    let reference = run_engine_baseline(&spec, &lattice, &translation, None);
    let optimized = mvd_cube_pruned(&spec, &options, &lattice, &translation, &all_alive);
    check_agreement(&optimized, &reference, case.name);
    let total_groups = optimized.total_groups();

    let mut baseline_secs = f64::INFINITY;
    let mut engine_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let r = run_engine_baseline(&spec, &lattice, &translation, None);
        baseline_secs = baseline_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);

        let t = Instant::now();
        let r = mvd_cube_pruned(&spec, &options, &lattice, &translation, &all_alive);
        engine_secs = engine_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }

    // Intra-lattice thread sweep over the same single-lattice workload.
    // Each entry measures the end-to-end latency knob: the auto shard plan
    // sizes itself to the worker count (1 worker = 1 shard, N workers = up
    // to 4N shards), so an entry's time includes that plan's decomposition
    // tax — on a single-core host the sweep therefore shows the bare tax
    // (< 1x), while multi-core hosts show net scaling. MVDCube results are
    // plan-invariant, checked bit-identical against the 1-thread run.
    let mut sweep_secs: Vec<(usize, f64)> = Vec::new();
    for &threads in sweep {
        if threads == 1 {
            // The headline `options` run above IS the 1-thread
            // configuration — reuse its timing instead of re-measuring.
            sweep_secs.push((1, engine_secs));
            continue;
        }
        let opts = MvdCubeOptions { threads, ..options };
        let r = mvd_cube_pruned(&spec, &opts, &lattice, &translation, &all_alive);
        check_agreement(&r, &optimized, &format!("{} @ {threads} threads", case.name));
        std::hint::black_box(r);
        let mut secs = f64::INFINITY;
        for _ in 0..repeats {
            let t = Instant::now();
            let r = mvd_cube_pruned(&spec, &opts, &lattice, &translation, &all_alive);
            secs = secs.min(t.elapsed().as_secs_f64());
            std::hint::black_box(r);
        }
        sweep_secs.push((threads, secs));
    }

    Outcome {
        name: case.name.to_owned(),
        n_facts: scale,
        baseline_secs,
        engine_secs,
        baseline_facts_per_sec: scale as f64 / baseline_secs,
        engine_facts_per_sec: scale as f64 / engine_secs,
        speedup: baseline_secs / engine_secs,
        total_groups,
        sweep: sweep_secs,
    }
}

// ——— bitmap kernel micro-suite ———

/// One measured `(shape, op)` pair.
struct BitmapMeasurement {
    shape: &'static str,
    op: &'static str,
    ns_per_op: f64,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// Uniformly scattered values — array containers when sparse, bitset when
/// dense.
fn scattered(n: usize, universe: u32, seed: u64) -> Bitmap {
    let mut s = seed.wrapping_mul(2).wrapping_add(1);
    Bitmap::from_iter((0..n).map(|_| ((lcg(&mut s) >> 32) as u32) % universe))
}

/// Every other value over `[start, start + 2·n)` — dense bitset containers
/// that never canonicalize to runs.
fn stride2(n: u32, start: u32) -> Bitmap {
    Bitmap::from_sorted_iter((0..n).map(|i| start + 2 * i))
}

/// Contiguous blocks — run containers.
fn block_runs(n_blocks: usize, block_len: u32, universe: u32, seed: u64) -> Bitmap {
    let mut s = seed.wrapping_mul(2).wrapping_add(1);
    let mut starts: Vec<u32> =
        (0..n_blocks).map(|_| ((lcg(&mut s) >> 32) as u32) % universe).collect();
    starts.sort_unstable();
    let mut bm = Bitmap::new();
    for st in starts {
        bm.union_with(&Bitmap::from_sorted_iter(st..st.saturating_add(block_len)));
    }
    bm
}

/// Minimum over `repeats` of the average duration of `iters` calls.
fn best_avg(iters: usize, repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..repeats {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed());
    }
    best.as_secs_f64() * 1e9 / iters as f64
}

fn run_bitmap_suite(seed: u64) -> Vec<BitmapMeasurement> {
    const U: u32 = 1 << 20;
    // (shape name, a, b, k-way sources). Shapes chosen so each exercises a
    // distinct kernel family: array two-pointer/galloping, word-at-a-time
    // bitset ops, run merges, and the mixed paths.
    let shapes: Vec<(&'static str, Bitmap, Bitmap, Vec<Bitmap>)> = vec![
        (
            "sparse_sparse",
            scattered(4_000, U, seed),
            scattered(4_000, U, seed + 1),
            (0..8).map(|i| scattered(4_000, U, seed + 10 + i)).collect(),
        ),
        (
            "sparse_dense",
            scattered(4_000, U, seed + 2),
            stride2(300_000, 0),
            (0..8).map(|i| stride2(40_000, 50_000 * i)).collect(),
        ),
        (
            "dense_dense",
            stride2(300_000, 0),
            stride2(300_000, 300_000),
            (0..8).map(|i| stride2(80_000, 100_000 * i)).collect(),
        ),
        (
            "run_run",
            block_runs(64, 4_000, U, seed + 3),
            block_runs(64, 4_000, U, seed + 4),
            (0..8).map(|i| block_runs(32, 4_000, U, seed + 20 + i)).collect(),
        ),
        (
            "run_dense",
            block_runs(64, 4_000, U, seed + 5),
            stride2(300_000, 0),
            (0..8).map(|i| block_runs(32, 4_000, U, seed + 30 + i)).collect(),
        ),
        (
            "skewed_small_large",
            scattered(128, U, seed + 6),
            scattered(60_000, U, seed + 7),
            (0..8).map(|i| scattered(128, U, seed + 40 + i)).collect(),
        ),
    ];

    let mut out = Vec::new();
    for (shape, a, b, sources) in &shapes {
        let refs: Vec<&Bitmap> = sources.iter().collect();
        let (iters, repeats) = (20, 3);
        // Warm-up (also forces lazy allocs out of the timed region).
        std::hint::black_box(a.union(b));

        out.push(BitmapMeasurement {
            shape,
            op: "union",
            ns_per_op: best_avg(iters, repeats, || {
                std::hint::black_box(a.union(b));
            }),
        });
        out.push(BitmapMeasurement {
            shape,
            op: "intersect",
            ns_per_op: best_avg(iters, repeats, || {
                std::hint::black_box(a.intersect(b));
            }),
        });
        out.push(BitmapMeasurement {
            shape,
            op: "difference",
            ns_per_op: best_avg(iters, repeats, || {
                std::hint::black_box(a.and_not(b));
            }),
        });
        out.push(BitmapMeasurement {
            shape,
            op: "intersect_len",
            ns_per_op: best_avg(iters, repeats, || {
                std::hint::black_box(a.intersect_len(b));
            }),
        });
        out.push(BitmapMeasurement {
            shape,
            op: "union_with",
            ns_per_op: best_avg(iters, repeats, || {
                let mut x = a.clone();
                x.union_with(b);
                std::hint::black_box(x);
            }),
        });
        out.push(BitmapMeasurement {
            shape,
            op: "union_with_all_8",
            ns_per_op: best_avg(iters, repeats, || {
                let mut x = a.clone();
                x.union_with_all(&refs);
                std::hint::black_box(x);
            }),
        });
    }
    out
}

fn write_bitmap_suite(w: &mut JsonWriter, measurements: &[BitmapMeasurement]) {
    w.key("bitmap_suite").begin_array();
    for m in measurements {
        w.begin_object();
        w.key("shape").string(m.shape);
        w.key("op").string(m.op);
        w.key("ns_per_op").f64_fixed(m.ns_per_op, 1);
        w.end_object();
    }
    w.end_array();
}

fn main() {
    let args = HarnessArgs::parse();
    // This bench defaults to a larger graph than the shared harness
    // (30k facts give representative engine-vs-baseline ratios); an
    // explicit --scale always wins, whatever its value.
    let scale = args.scale_or(30_000);
    let out_path = args.out_path("BENCH_engine.json");
    let seed = args.seed;
    let sweep = args.thread_sweep(&[1, 2, 8]);

    // `--suite all|engine|bitmap` (free-form args land in `rest`).
    let suite = {
        let mut suite = "all".to_owned();
        let mut it = args.rest.iter();
        while let Some(a) = it.next() {
            if a == "--suite" {
                suite = it.next().cloned().unwrap_or(suite);
            } else if let Some(v) = a.strip_prefix("--suite=") {
                suite = v.to_owned();
            }
        }
        suite
    };
    let run_engine_suite = suite == "all" || suite == "engine";
    let run_kernels = suite == "all" || suite == "bitmap";
    assert!(
        run_engine_suite || run_kernels,
        "unknown --suite {suite:?} (expected all, engine, or bitmap)"
    );

    let bitmap_suite = if run_kernels {
        let measurements = run_bitmap_suite(seed);
        for m in &measurements {
            eprintln!("bitmap {:20} {:16} {:12.0} ns/op", m.shape, m.op, m.ns_per_op);
        }
        measurements
    } else {
        Vec::new()
    };

    if !run_engine_suite {
        // Bitmap-only run: write just the micro-suite section.
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("bench").string("bitmap_kernels");
        write_bitmap_suite(&mut w, &bitmap_suite);
        w.end_object();
        let json = w.finish();
        std::fs::write(&out_path, &json).expect("write bench json");
        println!("{json}");
        eprintln!("bitmap micro-suite ({} measurements) → {out_path}", bitmap_suite.len());
        return;
    }

    // Corpus generation is untimed, so it may fan out over all cores.
    let column_sets: Vec<ColumnSet> =
        spade_parallel::map(SYNTHETIC_CASES.to_vec(), 0, |case| {
            generate_columns(&case.config(scale, seed))
        });

    let mut outcomes = Vec::new();
    for (case, columns) in SYNTHETIC_CASES.iter().zip(&column_sets) {
        let o = run_case(case, columns, scale, 3, &sweep);
        let sweep_str = o
            .sweep
            .iter()
            .map(|(t, s)| format!("{t}t {:.1}ms", s * 1e3))
            .collect::<Vec<_>>()
            .join(" / ");
        eprintln!(
            "{:28} baseline {:8.1} ms ({:9.0} facts/s) | engine {:8.1} ms ({:9.0} facts/s) | speedup {:.2}x | sweep {} | scaling {:.2}x",
            o.name,
            o.baseline_secs * 1e3,
            o.baseline_facts_per_sec,
            o.engine_secs * 1e3,
            o.engine_facts_per_sec,
            o.speedup,
            sweep_str,
            o.max_scaling(),
        );
        outcomes.push(o);
    }

    let speedups: Vec<f64> = outcomes.iter().map(|o| o.speedup).collect();
    let geo_mean_speedup = geo_mean(&speedups);
    let scalings: Vec<f64> = outcomes.iter().map(Outcome::max_scaling).collect();
    let geo_mean_scaling = geo_mean(&scalings);

    // Shared deterministic writer (spade_core::json) — no serde offline.
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("bench").string("mvdcube_engine");
    w.key("baseline").string("serial nested-HashMap engine (engine_baseline)");
    w.key("engine").string("region-sharded flat dense/sparse storage + batched CSR emit");
    w.key("geo_mean_speedup").f64_fixed(geo_mean_speedup, 4);
    w.key("thread_sweep").begin_array();
    for &t in &sweep {
        w.usize(t);
    }
    w.end_array();
    w.key("geo_mean_max_thread_scaling").f64_fixed(geo_mean_scaling, 4);
    w.key("cases").begin_array();
    for o in &outcomes {
        w.begin_object();
        w.key("name").string(&o.name);
        w.key("n_facts").usize(o.n_facts);
        w.key("total_groups").usize(o.total_groups);
        w.key("baseline_secs").f64_fixed(o.baseline_secs, 6);
        w.key("engine_secs").f64_fixed(o.engine_secs, 6);
        w.key("baseline_facts_per_sec").f64_fixed(o.baseline_facts_per_sec, 1);
        w.key("engine_facts_per_sec").f64_fixed(o.engine_facts_per_sec, 1);
        w.key("speedup").f64_fixed(o.speedup, 4);
        w.key("threads_secs").begin_object();
        for (t, secs) in &o.sweep {
            w.key(&t.to_string()).f64_fixed(*secs, 6);
        }
        w.end_object();
        // Scaling is only defined relative to the 1-thread anchor; sweeps
        // without one (e.g. --threads 2,8) leave the block empty.
        w.key("thread_scaling").begin_object();
        if let Some(one) = o.one_thread_secs() {
            for (t, secs) in o.sweep.iter().filter(|(t, _)| *t != 1) {
                w.key(&t.to_string()).f64_fixed(one / secs, 4);
            }
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    if run_kernels {
        write_bitmap_suite(&mut w, &bitmap_suite);
    }
    w.end_object();
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!(
        "geo-mean speedup {geo_mean_speedup:.2}x, geo-mean thread scaling {geo_mean_scaling:.2}x → {out_path}"
    );
}
