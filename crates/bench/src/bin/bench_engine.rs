//! `bench_engine` — the cube-engine performance trajectory.
//!
//! Evaluates the full MVDCube lattice on the Section 6.5 synthetic
//! generator with (a) the optimized engine (flat per-region cell storage,
//! batched bitmap-to-CSR measure joins, move-into-last-child propagation)
//! and (b) the preserved serial nested-HashMap baseline
//! (`spade_cube::engine_baseline`), then writes `BENCH_engine.json` with
//! facts/sec for both and the speedup. Results are also cross-checked for
//! exact agreement, so the bench doubles as a correctness smoke test.
//!
//! Usage: `cargo run --release -p spade-bench --bin bench_engine
//! [--scale <facts>] [--seed <n>] [--threads <n>] [--out <path>]`
//! (`--threads` fans the untimed corpus generation out; the measured
//! engine runs stay single-threaded so speedups are comparable across PRs)

use spade_bench::{geo_mean, HarnessArgs};
use spade_cube::engine_baseline::run_engine_baseline;
use spade_cube::mvdcube::{mvd_cube_pruned, prepare, MvdCubeOptions};
use spade_cube::{CubeResult, CubeSpec, MeasureSpec};
use spade_datagen::corpus::{SyntheticCase, SYNTHETIC_CASES};
use spade_datagen::synthetic::generate_columns;
use spade_datagen::ColumnSet;
use spade_storage::AggFn;
use std::collections::HashMap;
use std::time::Instant;

struct Outcome {
    name: String,
    n_facts: usize,
    baseline_secs: f64,
    engine_secs: f64,
    baseline_facts_per_sec: f64,
    engine_facts_per_sec: f64,
    speedup: f64,
    total_groups: usize,
}

fn check_agreement(a: &CubeResult, b: &CubeResult, case: &str) {
    assert_eq!(a.nodes.len(), b.nodes.len(), "{case}: node count");
    for (mask, node) in &a.nodes {
        let other = &b.nodes[mask];
        assert_eq!(node.groups.len(), other.groups.len(), "{case}: node {mask:b}");
        for (key, values) in &node.groups {
            assert_eq!(&other.groups[key], values, "{case}: node {mask:b} group {key:?}");
        }
    }
}

fn run_case(
    case: &SyntheticCase,
    columns: &ColumnSet,
    scale: usize,
    repeats: usize,
) -> Outcome {
    let measures: Vec<MeasureSpec<'_>> = columns
        .measures
        .iter()
        .map(|preagg| MeasureSpec {
            preagg,
            fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max],
        })
        .collect();
    let spec = CubeSpec::new(columns.dims.iter().collect(), measures, columns.n_facts);
    let options = MvdCubeOptions { chunk_size: case.chunk_size, ..Default::default() };

    // Data translation is identical for both engines and not part of the
    // Aggregate Evaluation step being measured: prepare once, untimed.
    let (lattice, translation) = prepare(&spec, &options, None);
    let all_alive: HashMap<u32, Vec<bool>> =
        lattice.nodes().iter().map(|&m| (m, vec![true; spec.mdas().len()])).collect();

    // Warm-up + agreement check (not timed).
    let reference = run_engine_baseline(&spec, &lattice, &translation, None);
    let optimized = mvd_cube_pruned(&spec, &options, &lattice, &translation, &all_alive);
    check_agreement(&optimized, &reference, case.name);
    let total_groups = optimized.total_groups();

    let mut baseline_secs = f64::INFINITY;
    let mut engine_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let r = run_engine_baseline(&spec, &lattice, &translation, None);
        baseline_secs = baseline_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);

        let t = Instant::now();
        let r = mvd_cube_pruned(&spec, &options, &lattice, &translation, &all_alive);
        engine_secs = engine_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }

    Outcome {
        name: case.name.to_owned(),
        n_facts: scale,
        baseline_secs,
        engine_secs,
        baseline_facts_per_sec: scale as f64 / baseline_secs,
        engine_facts_per_sec: scale as f64 / engine_secs,
        speedup: baseline_secs / engine_secs,
        total_groups,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    // This bench defaults to a larger graph than the shared harness
    // (30k facts give representative engine-vs-baseline ratios); an
    // explicit --scale always wins, whatever its value.
    let scale = args.scale_or(30_000);
    let out_path = args.out_path("BENCH_engine.json");
    let seed = args.seed;

    // Corpus generation is untimed, so it may fan out over --threads.
    let column_sets: Vec<ColumnSet> =
        spade_parallel::map(SYNTHETIC_CASES.to_vec(), args.threads, |case| {
            generate_columns(&case.config(scale, seed))
        });

    let mut outcomes = Vec::new();
    for (case, columns) in SYNTHETIC_CASES.iter().zip(&column_sets) {
        let o = run_case(case, columns, scale, 3);
        eprintln!(
            "{:28} baseline {:8.1} ms ({:9.0} facts/s) | engine {:8.1} ms ({:9.0} facts/s) | speedup {:.2}x",
            o.name,
            o.baseline_secs * 1e3,
            o.baseline_facts_per_sec,
            o.engine_secs * 1e3,
            o.engine_facts_per_sec,
            o.speedup,
        );
        outcomes.push(o);
    }

    let speedups: Vec<f64> = outcomes.iter().map(|o| o.speedup).collect();
    let geo_mean_speedup = geo_mean(&speedups);

    // Hand-rolled JSON (no external crates offline).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"mvdcube_engine\",\n");
    json.push_str("  \"baseline\": \"serial nested-HashMap engine (engine_baseline)\",\n");
    json.push_str("  \"engine\": \"flat dense/sparse region storage + batched CSR emit\",\n");
    json.push_str(&format!("  \"geo_mean_speedup\": {geo_mean_speedup:.4},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n_facts\": {}, \"total_groups\": {}, \
             \"baseline_secs\": {:.6}, \"engine_secs\": {:.6}, \
             \"baseline_facts_per_sec\": {:.1}, \"engine_facts_per_sec\": {:.1}, \
             \"speedup\": {:.4}}}{}\n",
            o.name,
            o.n_facts,
            o.total_groups,
            o.baseline_secs,
            o.engine_secs,
            o.baseline_facts_per_sec,
            o.engine_facts_per_sec,
            o.speedup,
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("geo-mean speedup {geo_mean_speedup:.2}x → {out_path}");
}
