//! Figure 11 / Experiment 5 — run times of the online pipeline steps on
//! twelve synthetic configurations.
//!
//! Configurations: |CFS| = 1M (scaled), N = 3, M ∈ {3, 5, 10}, dimension
//! distinct values "u" = 100:100:100 or "d" = 100:5:2, sparsity ∈ {0.1, 0.5};
//! each bar segment is one pipeline step.
//!
//! Expected shape (R8): Aggregate Evaluation dominates and grows with the
//! number of distinct groups and measures; Online Attribute Analysis is the
//! second-largest cost; CFS selection is negligible.
//!
//! Run: `cargo run -p spade-bench --release --bin figure11 [-- --scale N]`
//! (`--scale` here multiplies the base 50k facts.)

use spade_bench::{ms, HarnessArgs};
use spade_core::{Spade, SpadeConfig};
use spade_datagen::{synthetic, SyntheticConfig};

fn main() {
    let args = HarnessArgs::parse();
    // Paper: |CFS| = 1M. Scaled: 50k × (scale/400).
    let n_facts = 50_000 * args.scale / spade_bench::DEFAULT_SCALE;

    println!("Figure 11: online pipeline step times, ms (|CFS| = {n_facts}, paper used 1M)");
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>10} {:>8} {:>10}",
        "config", "CFSsel", "attrAnal", "enum", "eval", "topk", "total"
    );
    spade_bench::rule(72);

    for (dist_name, dims) in [("u", vec![100u32, 100, 100]), ("d", vec![100, 5, 2])] {
        for sparsity in [0.1, 0.5] {
            for m in [3usize, 5, 10] {
                let cfg = SyntheticConfig {
                    n_facts,
                    dim_values: dims.clone(),
                    n_measures: m,
                    sparsity,
                    multi_valued_prob: 0.0,
                    seed: args.seed,
                };
                let mut graph = synthetic::generate_graph(&cfg);
                let config = SpadeConfig {
                    min_cfs_size: 100,
                    min_support: 0.5,
                    max_distinct_values: 110,
                    ..Default::default()
                };
                let report = Spade::new(config).run(&mut graph);
                let t = report.timings;
                println!(
                    "{:<12} {:>8} {:>10} {:>8} {:>10} {:>8} {:>10}",
                    format!("{dist_name}|{sparsity}|{m}"),
                    ms(t.cfs_selection),
                    ms(t.attribute_analysis),
                    ms(t.enumeration),
                    ms(t.evaluation),
                    ms(t.topk),
                    ms(t.online_total()),
                );
            }
        }
    }
    println!();
    println!("paper (R8): Aggregate Evaluation dominates, growing with #groups and M;");
    println!("Online Attribute Analysis is 15–37% of total; CFS selection is 5–10 ms.");
}
