//! Figure 7 / Experiment 1 — interestingness of MDAs with and without
//! derived properties.
//!
//! The figure plots, per dataset, one tick per MDA (variance score) in the
//! woD and wD settings. This binary prints the two distributions as
//! count / max / quartiles so (R1) can be checked: derivations increase
//! both the number of enumerated MDAs and the interestingness of the best
//! ones.
//!
//! Run: `cargo run -p spade-bench --release --bin figure7 [-- --scale N]`

use spade_bench::{experiment_config, HarnessArgs};
use spade_core::{Spade, SpadeConfig};
use spade_datagen::{realistic, RealisticConfig};

fn scores(graph: &mut spade_rdf::Graph, config: SpadeConfig) -> Vec<f64> {
    let report = Spade::new(SpadeConfig { k: usize::MAX, ..config }).run(graph);
    let mut s: Vec<f64> = report.top.iter().map(|t| t.score).collect();
    s.sort_by(f64::total_cmp);
    s
}

fn quartile(s: &[f64], q: f64) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    s[((s.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };

    println!("Figure 7: interestingness (variance) of MDAs, woD vs wD (scale {})", args.scale);
    println!(
        "{:<10} {:>6} {:>12} {:>12} | {:>6} {:>12} {:>12}",
        "Dataset", "#woD", "median woD", "max woD", "#wD", "median wD", "max wD"
    );
    spade_bench::rule(80);

    for dataset in realistic::all(&cfg) {
        let name = dataset.name;
        let mut g_wd = dataset.graph;
        let mut g_wod = spade_bench_regen(name, &cfg);
        let wod = scores(&mut g_wod, experiment_config().without_derivations());
        let wd = scores(&mut g_wd, experiment_config());
        println!(
            "{:<10} {:>6} {:>12.4} {:>12.4} | {:>6} {:>12.4} {:>12.4}",
            name,
            wod.len(),
            quartile(&wod, 0.5),
            wod.last().copied().unwrap_or(0.0),
            wd.len(),
            quartile(&wd, 0.5),
            wd.last().copied().unwrap_or(0.0),
        );
    }
    println!();
    println!("(R1) expected shape: #wD ≥ #woD on every native-RDF graph (strictly more on");
    println!("CEOs/NASA/Nobel/Foodista/DBLP), equal on Airline (no derivations possible);");
    println!("max-wD ≥ max-woD where derivations apply.");
}

fn spade_bench_regen(name: &str, cfg: &RealisticConfig) -> spade_rdf::Graph {
    match name {
        "Airline" => realistic::airline(&RealisticConfig { scale: cfg.scale * 8, ..*cfg }),
        "CEOs" => realistic::ceos(cfg),
        "DBLP" => realistic::dblp(&RealisticConfig { scale: cfg.scale * 4, ..*cfg }),
        "Foodista" => realistic::foodista(&RealisticConfig { scale: cfg.scale * 2, ..*cfg }),
        "NASA" => realistic::nasa(cfg),
        "Nobel" => realistic::nobel(cfg),
        other => panic!("unknown dataset {other}"),
    }
}
